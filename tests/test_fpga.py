"""Tests for the FPGA device model (architecture, RR graph, configuration memory)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.bitstream import Bitstream, ConfigurationLayout
from repro.fpga.device import device_for_netlist
from repro.fpga.routing_graph import RRNodeType, build_rr_graph


class TestArchitecture:
    def test_basic_counts(self):
        arch = FPGAArchitecture(width=4, height=3, channel_width=8)
        assert arch.num_clb_sites == 12
        assert arch.num_io_sites == 2 * (4 + 3) * 2
        assert len(list(arch.clb_sites())) == 12
        assert len(list(arch.io_sites())) == arch.num_io_sites

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FPGAArchitecture(width=0, height=3)
        with pytest.raises(ValueError):
            FPGAArchitecture(width=3, height=3, channel_width=0)
        with pytest.raises(ValueError):
            FPGAArchitecture(width=3, height=3, fc_in=0.0)

    def test_with_channel_width(self):
        arch = FPGAArchitecture(width=4, height=4, channel_width=10)
        wider = arch.with_channel_width(14)
        assert wider.channel_width == 14
        assert wider.width == arch.width

    def test_contains_clb(self):
        arch = FPGAArchitecture(width=3, height=3)
        assert arch.contains_clb(1, 1) and arch.contains_clb(3, 3)
        assert not arch.contains_clb(0, 1) and not arch.contains_clb(4, 1)

    def test_auto_size_fits_design(self):
        arch = auto_size(num_luts=100, num_ios=30)
        assert arch.num_clb_sites >= 100
        assert arch.num_io_sites >= 30

    @given(st.integers(1, 400), st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_auto_size_always_sufficient(self, nluts, nios):
        arch = auto_size(nluts, nios)
        assert arch.num_clb_sites >= nluts
        assert arch.num_io_sites >= nios


class TestRRGraph:
    @pytest.fixture(scope="class")
    def small_graph(self):
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        return arch, build_rr_graph(arch)

    def test_node_counts(self, small_graph):
        arch, rr = small_graph
        w = arch.channel_width
        expected_chanx = arch.width * (arch.height + 1) * w
        expected_chany = (arch.width + 1) * arch.height * w
        assert rr.num_wire_nodes() == expected_chanx + expected_chany

    def test_every_clb_has_terminals(self, small_graph):
        arch, rr = small_graph
        for x in range(1, arch.width + 1):
            for y in range(1, arch.height + 1):
                assert (x, y) in rr.clb_source
                assert (x, y) in rr.clb_sink
                assert (x, y) in rr.clb_opin

    def test_source_reaches_opin(self, small_graph):
        _, rr = small_graph
        src = rr.clb_source[(2, 2)]
        opin = rr.clb_opin[(2, 2)]
        assert opin in rr.fanouts(src)

    def test_opin_drives_adjacent_wires(self, small_graph):
        arch, rr = small_graph
        opin = rr.clb_opin[(2, 2)]
        wires = [n for n in rr.fanouts(opin) if rr.is_wire(n)]
        assert len(wires) == 4 * arch.channel_width  # fc_out = 1.0, four channels

    def test_wire_fanout_includes_switch_block_neighbours(self, small_graph):
        _, rr = small_graph
        # pick some CHANX wire not at the border
        wire = None
        for n in range(rr.num_nodes):
            if rr.node_type[n] == RRNodeType.CHANX and rr.node_x[n] == 2 and rr.node_y[n] == 1:
                wire = n
                break
        assert wire is not None
        neighbours = rr.fanouts(wire)
        wire_neighbours = [n for n in neighbours if rr.is_wire(n)]
        # disjoint switch block: same-track wires on adjacent segments
        assert all(rr.node_track[n] == rr.node_track[wire] for n in wire_neighbours)
        assert len(wire_neighbours) >= 4

    def test_io_sites_have_terminals(self, small_graph):
        arch, rr = small_graph
        assert len(rr.io_source) == arch.num_io_sites
        assert len(rr.io_sink) == arch.num_io_sites

    def test_sink_capacity_matches_lut_inputs(self, small_graph):
        arch, rr = small_graph
        sink = rr.clb_sink[(1, 1)]
        assert rr.node_capacity[sink] == arch.lut_inputs

    def test_device_bundle(self):
        device = device_for_netlist(num_luts=20, num_ios=10, channel_width=6)
        assert device.num_clb_sites >= 20
        assert "RR graph" in device.describe()


class TestConfigurationLayout:
    def test_frames_cover_all_tiles(self):
        arch = FPGAArchitecture(width=4, height=4, channel_width=6)
        layout = ConfigurationLayout(arch)
        seen = set()
        for x in range(1, 5):
            for y in range(1, 5):
                span = layout.frames_for_tile(x, y)
                assert span.count >= 1
                seen.update(span.frames())
        assert max(seen) < layout.total_frames

    def test_same_column_tiles_can_share_frames(self):
        arch = FPGAArchitecture(width=2, height=8, channel_width=4)
        layout = ConfigurationLayout(arch, frame_bits=4096)
        span_a = layout.frames_for_tile(1, 1)
        span_b = layout.frames_for_tile(1, 2)
        # with a large frame, adjacent tiles in a column share at least one frame
        assert set(span_a.frames()) & set(span_b.frames())

    def test_different_columns_never_share_frames(self):
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        layout = ConfigurationLayout(arch)
        f1 = set(layout.frames_for_tile(1, 2).frames())
        f2 = set(layout.frames_for_tile(2, 2).frames())
        assert not (f1 & f2)

    def test_invalid_tile_rejected(self):
        arch = FPGAArchitecture(width=3, height=3)
        layout = ConfigurationLayout(arch)
        with pytest.raises(ValueError):
            layout.frames_for_tile(0, 1)

    def test_frames_for_tiles_deduplicates(self):
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        layout = ConfigurationLayout(arch)
        frames = layout.frames_for_tiles([(1, 1), (1, 1), (1, 2)])
        assert frames == layout.frames_for_tiles([(1, 1), (1, 2)])


class TestBitstream:
    def make(self):
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        return Bitstream(ConfigurationLayout(arch))

    def test_set_and_diff_lut_config(self):
        bs1 = self.make()
        bs2 = bs1.clone()
        bs1.set_lut_config(2, 2, 0xABCD)
        bs2.set_lut_config(2, 2, 0x1234)
        changed = bs2.diff_tiles(bs1)
        assert changed == {(2, 2)}
        assert bs2.diff_frames(bs1) == bs1.layout.frames_for_tiles({(2, 2)})

    def test_identical_bitstreams_have_empty_diff(self):
        bs1 = self.make()
        bs1.set_lut_config(1, 1, 7)
        bs2 = bs1.clone()
        assert bs2.diff_tiles(bs1) == set()
        assert bs2.diff_frames(bs1) == set()

    def test_routing_config_diff(self):
        bs1 = self.make()
        bs2 = bs1.clone()
        bs2.set_routing_config(3, 1, 0b1010)
        assert bs2.diff_tiles(bs1) == {(3, 1)}

    def test_config_range_checks(self):
        bs = self.make()
        with pytest.raises(ValueError):
            bs.set_lut_config(1, 1, 1 << 20)
        with pytest.raises(ValueError):
            bs.set_lut_config(0, 1, 1)
        with pytest.raises(ValueError):
            bs.set_routing_config(1, 1, 1 << 1000)
