"""Tests for the PE model, VCGRA grid architecture, settings and accounting."""

import pytest

from repro.core.accounting import grid_resource_details, grid_resource_table
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import PEOp, ProcessingElementSpec, build_pe_design, pe_port_summary
from repro.core.settings import PESettings, VCGRASettings, VSBSettings
from repro.flopoco.arithmetic import fp_mac, fp_mul
from repro.flopoco.format import FPFormat
from repro.netlist.simulate import simulate_words

SMALL = FPFormat(we=4, wf=6)


class TestProcessingElementSpec:
    def test_settings_bits_accounting(self):
        spec = ProcessingElementSpec(fmt=SMALL, num_inputs=4, counter_width=16)
        expected = SMALL.width + 2 * 2 + 2 + 16
        assert spec.settings_bits == expected
        assert spec.num_settings_registers == -(-expected // 32)

    def test_sel_width(self):
        assert ProcessingElementSpec(fmt=SMALL, num_inputs=4).sel_width == 2
        assert ProcessingElementSpec(fmt=SMALL, num_inputs=2).sel_width == 1
        assert ProcessingElementSpec(fmt=SMALL, num_inputs=5).sel_width == 3

    def test_port_summary(self):
        spec = ProcessingElementSpec(fmt=SMALL, num_inputs=2)
        ports = pe_port_summary(spec)
        assert ports["in0"] == SMALL.width
        assert ports["coeff"] == SMALL.width
        assert ports["done"] == 1


class TestPEDesign:
    def build(self, **kw):
        spec = ProcessingElementSpec(fmt=SMALL, num_inputs=2, counter_width=4, **kw)
        return spec, build_pe_design(spec)

    def eval_pe(self, design, inputs, params):
        out = simulate_words(design.circuit, inputs, params)
        return {k: [int(x) for x in v] for k, v in out.items()}

    def test_mac_operation(self):
        spec, d = self.build()
        fmt = spec.fmt
        sample, acc, coeff = fmt.encode(1.5), fmt.encode(2.0), fmt.encode(-3.0)
        res = self.eval_pe(
            d,
            {"in0": [sample], "in1": [acc], "count": [0]},
            {"coeff": coeff, "sel_a": 0, "sel_b": 1, "op": PEOp.MAC, "count_limit": 3},
        )
        assert res["out"][0] == fp_mac(fmt, acc, sample, coeff)

    def test_mul_operation(self):
        spec, d = self.build()
        fmt = spec.fmt
        sample, coeff = fmt.encode(2.5), fmt.encode(0.5)
        res = self.eval_pe(
            d,
            {"in0": [sample], "in1": [fmt.encode(9.0)], "count": [0]},
            {"coeff": coeff, "sel_a": 0, "sel_b": 1, "op": PEOp.MUL, "count_limit": 0},
        )
        assert res["out"][0] == fp_mul(fmt, sample, coeff)

    def test_bypass_operations(self):
        spec, d = self.build()
        fmt = spec.fmt
        a, b = fmt.encode(4.0), fmt.encode(-7.0)
        res = self.eval_pe(
            d,
            {"in0": [a], "in1": [b], "count": [0]},
            {"coeff": fmt.encode(1.0), "sel_a": 0, "sel_b": 1,
             "op": PEOp.BYPASS, "count_limit": 0},
        )
        assert res["out"][0] == a
        res = self.eval_pe(
            d,
            {"in0": [a], "in1": [b], "count": [0]},
            {"coeff": fmt.encode(1.0), "sel_a": 0, "sel_b": 1,
             "op": PEOp.BYPASS_B, "count_limit": 0},
        )
        assert res["out"][0] == b

    def test_operand_select_swaps_ports(self):
        spec, d = self.build()
        fmt = spec.fmt
        a, b, coeff = fmt.encode(1.25), fmt.encode(3.0), fmt.encode(2.0)
        res = self.eval_pe(
            d,
            {"in0": [a], "in1": [b], "count": [0]},
            {"coeff": coeff, "sel_a": 1, "sel_b": 0, "op": PEOp.MAC, "count_limit": 0},
        )
        # sample comes from in1, accumulator from in0
        assert res["out"][0] == fp_mac(fmt, a, b, coeff)

    def test_counter_done_flag(self):
        spec, d = self.build()
        res = self.eval_pe(
            d,
            {"in0": [0, 0], "in1": [0, 0], "count": [4, 7]},
            {"coeff": 0, "sel_a": 0, "sel_b": 1, "op": PEOp.MAC, "count_limit": 7},
        )
        assert res["done"] == [0, 1]

    def test_bare_datapath_variant(self):
        spec = ProcessingElementSpec(
            fmt=SMALL, num_inputs=2, include_intra_connect=False, include_counter=False
        )
        d = build_pe_design(spec)
        assert "done" not in d.circuit.outputs
        names = {d.circuit.names[p] for p in d.circuit.param_ids()}
        assert all(n.startswith("coeff") for n in names)

    def test_intra_connect_increases_parameter_count(self):
        with_ic = ProcessingElementSpec(fmt=SMALL, num_inputs=4)
        without = ProcessingElementSpec(fmt=SMALL, num_inputs=4, include_intra_connect=False)
        d1 = build_pe_design(with_ic)
        d2 = build_pe_design(without)
        assert len(d1.circuit.param_ids()) > len(d2.circuit.param_ids())


class TestGridArchitecture:
    def test_paper_grid_counts(self):
        arch = VCGRAArchitecture(rows=4, cols=4)
        assert arch.num_pes == 16
        assert arch.num_vsbs == 9
        assert arch.num_virtual_connection_blocks == 32
        assert arch.num_virtual_routing_switches == 41
        assert arch.num_settings_registers == 25

    def test_small_grids(self):
        assert VCGRAArchitecture(rows=1, cols=1).num_vsbs == 0
        assert VCGRAArchitecture(rows=2, cols=3).num_vsbs == 2

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            VCGRAArchitecture(rows=0, cols=4)

    def test_connectivity(self):
        arch = VCGRAArchitecture(rows=3, cols=3)
        assert arch.downstream_of((0, 0)) == [(1, 0), (1, 1)]
        assert arch.downstream_of((2, 1)) == []
        assert arch.upstream_of((1, 1)) == [(0, 0), (0, 1), (0, 2)]
        assert arch.upstream_of((0, 2)) == []
        assert arch.is_entry_row((0, 2))
        assert arch.is_exit_row((2, 0))

    def test_enumerations(self):
        arch = VCGRAArchitecture(rows=4, cols=4)
        assert len(list(arch.pe_positions())) == 16
        assert len(list(arch.vsbs())) == 9
        assert len(list(arch.connection_blocks())) == 32


class TestSettings:
    def test_pe_settings_packing(self):
        spec = ProcessingElementSpec(fmt=SMALL, num_inputs=4, counter_width=8)
        s = PESettings(coefficient=0x155, sel_a=2, sel_b=1, op=PEOp.MUL, count_limit=9)
        words = s.register_words(spec, width=32)
        assert len(words) == spec.num_settings_registers
        # coefficient occupies the low bits
        assert words[0] & ((1 << spec.fmt.width) - 1) == 0x155

    def test_param_words(self):
        spec = ProcessingElementSpec(fmt=SMALL)
        s = PESettings(coefficient=3, sel_a=1, sel_b=0, op=PEOp.MAC, count_limit=5)
        words = s.as_param_words(spec)
        assert words == {"coeff": 3, "sel_a": 1, "sel_b": 0, "op": PEOp.MAC, "count_limit": 5}

    def test_register_image_and_diff(self):
        arch = VCGRAArchitecture(rows=2, cols=2, pe_spec=ProcessingElementSpec(fmt=SMALL))
        s1 = VCGRASettings(arch=arch)
        s2 = VCGRASettings(arch=arch)
        s1.pe((0, 0)).coefficient = 7
        s1.pe((0, 0)).enabled = True
        image = s1.register_image()
        assert arch.pe_name((0, 0)) in image
        assert len(image) == arch.num_pes + arch.num_vsbs
        diff = s1.diff(s2)
        assert diff == [arch.pe_name((0, 0))]

    def test_vsb_settings_word(self):
        arch = VCGRAArchitecture(rows=2, cols=2)
        vsb = VSBSettings()
        vsb.routes[((1, 0), 0)] = (0, 1)
        word = vsb.register_word(arch)
        assert word != 0


class TestAccounting:
    def test_table2_reproduction(self):
        table = grid_resource_table(VCGRAArchitecture(rows=4, cols=4))
        conv = table["conventional"]
        par = table["fully_parameterized"]
        assert conv.inter_network == 41
        assert conv.settings_registers == 25
        assert par.inter_network == 0
        assert par.settings_registers == 0

    def test_details_consistent(self):
        arch = VCGRAArchitecture(rows=4, cols=4)
        details = grid_resource_details(arch)
        assert details["virtual_routing_switches"] == 41
        assert details["conventional_ff_estimate"] == 25 * 32
        assert details["parameterized_ff"] == 0

    def test_scales_with_grid_size(self):
        small = grid_resource_table(VCGRAArchitecture(rows=2, cols=2))
        large = grid_resource_table(VCGRAArchitecture(rows=6, cols=6))
        assert large["conventional"].inter_network > small["conventional"].inter_network
