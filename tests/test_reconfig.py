"""Tests for the multi-context reconfiguration scheduler (repro.reconfig).

The load-bearing invariant throughout: a diff-applied configuration is
bit-identical to a full reconfiguration -- the scheduler's active frame
image after any switch sequence equals the target context's rendered
image, frame for frame.
"""

import random

import pytest

from repro.core.flows import build_context_library
from repro.core.reconfiguration import HWICAP, MICAP, ReconfigurationCostModel
from repro.flopoco.circuits import fp_adder_circuit, fp_multiplier_circuit
from repro.flopoco.format import FPFormat
from repro.fpga.architecture import FPGAArchitecture
from repro.fpga.bitstream import Bitstream, ConfigurationLayout
from repro.par.cache import PaRCache
from repro.reconfig import (
    Context,
    ContextLibrary,
    ReconfigScheduler,
    apply_delta,
    diff_images,
    popularity_weights,
    replay,
    synthetic_trace,
    union_frames,
)

TINY = FPFormat(we=4, wf=4)


def random_bitstream(layout: ConfigurationLayout, seed: int, tiles: int = 12) -> Bitstream:
    """A reproducible bitstream configuring ``tiles`` random tiles."""
    rng = random.Random(seed)
    bs = Bitstream(layout)
    arch = layout.arch
    for _ in range(tiles):
        x, y = rng.randint(1, arch.width), rng.randint(1, arch.height)
        bs.set_lut_config(x, y, rng.getrandbits(layout.lut_bits))
        bs.set_routing_config(x, y, rng.getrandbits(min(layout.routing_bits, 48)))
    return bs


@pytest.fixture(scope="module")
def layout():
    return ConfigurationLayout(FPGAArchitecture(width=6, height=6, channel_width=8))


@pytest.fixture(scope="module")
def library(layout):
    """12 random contexts with decaying criticality (ctx0 hottest)."""
    lib = ContextLibrary(layout)
    for i in range(12):
        lib.add_bitstream(
            f"ctx{i}", random_bitstream(layout, seed=100 + i), criticality=1.0 / (i + 1)
        )
    return lib


class TestFrameImage:
    def test_image_is_canonical(self, layout):
        image = random_bitstream(layout, seed=1).frame_image()
        assert image, "configured bitstream must render nonzero frames"
        assert all(value != 0 for value in image.values())
        assert all(0 <= f < layout.total_frames for f in image)

    def test_rendering_is_deterministic(self, layout):
        assert (
            random_bitstream(layout, seed=2).frame_image()
            == random_bitstream(layout, seed=2).frame_image()
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_diff_apply_equals_full_configuration(self, layout, seed):
        """The tentpole invariant, across seeds and in both directions."""
        a = random_bitstream(layout, seed=seed).frame_image()
        b = random_bitstream(layout, seed=seed + 50).frame_image()
        assert apply_delta(a, diff_images(a, b)) == b
        assert apply_delta(b, diff_images(b, a)) == a
        # from/to the blank configuration too (zero writes clear frames)
        assert apply_delta({}, diff_images({}, a)) == a
        assert apply_delta(a, diff_images(a, {})) == {}

    def test_empty_delta_for_identical_images(self, layout):
        a = random_bitstream(layout, seed=3).frame_image()
        assert not diff_images(a, dict(a))
        assert union_frames(a, a) == len(a)

    def test_content_diff_refines_geometric_diff(self, layout):
        """Content-aware frame diffs never exceed the geometric tile diff."""
        x, y = random_bitstream(layout, seed=4), random_bitstream(layout, seed=5)
        content = {f for f, _ in diff_images(x.frame_image(), y.frame_image()).writes}
        assert content <= y.diff_frames(x)

    def test_delta_is_sorted_and_counts(self, layout):
        a = random_bitstream(layout, seed=6).frame_image()
        delta = diff_images({}, a)
        frames = [f for f, _ in delta.writes]
        assert frames == sorted(frames)
        assert delta.num_frames == len(a)


class TestCostModel:
    def test_resident_switch_is_cheaper(self):
        model = ReconfigurationCostModel(HWICAP)
        assert model.diff_switch_time_ms(10, resident=True) < model.diff_switch_time_ms(
            10, resident=False
        )
        assert model.diff_switch_time_ms(0, resident=False) == 0.0

    def test_nonresident_diff_matches_frame_rmw(self):
        model = ReconfigurationCostModel(MICAP)
        assert model.diff_switch_time_ms(7) == pytest.approx(model.time_from_frames_ms(7))


class TestScheduler:
    def test_switch_is_bit_identical_to_full_reconfiguration(self, library):
        sched = ReconfigScheduler(library, budget_frames=40)
        for name in ["ctx0", "ctx5", "ctx2", "ctx5", "ctx11", "ctx0"]:
            sched.switch_to(name)
            assert sched.active_image == library[name].image

    def test_budget_is_never_exceeded(self, library):
        budget = library.total_frames() // 4
        sched = ReconfigScheduler(library, budget_frames=budget)
        for name in synthetic_trace(library.names(), 200, seed=3, skew=1.0):
            sched.switch_to(name)
            assert sched.resident_frames <= budget
            assert sched.resident_frames == sum(
                library[n].num_frames for n in sched.resident_names
            )

    def test_hit_and_miss_accounting(self, library):
        sched = ReconfigScheduler(library, budget_frames=library.total_frames())
        first = sched.switch_to("ctx1")
        assert not first.resident and first.admitted
        again = sched.switch_to("ctx1")
        assert again.resident and again.frames_written == 0 and again.time_ms == 0.0
        stats = sched.stats()
        assert stats["switches"] == 2 and stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_is_deterministic(self, library):
        """Two fresh schedulers replaying one trace take identical decisions."""
        trace = synthetic_trace(library.names(), 300, seed=7, skew=1.1, repeat=0.2)
        budget = library.total_frames() // 3

        def run():
            sched = ReconfigScheduler(library, budget_frames=budget)
            replay(sched, trace)
            return sched.history, sched.resident_names, sched.active_image

        history_a, residents_a, image_a = run()
        history_b, residents_b, image_b = run()
        assert history_a == history_b
        assert residents_a == residents_b
        assert image_a == image_b
        assert any(outcome.evicted for outcome in history_a), "trace must exercise eviction"

    def test_lru_evicts_least_recently_used_first(self, layout):
        lib = ContextLibrary(layout)
        for i in range(3):
            lib.add_bitstream(f"c{i}", random_bitstream(layout, seed=200 + i, tiles=6))
        size = max(c.num_frames for c in lib)
        sched = ReconfigScheduler(lib, budget_frames=2 * size)
        sched.switch_to("c0")
        sched.switch_to("c1")
        sched.switch_to("c0")  # c1 is now LRU
        outcome = sched.switch_to("c2")
        assert "c1" in outcome.evicted and "c0" not in outcome.evicted

    def test_criticality_protects_hot_residents(self, layout):
        """A cold candidate cannot evict a hotter resident (admission refused)."""
        lib = ContextLibrary(layout)
        lib.add_bitstream("hot", random_bitstream(layout, seed=300, tiles=8), criticality=5.0)
        lib.add_bitstream("cold", random_bitstream(layout, seed=301, tiles=8), criticality=0.1)
        budget = lib["hot"].num_frames  # room for exactly one of them
        sched = ReconfigScheduler(lib, budget_frames=budget)
        assert sched.switch_to("hot").admitted
        outcome = sched.switch_to("cold")
        assert not outcome.admitted and not outcome.evicted
        assert sched.resident_names == ["hot"]
        assert sched.stats()["rejected_admissions"] == 1
        # the grid still switched correctly, only residency was refused
        assert sched.active_image == lib["cold"].image

    def test_hot_candidate_evicts_cold_resident(self, layout):
        lib = ContextLibrary(layout)
        lib.add_bitstream("cold", random_bitstream(layout, seed=310, tiles=8), criticality=0.1)
        lib.add_bitstream("hot", random_bitstream(layout, seed=311, tiles=8), criticality=5.0)
        sched = ReconfigScheduler(lib, budget_frames=max(c.num_frames for c in lib))
        sched.switch_to("cold")
        outcome = sched.switch_to("hot")
        assert outcome.admitted and outcome.evicted == ("cold",)

    def test_oversized_context_is_never_admitted(self, library):
        smallest = min(c.num_frames for c in library)
        sched = ReconfigScheduler(library, budget_frames=smallest - 1)
        for name in library.names():
            outcome = sched.switch_to(name)
            assert not outcome.admitted
        assert sched.resident_names == []
        assert sched.stats()["hit_rate"] == 0.0

    def test_reset_clears_state(self, library):
        sched = ReconfigScheduler(library, budget_frames=50)
        sched.switch_to("ctx0")
        sched.reset()
        assert sched.active_name is None and not sched.active_image
        assert sched.stats()["switches"] == 0 and not sched.history


class TestTrace:
    def test_trace_is_deterministic_per_seed(self):
        names = [f"n{i}" for i in range(8)]
        assert synthetic_trace(names, 100, seed=5) == synthetic_trace(names, 100, seed=5)
        assert synthetic_trace(names, 100, seed=5) != synthetic_trace(names, 100, seed=6)

    def test_skew_orders_popularity(self):
        names = [f"n{i}" for i in range(6)]
        trace = synthetic_trace(names, 4000, seed=1, skew=1.5)
        counts = [trace.count(n) for n in names]
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[-1]

    def test_popularity_weights_normalized_and_decreasing(self):
        w = popularity_weights(10, skew=1.2)
        assert w.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_repeat_injects_batch_locality(self, library):
        names = library.names()
        budget = library.total_frames() // 3
        loose = replay(
            ReconfigScheduler(library, budget),
            synthetic_trace(names, 400, seed=9, repeat=0.0),
        )
        batchy = replay(
            ReconfigScheduler(library, budget),
            synthetic_trace(names, 400, seed=9, repeat=0.9),
        )
        assert batchy.total_time_ms < loose.total_time_ms

    def test_replay_report_accounting(self, library):
        sched = ReconfigScheduler(library, budget_frames=library.total_frames())
        trace = synthetic_trace(library.names(), 150, seed=2, skew=1.3)
        report = replay(sched, trace)
        assert report.requests == 150
        assert 0.0 < report.hit_rate <= 1.0
        assert report.frames_written <= report.frames_full
        assert report.frame_savings == pytest.approx(
            1.0 - report.frames_written / report.frames_full
        )
        assert report.contexts_per_sec == pytest.approx(
            150 / (report.total_time_ms / 1000.0)
        )
        keys = set(report.as_dict())
        assert {"contexts_per_sec", "amortized_switch_ms", "hit_rate", "frame_savings"} <= keys


class TestLibraryBuild:
    @pytest.fixture(scope="class")
    def circuits(self):
        return {
            "fp_add": fp_adder_circuit(TINY).circuit,
            "fp_mul": fp_multiplier_circuit(TINY).circuit,
        }

    @pytest.fixture(scope="class")
    def built(self, circuits):
        return build_context_library(
            circuits,
            channel_width=10,
            placement_effort=0.3,
            router_iterations=12,
            popularity={"fp_add": 2.0},
        )

    def test_contexts_share_one_grid(self, built):
        assert built.names() == ["fp_add", "fp_mul"]
        for context in built:
            assert context.num_frames > 0
            assert context.metadata["critical_path_ns"] > 0
            assert context.metadata["wirelength"] > 0
        assert built["fp_add"].criticality == 2.0
        assert built["fp_mul"].criticality == 0.0

    def test_contexts_schedule_bit_identically(self, built):
        sched = ReconfigScheduler(built, budget_frames=built.total_frames())
        for name in ["fp_add", "fp_mul", "fp_add"]:
            sched.switch_to(name)
            assert sched.active_image == built[name].image

    def test_warm_cache_build_skips_routing(self, circuits, tmp_path):
        """Second library build re-hydrates every route from the PaR cache."""
        knobs = dict(channel_width=10, placement_effort=0.3, router_iterations=12)
        cold_cache = PaRCache(tmp_path)
        cold = build_context_library(circuits, cache=cold_cache, **knobs)
        assert cold_cache.stats()["hits"] == 0
        assert cold_cache.stats()["misses"] >= len(circuits)

        warm_cache = PaRCache(tmp_path)
        warm = build_context_library(circuits, cache=warm_cache, **knobs)
        stats = warm_cache.stats()
        assert stats["hits"] == len(circuits), "every context route must re-hydrate"
        assert stats["misses"] == 0
        assert stats["read_errors"] == 0
        # a re-hydrated build renders bit-identical contexts
        for name in cold.names():
            assert warm[name].image == cold[name].image

    def test_mean_delta_probe(self, built):
        assert built.mean_delta_frames() > 0
