"""Unit tests for bit-parallel circuit simulation."""

import pytest

from repro.netlist.circuit import Circuit, Op
from repro.netlist.simulate import (
    exhaustive_patterns,
    random_patterns,
    simulate_patterns,
    simulate_single,
    simulate_words,
)


def build_majority():
    """3-input majority gate circuit."""
    c = Circuit("maj")
    a, b, d = c.add_input("a"), c.add_input("b"), c.add_input("d")
    ab = c.g_and(a, b)
    ad = c.g_and(a, d)
    bd = c.g_and(b, d)
    c.add_output("y", c.g_or(ab, ad, bd))
    return c


class TestSimulatePatterns:
    def test_majority_exhaustive(self):
        c = build_majority()
        pats = exhaustive_patterns(c.input_ids())
        values = simulate_patterns(c, pats, 8)
        y = values[c.outputs["y"]]
        for p in range(8):
            bits = [(p >> i) & 1 for i in range(3)]
            assert ((y >> p) & 1) == (1 if sum(bits) >= 2 else 0)

    def test_all_gate_ops(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        s = c.add_input("s")
        c.add_output("and", c.gate(Op.AND, a, b))
        c.add_output("or", c.gate(Op.OR, a, b))
        c.add_output("xor", c.gate(Op.XOR, a, b))
        c.add_output("nand", c.gate(Op.NAND, a, b))
        c.add_output("nor", c.gate(Op.NOR, a, b))
        c.add_output("xnor", c.gate(Op.XNOR, a, b))
        c.add_output("not", c.gate(Op.NOT, a))
        c.add_output("buf", c.gate(Op.BUF, a))
        c.add_output("mux", c.gate(Op.MUX, s, a, b))
        for pa in (0, 1):
            for pb in (0, 1):
                for ps in (0, 1):
                    out = simulate_single(c, {"a": pa, "b": pb, "s": ps})
                    assert out["and"] == (pa & pb)
                    assert out["or"] == (pa | pb)
                    assert out["xor"] == (pa ^ pb)
                    assert out["nand"] == 1 - (pa & pb)
                    assert out["nor"] == 1 - (pa | pb)
                    assert out["xnor"] == 1 - (pa ^ pb)
                    assert out["not"] == 1 - pa
                    assert out["buf"] == pa
                    assert out["mux"] == (pb if ps else pa)

    def test_unspecified_inputs_default_to_zero(self):
        c = build_majority()
        out = simulate_single(c, {"a": 1})
        assert out["y"] == 0

    def test_param_defaults_to_zero(self):
        c = Circuit()
        a = c.add_input("a")
        k = c.add_param("k")
        c.add_output("y", c.g_and(a, k))
        values = simulate_patterns(c, {a: 0b11}, 2)
        assert values[c.outputs["y"]] == 0

    def test_constants(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("one", c.g_or(a, c.const(1)))
        c.add_output("zero", c.g_and(a, c.const(0)))
        values = simulate_patterns(c, {a: 0b01}, 2)
        assert values[c.outputs["one"]] == 0b11
        assert values[c.outputs["zero"]] == 0


class TestSimulateWords:
    def test_missing_bus_raises(self):
        c = Circuit()
        c.add_input("a[0]")
        with pytest.raises(KeyError):
            simulate_words(c, {"b": [1]})

    def test_single_bit_bus_by_plain_name(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", c.g_not(a))
        out = simulate_words(c, {"a": [0, 1]})
        assert list(out["y"]) == [1, 0]


class TestPatternGenerators:
    def test_random_patterns_deterministic(self):
        c = build_majority()
        p1 = random_patterns(c, 64)
        p2 = random_patterns(c, 64)
        assert p1 == p2

    def test_exhaustive_patterns_cover_all(self):
        ids = [10, 20, 30]
        pats = exhaustive_patterns(ids)
        seen = set()
        for p in range(8):
            assignment = tuple((pats[i] >> p) & 1 for i in ids)
            seen.add(assignment)
        assert len(seen) == 8
