"""Tests for BLIF export of circuits and mapped networks."""

import pytest

from repro.netlist.circuit import Circuit, Op
from repro.netlist.export import circuit_to_blif, mapped_network_to_blif
from repro.netlist.hdl import Design
from repro.synth.constprop import param_bit_values
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized


def parse_names_blocks(blif: str):
    """Split a BLIF text into .names blocks: {output: (inputs, cover rows)}."""
    blocks = {}
    lines = blif.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith(".names"):
            sigs = line.split()[1:]
            out = sigs[-1]
            cover = []
            i += 1
            while i < len(lines) and not lines[i].startswith(".") and not lines[i].startswith("#"):
                if lines[i].strip():
                    cover.append(lines[i].strip())
                i += 1
            blocks[out] = (sigs[:-1], cover)
        else:
            i += 1
    return blocks


def eval_blif(blif: str, input_values: dict) -> dict:
    """Tiny BLIF interpreter used to check exported logic against the source."""
    blocks = parse_names_blocks(blif)
    lines = blif.splitlines()
    inputs = []
    outputs = []
    for line in lines:
        if line.startswith(".inputs"):
            inputs = line.split()[1:]
        elif line.startswith(".outputs"):
            outputs = line.split()[1:]
    values = dict(input_values)

    def value_of(sig):
        if sig in values:
            return values[sig]
        ins, cover = blocks[sig]
        in_vals = [value_of(s) for s in ins]
        out = 0
        for row in cover:
            if " " in row:
                pattern, result = row.rsplit(" ", 1)
            else:
                pattern, result = "", row
            match = all(
                p == "-" or int(p) == v for p, v in zip(pattern, in_vals)
            )
            if match and result == "1":
                out = 1
        values[sig] = out
        return out

    return {o: value_of(o) for o in outputs}


class TestCircuitExport:
    def test_all_gate_types_roundtrip(self):
        c = Circuit("gates")
        a, b, s = c.add_input("a"), c.add_input("b"), c.add_input("s")
        c.add_output("o_and", c.gate(Op.AND, a, b))
        c.add_output("o_or", c.gate(Op.OR, a, b))
        c.add_output("o_xor", c.gate(Op.XOR, a, b))
        c.add_output("o_nand", c.gate(Op.NAND, a, b))
        c.add_output("o_nor", c.gate(Op.NOR, a, b))
        c.add_output("o_xnor", c.gate(Op.XNOR, a, b))
        c.add_output("o_not", c.gate(Op.NOT, a))
        c.add_output("o_mux", c.gate(Op.MUX, s, a, b))
        blif = circuit_to_blif(c)
        assert blif.startswith(".model gates")
        for va in (0, 1):
            for vb in (0, 1):
                for vs in (0, 1):
                    out = eval_blif(blif, {"a": va, "b": vb, "s": vs})
                    assert out["o_and"] == (va & vb)
                    assert out["o_or"] == (va | vb)
                    assert out["o_xor"] == (va ^ vb)
                    assert out["o_nand"] == 1 - (va & vb)
                    assert out["o_nor"] == 1 - (va | vb)
                    assert out["o_xnor"] == 1 - (va ^ vb)
                    assert out["o_not"] == 1 - va
                    assert out["o_mux"] == (vb if vs else va)

    def test_params_are_annotated(self):
        d = Design("p")
        a = d.input_bus("a", 2)
        k = d.param_bus("k", 2)
        d.output_bus("y", d.v_and(a, k))
        blif = circuit_to_blif(d.circuit)
        assert "# --PARAM inputs:" in blif
        assert "k[0]" in blif

    def test_constants_exported(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", c.g_or(a, c.const(1)))
        blif = circuit_to_blif(c)
        assert eval_blif(blif, {"a": 0})["y"] == 1


class TestMappedNetworkExport:
    def test_static_network_export(self):
        d = Design("adder")
        a = d.input_bus("a", 3)
        b = d.input_bus("b", 3)
        d.output_bus("s", d.adder(a, b)[0])
        net = map_conventional(optimize(d.circuit)[0])
        blif = mapped_network_to_blif(net)
        out = eval_blif(blif, {f"a[{i}]": (3 >> i) & 1 for i in range(3)}
                        | {f"b[{i}]": (2 >> i) & 1 for i in range(3)})
        value = sum(out[f"s[{i}]"] << i for i in range(3))
        assert value == 5

    def test_parameterized_network_needs_param_values(self):
        d = Design("pmul")
        a = d.input_bus("a", 3)
        k = d.param_bus("k", 3)
        d.output_bus("p", d.multiplier(a, k))
        net = map_parameterized(optimize(d.circuit)[0])
        with pytest.raises(ValueError):
            mapped_network_to_blif(net)

    def test_specialized_export_matches_arithmetic(self):
        d = Design("pmul")
        a = d.input_bus("a", 3)
        k = d.param_bus("k", 3)
        d.output_bus("p", d.multiplier(a, k))
        net = map_parameterized(optimize(d.circuit)[0])
        params = param_bit_values(net.source, {"k": 5})
        blif = mapped_network_to_blif(net, param_values=params)
        assert "# TCON" in blif
        out = eval_blif(blif, {f"a[{i}]": (6 >> i) & 1 for i in range(3)})
        value = sum(out[f"p[{i}]"] << i for i in range(6))
        assert value == 30
