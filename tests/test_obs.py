"""Observability layer: spans, metrics, telemetry, trajectory neutrality.

The contract under test (see ``src/repro/obs/`` and OBSERVABILITY.md):

* a *disabled* ``span()`` call is cheap enough for per-iteration use in the
  hot loops (bounded ns/call, same global-load + ``None``-compare trick as
  ``repro.util.resilience.inject``);
* spans nest correctly per (process, thread), including across forked
  process-pool workers sharing one trace file;
* both output formats parse: JSON-lines and sealed Chrome ``trace_event``
  arrays (loadable in chrome://tracing / Perfetto), and the text reporter
  renders them;
* instrumentation is **trajectory-neutral**: routes and placements are
  bit-identical with tracing on and off, across seeds and kernels;
* every hot seam snapshots its per-run numbers into ``telemetry``
  (RoutingResult / PlacementResult / PaRResult) and the process-wide
  metrics registry.
"""

import json
import os
import time

import pytest

from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.netlist.hdl import Design
from repro.obs import metrics as obs_metrics
from repro.obs.report import load_records, render_report, sparkline, write_chrome
from repro.obs.trace import clear, emit_event, emit_series, span, traced, tracing
from repro.par.flow import place_and_route, placement_sweep
from repro.par.netlist import from_mapped_network
from repro.par.placement import place
from repro.par.routing import route
from repro.synth.optimize import optimize
from repro.techmap import map_conventional


def adder_netlist(width=4):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return from_mapped_network(map_conventional(opt))


def sized_arch(nl, channel_width=10):
    num_logic = nl.num_logic_blocks() + nl.num_ff_blocks()
    return auto_size(num_logic, nl.num_io_blocks(), channel_width=channel_width)


@pytest.fixture(autouse=True)
def _no_ambient_tracer(monkeypatch):
    """Tests control the tracer explicitly; never inherit REPRO_TRACE."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    clear()
    yield
    clear()


class TestSpanMachinery:
    def test_disabled_span_is_cheap(self):
        # The zero-overhead-when-disabled contract: a disabled span() call
        # is a function call + global load + None compare.  The bound is
        # deliberately generous (CI machines are noisy); the benchmark
        # records the real figure in kernels.obs.
        n = 50_000
        with span("warmup"):
            pass
        clear()  # disabled from here on
        t0 = time.perf_counter_ns()
        for _ in range(n):
            with span("x"):
                pass
        per_call = (time.perf_counter_ns() - t0) / n
        assert per_call < 10_000, f"disabled span cost {per_call:.0f} ns/call"

    def test_jsonl_spans_nest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path)):
            with span("outer", tag=1):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
            emit_event("ev", {"k": "v"})
            emit_series("curve", [3, 2, 1], kind="test")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert len(by_name["inner"]) == 2
        assert len(by_name["outer"]) == 1
        outer = by_name["outer"][0]
        assert outer["depth"] == 0 and outer["args"] == {"tag": 1}
        assert all(s["depth"] == 1 for s in by_name["inner"])
        # children close before the parent, so they are recorded first
        assert records.index(by_name["inner"][0]) < records.index(outer)
        # inner spans lie within the parent's [ts, ts+dur] window
        for s in by_name["inner"]:
            assert outer["ts"] <= s["ts"]
            assert s["ts"] + s["dur"] <= outer["ts"] + outer["dur"] + 1
        events = [r for r in records if r["type"] == "event"]
        series = [r for r in records if r["type"] == "series"]
        assert events[0]["name"] == "ev" and events[0]["args"] == {"k": "v"}
        assert series[0]["values"] == [3, 2, 1]

    def test_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        with tracing(str(path)):
            with span("a"):
                with span("b"):
                    pass
            emit_series("curve", [1.0, 0.5])
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        phases = {e["ph"] for e in data}
        assert "X" in phases and "M" in phases
        names = {e["name"] for e in data}
        assert {"a", "b", "curve"} <= names

    def test_traced_decorator_binds_per_call(self, tmp_path):
        @traced("deco.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: plain passthrough
        path = tmp_path / "t.jsonl"
        with tracing(str(path)):
            assert fn(2) == 3
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert "deco.fn" in names

    def test_report_renders_and_converts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path)):
            with span("phase"):
                with span("step"):
                    pass
            emit_series("curve", [9, 4, 1])
            obs_metrics.add("test.counter", 7)
        records = load_records(str(path))
        text = render_report(records)
        assert "phase" in text and "curve" in text and "test.counter" in text
        chrome = tmp_path / "out.json"
        write_chrome(records, str(chrome))
        data = json.loads(chrome.read_text())
        assert {"phase", "step"} <= {e["name"] for e in data}
        # the chrome round-trip parses back into equivalent record types
        back = load_records(str(chrome))
        assert {r["type"] for r in back} >= {"span", "series", "counter"}

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert len(sparkline([1, 2, 3])) == 3
        assert len(sparkline(list(range(1000)), width=40)) == 40
        assert sparkline([5, 5, 5]) == "▁▁▁"


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = obs_metrics.MetricsRegistry()
        reg.add("c")
        reg.add("c", 4)
        reg.gauge("g", 2.5)
        for v in (1.0, 2.0, 3.0):
            reg.observe("h", v)
        reg.merge({"c": 5, "other": 1})
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 10
        assert snap["counters"]["other"] == 1
        assert snap["gauges"]["g"] == 2.5
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 3.0
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_snapshot_lands_in_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs_metrics.add("obs.test.unique", 3)
        with tracing(str(path)):
            with span("s"):
                pass
        records = [json.loads(line) for line in path.read_text().splitlines()]
        counters = {r["name"]: r["value"] for r in records if r["type"] == "counter"}
        assert counters.get("obs.test.unique", 0) >= 3


class TestPoolWorkers:
    def test_sweep_spans_across_workers(self, tmp_path):
        nl = adder_netlist(4)
        arch = sized_arch(nl)
        path = tmp_path / "pool.jsonl"
        with tracing(str(path)):
            results = placement_sweep(
                nl, arch, seeds=[0, 1, 2, 3], effort=0.3, workers=2
            )
        assert len(results) == 4
        records = [json.loads(line) for line in path.read_text().splitlines()]
        place_spans = [
            r for r in records if r["type"] == "span" and r["name"] == "par.place"
        ]
        assert len(place_spans) == 4
        # every span tree is well-formed in its own (pid, tid) lane: the
        # par.place span is that worker's top-level span (depth 0)
        assert all(s["depth"] == 0 for s in place_spans)
        if os.name == "posix":
            # forked workers contribute records under their own pids
            assert len({s["pid"] for s in place_spans}) >= 2
        # the sweep's results equal a tracing-off serial run
        baseline = placement_sweep(nl, arch, seeds=[0, 1, 2, 3], effort=0.3)
        for got, want in zip(results, baseline):
            assert got.cost == want.cost
            assert got.placement.block_site == want.placement.block_site


class TestTrajectoryNeutrality:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_place_bit_identical_with_tracing(self, tmp_path, seed):
        nl = adder_netlist(4)
        arch = sized_arch(nl)
        for kernel in ("incremental", "batched"):
            off = place(nl, arch, seed=seed, effort=0.4, kernel=kernel)
            with tracing(str(tmp_path / f"p{kernel}{seed}.jsonl")):
                on = place(nl, arch, seed=seed, effort=0.4, kernel=kernel)
            assert on.cost == off.cost
            assert on.placement.block_site == off.placement.block_site
            assert on.moves_accepted == off.moves_accepted

    @pytest.mark.parametrize("seed", [0, 1])
    def test_route_bit_identical_with_tracing(self, tmp_path, seed):
        nl = adder_netlist(4)
        arch = sized_arch(nl)
        device = build_device(arch)
        placement = place(nl, arch, seed=seed, effort=0.4).placement
        off = route(nl, placement, device, max_iterations=12)
        with tracing(str(tmp_path / f"r{seed}.jsonl")):
            on = route(nl, placement, device, max_iterations=12)
        assert on.success == off.success
        assert on.wirelength == off.wirelength
        assert on.routes.keys() == off.routes.keys()
        for nid in off.routes:
            assert on.routes[nid].nodes == off.routes[nid].nodes


class TestTelemetry:
    def test_route_telemetry_shape(self):
        nl = adder_netlist(4)
        arch = sized_arch(nl)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.4).placement
        result = route(nl, placement, device, max_iterations=12)
        t = result.telemetry
        assert t is not None and t["kernel"] == result.kernel
        n = len(t["overuse_per_iteration"])
        assert n >= 1
        assert len(t["rerouted_nets_per_iteration"]) == n
        assert len(t["iteration_wall_ms"]) == n
        assert t["nodes_expanded"] > 0
        if result.success:
            assert t["overuse_per_iteration"][-1] == 0

    def test_place_telemetry_shape(self):
        nl = adder_netlist(4)
        arch = sized_arch(nl)
        result = place(nl, arch, seed=0, effort=0.4)
        t = result.telemetry
        assert t is not None and t["kernel"] == "incremental"
        steps = result.temperature_steps
        assert len(t["temperature"]) == steps
        assert len(t["cost"]) == steps
        assert len(t["acceptance"]) == steps
        # annealing converges: the cost curve ends at the final cost and
        # the temperature axis is monotonically non-increasing
        assert t["cost"][-1] == result.cost
        assert all(a >= b for a, b in zip(t["temperature"], t["temperature"][1:]))
        assert all(0.0 <= a <= 1.0 for a in t["acceptance"])

    def test_par_result_telemetry_and_summary(self, tmp_path):
        from repro.par.cache import PaRCache

        nl_design = Design("adder")
        a = nl_design.input_bus("a", 4)
        b = nl_design.input_bus("b", 4)
        s, co = nl_design.adder(a, b)
        nl_design.output_bus("s", s)
        nl_design.output_bit("cout", co)
        opt, _ = optimize(nl_design.circuit)
        network = map_conventional(opt)

        cache = PaRCache(tmp_path / "cache")
        par = place_and_route(
            network, placement_effort=0.3, router_iterations=12, cache=cache
        )
        t = par.telemetry
        assert t is not None
        assert t["route"]["kernel"] == par.routing.kernel
        assert t["place"]["kernel"] == "incremental"
        assert t["cache"]["misses"] >= 1 and t["cache"]["hits"] == 0
        summary = par.summary()
        assert summary["cache_misses"] >= 1
        assert summary["cache_hit_rate"] == 0.0

        # second run: the route re-hydrates from cache and says so
        par2 = place_and_route(
            network, placement_effort=0.3, router_iterations=12, cache=cache
        )
        assert par2.routing.telemetry.get("from_cache") is True
        assert par2.summary()["cache_hits"] >= 1
        assert par2.telemetry["cache"]["hit_rate"] > 0.0

    def test_registry_counters_flow(self):
        nl = adder_netlist(3)
        arch = sized_arch(nl)
        reg = obs_metrics.registry()
        before = reg.snapshot()["counters"]
        place(nl, arch, seed=0, effort=0.3)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        route(nl, placement, device, max_iterations=10)
        after = reg.snapshot()["counters"]

        def delta(key):
            return after.get(key, 0) - before.get(key, 0)

        assert delta("place.calls") == 2
        assert delta("route.calls") == 1
        assert delta("route.nodes_expanded") > 0
