"""Equivalence tests for the compiled simulation engine and the PAR kernels.

The compiled engine must be *bit-identical* to the legacy per-node
interpreter for every circuit shape and pattern count, and the reworked
placement / routing kernels must reproduce the exact results of the
reference implementations for fixed seeds (the annealer draws the same
random sequence and computes exact integer deltas; the router performs the
same float operations in the same order).
"""

import random

import pytest

from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.netlist.circuit import Circuit, Op
from repro.netlist.engine import CompiledCircuit, compile_circuit
from repro.netlist.hdl import Design
from repro.netlist.simulate import (
    exhaustive_patterns,
    random_patterns,
    simulate_patterns,
    simulate_patterns_reference,
    simulate_single,
    simulate_words,
)
from repro.par.netlist import from_mapped_network
from repro.par.placement import place
from repro.par.routing import route
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized

ALL_GATES = (Op.BUF, Op.NOT, Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR, Op.MUX)


def random_circuit(rng, num_inputs=4, num_params=2, num_gates=40, with_consts=True):
    """A random DAG exercising every Op kind, params and constants."""
    c = Circuit()
    pool = [c.add_input(f"i{k}") for k in range(num_inputs)]
    pool += [c.add_param(f"p{k}") for k in range(num_params)]
    if with_consts:
        pool.append(c.const(0))
        pool.append(c.const(1))
    for _ in range(num_gates):
        op = rng.choice(ALL_GATES)
        arity = Op.ARITY[op] or rng.randint(2, 4)
        pool.append(c.gate(op, *(rng.choice(pool) for _ in range(arity))))
    for j, node in enumerate(rng.sample(pool, min(4, len(pool)))):
        c.add_output(f"o{j}", node)
    return c


class TestCompiledEngineEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_all_pattern_counts(self, seed):
        rng = random.Random(seed)
        c = random_circuit(
            rng,
            num_inputs=rng.randint(1, 6),
            num_params=rng.randint(0, 3),
            num_gates=rng.randint(5, 80),
            with_consts=bool(seed % 2),
        )
        for num_patterns in (1, 3, 63, 64, 65, 128, 200):
            inputs = {nid: rng.getrandbits(num_patterns) for nid in c.input_ids()}
            params = {nid: rng.getrandbits(num_patterns) for nid in c.param_ids()}
            ref = simulate_patterns_reference(c, inputs, num_patterns, params)
            new = simulate_patterns(c, inputs, num_patterns, params)
            assert ref == new

    def test_unspecified_leaves_default_to_zero(self):
        c = Circuit()
        a = c.add_input("a")
        p = c.add_param("p")
        c.add_output("o", c.g_or(a, p))
        ref = simulate_patterns_reference(c, {}, 8)
        new = simulate_patterns(c, {}, 8)
        assert ref == new

    def test_exhaustive_patterns_drive_identical_truth_tables(self):
        rng = random.Random(99)
        c = random_circuit(rng, num_inputs=4, num_params=0, num_gates=30)
        pats = exhaustive_patterns(c.input_ids())
        n = 1 << len(c.input_ids())
        assert simulate_patterns(c, pats, n) == simulate_patterns_reference(c, pats, n)

    def test_exhaustive_patterns_closed_form(self):
        c = Circuit()
        ids = [c.add_input(f"i{k}") for k in range(5)]
        pats = exhaustive_patterns(ids)
        for i, nid in enumerate(ids):
            expected = 0
            for p in range(32):
                if (p >> i) & 1:
                    expected |= 1 << p
            assert pats[nid] == expected

    def test_compiled_artifact_is_cached_and_invalidated(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("o", c.g_not(a))
        eng1 = compile_circuit(c)
        assert compile_circuit(c) is eng1
        c.add_output("o2", c.g_not(c.add_input("b")))  # grow the circuit
        eng2 = compile_circuit(c)
        assert eng2 is not eng1
        assert eng2.num_nodes == len(c.ops)

    def test_plane_backend_matches_straightline(self):
        rng = random.Random(17)
        c = random_circuit(rng, num_inputs=5, num_params=2, num_gates=60)
        eng = compile_circuit(c)
        for num_patterns in (1, 64, 130):
            inputs = {nid: rng.getrandbits(num_patterns) for nid in c.input_ids()}
            params = {nid: rng.getrandbits(num_patterns) for nid in c.param_ids()}
            assert eng.simulate_planes(inputs, num_patterns, params) == (
                eng.simulate_values(inputs, num_patterns, params)
            )

    def test_direct_engine_matches_wrapper(self):
        rng = random.Random(5)
        c = random_circuit(rng)
        eng = CompiledCircuit(c)
        inputs = {nid: rng.getrandbits(70) for nid in c.input_ids()}
        assert eng.simulate(inputs, 70) == simulate_patterns_reference(c, inputs, 70)

    def test_simulate_words_matches_per_pattern_single(self):
        d = Design("mix")
        a = d.input_bus("a", 5)
        b = d.input_bus("b", 5)
        s, co = d.adder(a, b)
        d.output_bus("s", s)
        d.output_bit("cout", co)
        rng = random.Random(3)
        a_words = [rng.getrandbits(5) for _ in range(11)]
        b_words = [rng.getrandbits(5) for _ in range(11)]
        out = simulate_words(d.circuit, {"a": a_words, "b": b_words})
        for p, (x, y) in enumerate(zip(a_words, b_words)):
            bits = {}
            for k in range(5):
                bits[f"a[{k}]"] = (x >> k) & 1
                bits[f"b[{k}]"] = (y >> k) & 1
            single = simulate_single(d.circuit, bits)
            word = sum(single[f"s[{k}]"] << k for k in range(5))
            assert int(out["s"][p]) == word
            assert int(out["cout"][p]) == single["cout"]

    def test_simulate_words_wide_bus_uses_exact_path(self):
        # Buses wider than 64 bits must not hit np.uint64 shifts >= 64
        # (undefined behavior); the big-integer fallback handles them.
        d = Design("wide")
        a = d.input_bus("a", 70)
        d.output_bit("hi", a[69])
        d.output_bit("lo", a[0])
        words = [1, 1 << 69, (1 << 69) | 1]
        out = simulate_words(d.circuit, {"a": words})
        assert [int(v) for v in out["hi"]] == [0, 1, 1]
        assert [int(v) for v in out["lo"]] == [1, 0, 1]

    def test_random_patterns_are_deterministic_and_width_bounded(self):
        c = Circuit()
        for k in range(3):
            c.add_input(f"i{k}")
        p1 = random_patterns(c, 100)
        p2 = random_patterns(c, 100)
        assert p1 == p2
        assert all(v < (1 << 100) for v in p1.values())


def _mapped_adder(width=6, param=False):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.param_bus("b", width) if param else d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_parameterized(opt) if param else map_conventional(opt)


class TestKernelReproducibility:
    @pytest.mark.parametrize("seed,param", [(0, False), (7, True)])
    def test_placement_kernels_identical_for_fixed_seed(self, seed, param):
        network = _mapped_adder(6, param=param)
        netlist = from_mapped_network(network)
        arch = auto_size(
            netlist.num_logic_blocks() + netlist.num_ff_blocks(),
            netlist.num_io_blocks(),
            channel_width=8,
        )
        ref = place(netlist, arch, seed=seed, effort=0.4, kernel="reference")
        new = place(netlist, arch, seed=seed, effort=0.4, kernel="incremental")
        assert new.cost == ref.cost
        assert new.initial_cost == ref.initial_cost
        assert new.moves_attempted == ref.moves_attempted
        assert new.moves_accepted == ref.moves_accepted
        assert new.temperature_steps == ref.temperature_steps
        for bid, site in ref.placement.block_site.items():
            assert new.placement.block_site[bid].as_tuple() == site.as_tuple()

    def test_placement_kernels_identical_with_duplicate_net_pins(self):
        # PhysicalNetlist permits a repeated sink; the incremental kernel
        # must dedup pins or its bbox boundary counts go stale.
        from repro.par.netlist import PhysicalNetlist

        nl = PhysicalNetlist("dup")
        pi = nl.add_block("pi", "io")
        blocks = [nl.add_block(f"l{i}", "clb") for i in range(6)]
        nl.add_net("fan", pi, [blocks[0], blocks[1], blocks[0]])  # duplicated sink
        for i in range(5):
            nl.add_net(f"n{i}", blocks[i], [blocks[i + 1], blocks[0], blocks[i + 1]])
        po = nl.add_block("po", "io")
        nl.add_net("out", blocks[-1], [po])
        nl.validate()
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=4)
        for seed in (0, 1, 5):
            ref = place(nl, arch, seed=seed, kernel="reference")
            new = place(nl, arch, seed=seed, kernel="incremental")
            assert new.cost == ref.cost
            assert new.moves_accepted == ref.moves_accepted
            for bid, site in ref.placement.block_site.items():
                assert new.placement.block_site[bid].as_tuple() == site.as_tuple()

    def test_placement_is_seed_reproducible(self):
        network = _mapped_adder(4)
        netlist = from_mapped_network(network)
        arch = auto_size(
            netlist.num_logic_blocks(), netlist.num_io_blocks(), channel_width=8
        )
        a = place(netlist, arch, seed=11, effort=0.4)
        b = place(netlist, arch, seed=11, effort=0.4)
        assert a.cost == b.cost and a.moves_accepted == b.moves_accepted

    def test_routing_kernels_identical_for_fixed_seed(self):
        network = _mapped_adder(6)
        netlist = from_mapped_network(network)
        arch = auto_size(
            netlist.num_logic_blocks(), netlist.num_io_blocks(), channel_width=6
        )
        device = build_device(arch)
        placement = place(netlist, arch, seed=2, effort=0.4).placement
        ref = route(netlist, placement, device, kernel="reference")
        new = route(netlist, placement, device, kernel="fast")
        assert new.success == ref.success
        assert new.iterations == ref.iterations
        assert new.wirelength == ref.wirelength
        assert new.overused_nodes == ref.overused_nodes
        assert new.max_channel_occupancy == ref.max_channel_occupancy
        assert set(new.routes) == set(ref.routes)
        for nid, r in ref.routes.items():
            assert new.routes[nid].nodes == r.nodes
