"""Failure-path tests for the on-disk PAR result cache.

The happy path (hit/miss, key stability, pool sharing) is covered by the
placement-sweep and minimum-channel-width tests in ``test_par.py``; PaRCache
is on the nightly critical path now, so the ways a cache directory can rot
on a shared CI box get their own coverage:

* corrupt or truncated JSON on disk must read as a miss, never raise,
* concurrent writers to one key must end in a consistent last-write-wins
  state (atomic replace), with no torn file visible to readers,
* unwritable cache directories must fail the write silently (the cache is
  an optimization, not a dependency).
"""

import json
import os
import threading

import pytest

from repro.par.cache import PaRCache


@pytest.fixture
def cache(tmp_path):
    return PaRCache(tmp_path / "par-cache")


class TestCorruptEntries:
    def test_corrupt_json_reads_as_miss(self, cache):
        cache.put("k", {"value": 1})
        cache._path("k").write_text("{not json at all")
        assert cache.get("k") is None
        assert cache.misses == 1

    def test_truncated_file_reads_as_miss(self, cache):
        cache.put("k", {"value": list(range(100))})
        path = cache._path("k")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get("k") is None

    def test_empty_file_reads_as_miss(self, cache):
        cache._path("k").write_bytes(b"")
        assert cache.get("k") is None

    def test_missing_file_reads_as_miss(self, cache):
        assert cache.get("nope") is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_corrupt_entry_can_be_overwritten(self, cache):
        cache._path("k").write_text("garbage")
        assert cache.get("k") is None
        cache.put("k", {"value": 2})
        assert cache.get("k") == {"value": 2}

    def test_no_tmp_files_left_behind(self, cache):
        for i in range(5):
            cache.put(f"k{i}", {"i": i})
        leftovers = list(cache.directory.glob("*.tmp"))
        assert leftovers == []


class TestConcurrentWriters:
    def test_concurrent_writers_last_write_wins(self, cache):
        """Racing writers must leave one complete value, never a torn file.

        The payloads are sized so a non-atomic write would be visible as a
        JSON parse error (caught by get() returning None mid-race, which
        the loop asserts never coexists with a final inconsistent state).
        """
        n_writers = 8
        n_rounds = 25
        barrier = threading.Barrier(n_writers)
        payload = {str(i): list(range(200)) for i in range(10)}

        def writer(wid: int) -> None:
            for r in range(n_rounds):
                barrier.wait()
                cache.put("shared", {"writer": wid, "round": r, **payload})

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        final = cache.get("shared")
        assert final is not None, "every writer finished, a value must exist"
        # Last write wins: the surviving value is one writer's final-round
        # payload, complete and internally consistent.
        assert final["round"] == n_rounds - 1
        assert 0 <= final["writer"] < n_writers
        assert final["0"] == list(range(200))
        # The atomic replace leaves no partial temp files behind.
        assert list(cache.directory.glob("*.tmp")) == []

    def test_reader_during_writes_never_sees_torn_json(self, cache):
        stop = threading.Event()
        errors = []

        def reader() -> None:
            while not stop.is_set():
                value = cache.get("shared")
                if value is not None and "sentinel" not in value:
                    errors.append(value)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for i in range(200):
                cache.put("shared", {"sentinel": True, "i": i, "pad": "x" * 2048})
        finally:
            stop.set()
            t.join()
        assert errors == []

    def test_two_caches_one_directory_share_entries(self, tmp_path):
        a = PaRCache(tmp_path / "shared")
        b = PaRCache(tmp_path / "shared")
        a.put("k", {"from": "a"})
        assert b.get("k") == {"from": "a"}
        b.put("k", {"from": "b"})
        assert a.get("k") == {"from": "b"}


class TestUnwritableDirectory:
    def test_put_into_unwritable_directory_is_silent(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("directory permissions are not enforced for root")
        cache = PaRCache(tmp_path / "ro")
        os.chmod(cache.directory, 0o500)
        try:
            cache.put("k", {"value": 1})  # must not raise
            assert cache.get("k") is None
        finally:
            os.chmod(cache.directory, 0o700)

    def test_get_from_deleted_directory_is_miss(self, tmp_path):
        cache = PaRCache(tmp_path / "gone")
        cache.put("k", {"value": 1})
        for child in cache.directory.iterdir():
            child.unlink()
        cache.directory.rmdir()
        assert cache.get("k") is None


class TestKeyHygiene:
    def test_values_round_trip_json_exactly(self, cache):
        value = {"success": True, "wirelength": 12345, "attempts": {"8": False}}
        cache.put("k", value)
        assert cache.get("k") == json.loads(json.dumps(value))

    def test_distinct_keys_do_not_collide(self, cache):
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") == {"v": 2}
