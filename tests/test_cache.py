"""Failure-path tests for the on-disk PAR result cache.

The happy path (hit/miss, key stability, pool sharing) is covered by the
placement-sweep and minimum-channel-width tests in ``test_par.py``; PaRCache
is on the nightly critical path now, so the ways a cache directory can rot
on a shared CI box get their own coverage:

* corrupt or truncated JSON on disk must read as a miss, never raise,
* concurrent writers to one key must end in a consistent last-write-wins
  state (atomic replace), with no torn file visible to readers,
* unwritable cache directories must fail the write silently (the cache is
  an optimization, not a dependency).
"""

import json
import os
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.par.cache import (
    LocalDirBackend,
    MemoryBackend,
    PaRCache,
)
from repro.util import FaultPlan, fault_plan


@pytest.fixture
def cache(tmp_path):
    return PaRCache(tmp_path / "par-cache")


class TestCorruptEntries:
    def test_corrupt_json_reads_as_miss(self, cache):
        cache.put("k", {"value": 1})
        cache._path("k").write_text("{not json at all")
        assert cache.get("k") is None
        assert cache.misses == 1

    def test_truncated_file_reads_as_miss(self, cache):
        cache.put("k", {"value": list(range(100))})
        path = cache._path("k")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get("k") is None

    def test_empty_file_reads_as_miss(self, cache):
        cache._path("k").write_bytes(b"")
        assert cache.get("k") is None

    def test_missing_file_reads_as_miss(self, cache):
        assert cache.get("nope") is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_corrupt_entry_can_be_overwritten(self, cache):
        cache._path("k").write_text("garbage")
        assert cache.get("k") is None
        cache.put("k", {"value": 2})
        assert cache.get("k") == {"value": 2}

    def test_no_tmp_files_left_behind(self, cache):
        for i in range(5):
            cache.put(f"k{i}", {"i": i})
        leftovers = list(cache.directory.glob("*.tmp"))
        assert leftovers == []


class TestConcurrentWriters:
    def test_concurrent_writers_last_write_wins(self, cache):
        """Racing writers must leave one complete value, never a torn file.

        The payloads are sized so a non-atomic write would be visible as a
        JSON parse error (caught by get() returning None mid-race, which
        the loop asserts never coexists with a final inconsistent state).
        """
        n_writers = 8
        n_rounds = 25
        barrier = threading.Barrier(n_writers)
        payload = {str(i): list(range(200)) for i in range(10)}

        def writer(wid: int) -> None:
            for r in range(n_rounds):
                barrier.wait()
                cache.put("shared", {"writer": wid, "round": r, **payload})

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        final = cache.get("shared")
        assert final is not None, "every writer finished, a value must exist"
        # Last write wins: the surviving value is one writer's final-round
        # payload, complete and internally consistent.
        assert final["round"] == n_rounds - 1
        assert 0 <= final["writer"] < n_writers
        assert final["0"] == list(range(200))
        # The atomic replace leaves no partial temp files behind.
        assert list(cache.directory.glob("*.tmp")) == []

    def test_reader_during_writes_never_sees_torn_json(self, cache):
        stop = threading.Event()
        errors = []

        def reader() -> None:
            while not stop.is_set():
                value = cache.get("shared")
                if value is not None and "sentinel" not in value:
                    errors.append(value)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for i in range(200):
                cache.put("shared", {"sentinel": True, "i": i, "pad": "x" * 2048})
        finally:
            stop.set()
            t.join()
        assert errors == []

    def test_two_caches_one_directory_share_entries(self, tmp_path):
        a = PaRCache(tmp_path / "shared")
        b = PaRCache(tmp_path / "shared")
        a.put("k", {"from": "a"})
        assert b.get("k") == {"from": "a"}
        b.put("k", {"from": "b"})
        assert a.get("k") == {"from": "b"}


class TestUnwritableDirectory:
    def test_put_into_unwritable_directory_is_silent(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("directory permissions are not enforced for root")
        cache = PaRCache(tmp_path / "ro")
        os.chmod(cache.directory, 0o500)
        try:
            cache.put("k", {"value": 1})  # must not raise
            assert cache.get("k") is None
        finally:
            os.chmod(cache.directory, 0o700)

    def test_get_from_deleted_directory_is_miss(self, tmp_path):
        cache = PaRCache(tmp_path / "gone")
        cache.put("k", {"value": 1})
        for child in cache.directory.iterdir():
            child.unlink()
        cache.directory.rmdir()
        assert cache.get("k") is None


class TestKeyHygiene:
    def test_values_round_trip_json_exactly(self, cache):
        value = {"success": True, "wirelength": 12345, "attempts": {"8": False}}
        cache.put("k", value)
        assert cache.get("k") == json.loads(json.dumps(value))

    def test_distinct_keys_do_not_collide(self, cache):
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") == {"v": 2}


class TestBackends:
    """The storage seam extracted for the service's pluggable cache tier."""

    def test_local_dir_backend_is_the_default(self, tmp_path):
        cache = PaRCache(tmp_path / "c")
        assert isinstance(cache.backend, LocalDirBackend)
        assert cache.backend.describe() == str(cache.directory)

    def test_memory_backend_round_trip(self):
        cache = PaRCache(MemoryBackend())
        cache.put("k", {"v": [1, 2]})
        assert cache.get("k") == {"v": [1, 2]}
        assert cache.get("missing") is None
        assert cache.directory is None, "no directory behind a memory tier"

    def test_memory_backend_isolates_stored_values(self):
        cache = PaRCache(MemoryBackend())
        cache.put("k", {"v": [1]})
        cache.get("k")["v"].append(2)
        assert cache.get("k") == {"v": [1]}

    def test_path_requires_a_directory_backend(self):
        with pytest.raises(TypeError):
            PaRCache(MemoryBackend())._path("k")


class TestStatsObsParity:
    def test_stats_match_metrics_counters(self, tmp_path):
        """``stats()`` and the ``cache.*`` obs counters tell one story.

        Every failure-path tally the cache keeps locally (read_errors,
        dropped_writes) must move the process-wide registry by exactly the
        same amount -- an operator watching ``cache.*`` counters sees what
        ``stats()`` would report, drift-free.
        """
        keys = {
            "hits": "cache.hits",
            "misses": "cache.misses",
            "read_errors": "cache.read_errors",
            "dropped_writes": "cache.dropped_writes",
        }
        counters = obs_metrics.registry().counters
        with fault_plan(None):
            before = {k: counters.get(c, 0) for k, c in keys.items()}
            cache = PaRCache(tmp_path / "c")
            cache.put("a", {"v": 1})
            assert cache.get("a") == {"v": 1}          # hit
            assert cache.get("b") is None              # plain miss
            cache._path("a").write_text("{rot")
            assert cache.get("a") is None              # read error (+ miss)
            with fault_plan(FaultPlan.from_spec("cache.write=io:1")):
                with pytest.warns(RuntimeWarning):
                    cache.put("c", {"v": 2})           # dropped write
            after = {k: counters.get(c, 0) for k, c in keys.items()}
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 2, "read_errors": 1, "dropped_writes": 1,
        }
        assert {k: after[k] - before[k] for k in keys} == stats
