"""Tests for the VCGRA functional simulator (MAC units + grid execution)."""

import numpy as np
import pytest

from repro.core.grid import VCGRAArchitecture
from repro.core.pe import PEOp, ProcessingElementSpec
from repro.core.settings import PESettings, VCGRASettings
from repro.core.toolflow import ApplicationGraph, PEOperation, run_vcgra_toolflow
from repro.flopoco.format import FPFormat
from repro.vsim.mac import MACUnit
from repro.vsim.simulator import VCGRASimulator

FMT = FPFormat(we=6, wf=14)


def make_arch(rows=4, cols=4):
    return VCGRAArchitecture(rows=rows, cols=cols, pe_spec=ProcessingElementSpec(fmt=FMT))


class TestMACUnit:
    def test_stateless_mac(self):
        s = PESettings(coefficient=FMT.encode(2.0), op=PEOp.MAC, count_limit=1, enabled=True)
        unit = MACUnit(FMT, s)
        out, done = unit.step(FMT.encode(3.0), FMT.encode(1.0))
        assert FMT.decode(out) == pytest.approx(7.0, rel=1e-3)
        assert done

    def test_mul_and_bypass(self):
        s = PESettings(coefficient=FMT.encode(-0.5), op=PEOp.MUL, enabled=True)
        unit = MACUnit(FMT, s)
        out, _ = unit.step(FMT.encode(8.0), FMT.encode(99.0))
        assert FMT.decode(out) == pytest.approx(-4.0, rel=1e-3)

        s2 = PESettings(op=PEOp.BYPASS, enabled=True)
        assert FMT.decode(MACUnit(FMT, s2).step(FMT.encode(5.5), 0)[0]) == pytest.approx(5.5)
        s3 = PESettings(op=PEOp.BYPASS_B, enabled=True)
        assert FMT.decode(MACUnit(FMT, s3).step(0, FMT.encode(-2.25))[0]) == pytest.approx(-2.25)

    def test_iterative_accumulation(self):
        s = PESettings(coefficient=FMT.encode(1.0), op=PEOp.MAC, count_limit=4, enabled=True)
        unit = MACUnit(FMT, s)
        results = []
        for v in (1.0, 2.0, 3.0, 4.0):
            out, done = unit.step(FMT.encode(v), 0)
            results.append((FMT.decode(out), done))
        assert results[-1][0] == pytest.approx(10.0, rel=1e-3)
        assert results[-1][1] is True
        assert all(not done for _, done in results[:-1])
        # counter resets after done
        out, done = unit.step(FMT.encode(5.0), 0)
        assert FMT.decode(out) == pytest.approx(5.0, rel=1e-3)
        assert not done


class TestSimulatorChains:
    def build_chain(self, coeffs):
        """One MAC chain: out = sum_i coeffs[i] * x_i (spatial dot product)."""
        arch = make_arch(rows=len(coeffs), cols=1)
        app = ApplicationGraph("chain", external_inputs=[f"x{i}" for i in range(len(coeffs))] + ["zero"])
        prev = "zero"
        for i, c in enumerate(coeffs):
            app.add_operation(PEOperation(
                name=f"mac{i}", op=PEOp.MAC, coefficient=c, count_limit=1,
                sample_input=f"x{i}", acc_input=prev))
            prev = f"mac{i}"
        app.add_output("y", prev)
        report = run_vcgra_toolflow(app, arch)
        return VCGRASimulator(arch, report.settings)

    def test_dot_product(self):
        coeffs = [0.5, -1.0, 2.0]
        sim = self.build_chain(coeffs)
        samples = {"x0": [3.0], "x1": [1.5], "x2": [0.25], "zero": [0.0]}
        trace = sim.run(samples)
        expected = 0.5 * 3.0 - 1.0 * 1.5 + 2.0 * 0.25
        assert trace.outputs["y"][0] == pytest.approx(expected, rel=1e-3)

    def test_streaming_multiple_samples(self):
        coeffs = [1.0, 1.0]
        sim = self.build_chain(coeffs)
        trace = sim.run({"x0": [1.0, 2.0, 3.0], "x1": [10.0, 20.0, 30.0], "zero": [0.0] * 3})
        assert trace.steps == 3
        assert trace.outputs["y"] == pytest.approx([11.0, 22.0, 33.0], rel=1e-3)

    def test_pe_output_history_recorded(self):
        sim = self.build_chain([2.0, 3.0])
        trace = sim.run({"x0": [1.0], "x1": [1.0], "zero": [0.0]})
        assert len(trace.pe_outputs) == 2
        for values in trace.pe_outputs.values():
            assert len(values) == 1

    def test_accuracy_close_to_float(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(size=4).tolist()
        xs = rng.normal(size=4).tolist()
        sim = self.build_chain(coeffs)
        trace = sim.run({f"x{i}": [xs[i]] for i in range(4)} | {"zero": [0.0]})
        expected = float(np.dot(coeffs, xs))
        assert trace.outputs["y"][0] == pytest.approx(expected, abs=1e-3)


class TestSimulatorConfiguration:
    def test_unbound_ports_read_zero(self):
        arch = make_arch(rows=1, cols=1)
        settings = VCGRASettings(arch=arch)
        pe = settings.pe((0, 0))
        pe.enabled = True
        pe.op = PEOp.MAC
        pe.coefficient = FMT.encode(3.0)
        settings.output_bindings["y"] = (0, 0)
        sim = VCGRASimulator(arch, settings)
        trace = sim.run({}, num_steps=1)
        assert trace.outputs["y"][0] == pytest.approx(0.0)

    def test_run_requires_steps_or_streams(self):
        arch = make_arch(rows=1, cols=1)
        settings = VCGRASettings(arch=arch)
        sim = VCGRASimulator(arch, settings)
        with pytest.raises(ValueError):
            sim.run({})

    def test_reset_clears_accumulators(self):
        arch = make_arch(rows=1, cols=1)
        settings = VCGRASettings(arch=arch)
        pe = settings.pe((0, 0))
        pe.enabled = True
        pe.op = PEOp.MAC
        pe.coefficient = FMT.encode(1.0)
        pe.count_limit = 8
        settings.input_bindings["x"] = [((0, 0), 0)]
        settings.output_bindings["y"] = (0, 0)
        sim = VCGRASimulator(arch, settings)
        first = sim.run({"x": [1.0, 1.0]}).outputs["y"][-1]
        sim.reset()
        second = sim.run({"x": [1.0, 1.0]}).outputs["y"][-1]
        assert first == pytest.approx(second)
