"""Tests for the flat route forest, flat STA hot path, and route caching.

The contract under test: the flat :class:`repro.par.forest.RouteForest`
must be a lossless, bit-identical replacement for the per-net dict walks
of PR 4 -- same wirelength, same routed delays, same criticality vectors,
on every routing kernel -- and must round-trip through the on-disk cache
so hits re-hydrate routes instead of re-routing.
"""

import json

import numpy as np
import pytest

from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.device import build_device
from repro.fpga.routing_graph import RRNodeType
from repro.netlist.hdl import Design
from repro.par.cache import PaRCache
from repro.par.flow import cached_route, timing_driven_placement
from repro.par.forest import RouteForest, build_route_forest
from repro.par.netlist import PhysicalNetlist
from repro.par.placement import TimingCost, hpwl, place
from repro.par.routing import (
    route,
    routing_from_payload,
    routing_to_payload,
)
from repro.synth.optimize import optimize
from repro.techmap import map_conventional
from repro.timing.delays import estimated_edge_delays, routed_edge_delays
from repro.timing.graph import build_timing_graph
from repro.timing.sta import CriticalityTracker, analyze

KERNELS = ["wavefront", "astar", "fast", "reference"]


def adder_network(width=6):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_conventional(opt)


@pytest.fixture(scope="module")
def routed_pe():
    """One placed design routed by every kernel (module-scoped: routes once)."""
    net = adder_network(6)
    from repro.par.netlist import from_mapped_network

    nl = from_mapped_network(net)
    arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
    device = build_device(arch)
    placement = place(nl, arch, seed=2, effort=0.4).placement
    results = {}
    for kernel in KERNELS:
        r = route(nl, placement, device, kernel=kernel)
        assert r.success, kernel
        results[kernel] = r
    return nl, arch, device, placement, results


def wire_mask(device):
    t = device.rr_graph.node_type
    return (t == RRNodeType.CHANX) | (t == RRNodeType.CHANY)


class TestForestRoundTrip:
    def test_directed_kernels_emit_forest(self, routed_pe):
        _nl, _arch, _device, _placement, results = routed_pe
        assert results["wavefront"].forest is not None
        assert results["astar"].forest is not None
        # Baselines stay untouched (their benchmark timings must not pay
        # a forest build).
        assert results["fast"].forest is None
        assert results["reference"].forest is None

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_wirelength_matches(self, routed_pe, kernel):
        _nl, _arch, device, _placement, results = routed_pe
        r = results[kernel]
        forest = r.forest or build_route_forest(r.routes, device.rr_graph)
        assert forest.wirelength(wire_mask(device)) == r.wirelength

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_net_routes_round_trip(self, routed_pe, kernel):
        _nl, _arch, device, _placement, results = routed_pe
        r = results[kernel]
        forest = r.forest or build_route_forest(r.routes, device.rr_graph)
        rebuilt = forest.to_net_routes()
        assert set(rebuilt) == set(r.routes)
        for nid, nr in r.routes.items():
            assert set(rebuilt[nid].nodes) == set(nr.nodes)
            assert rebuilt[nid].nodes[0] == nr.nodes[0]  # source first

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_routed_delays_bit_identical(self, routed_pe, kernel):
        """Flat extraction == legacy dict walk, to the last bit."""
        nl, arch, device, placement, results = routed_pe
        r = results[kernel]
        forest = r.forest or build_route_forest(r.routes, device.rr_graph)
        graph = build_timing_graph(nl, arch.lut_delay_ns)
        fb = estimated_edge_delays(graph, placement, arch)[0]
        d_dict, w_dict, p_dict = routed_edge_delays(
            graph, r.routes, placement, device, fallback=fb
        )
        d_flat, w_flat, p_flat = routed_edge_delays(
            graph, r.routes, placement, device, fallback=fb, forest=forest
        )
        assert np.array_equal(d_dict, d_flat)
        assert np.array_equal(w_dict, w_flat)
        assert np.array_equal(p_dict, p_flat)

    def test_analysis_identical_with_and_without_forest(self, routed_pe):
        """analyze() reports the same critical path through either path."""
        nl, _arch, device, placement, results = routed_pe
        r = results["wavefront"]
        a_flat = analyze(nl, r, device, placement=placement)
        stripped = type(r)(
            routes=r.routes, success=r.success, iterations=r.iterations,
            wirelength=r.wirelength, overused_nodes=r.overused_nodes,
            max_channel_occupancy=r.max_channel_occupancy, forest=None,
        )
        a_dict = analyze(nl, stripped, device, placement=placement)
        assert a_flat.critical_path_ns == a_dict.critical_path_ns
        assert np.array_equal(a_flat.edge_delay, a_dict.edge_delay)
        assert np.array_equal(a_flat.edge_criticality, a_dict.edge_criticality)

    def test_payload_round_trip_through_json(self, routed_pe):
        _nl, _arch, device, _placement, results = routed_pe
        r = results["astar"]
        payload = routing_to_payload(r)
        assert payload is not None
        back = routing_from_payload(json.loads(json.dumps(payload)))
        assert back is not None
        assert back.wirelength == r.wirelength
        assert back.success == r.success
        assert back.iterations == r.iterations
        assert back.forest.wirelength(wire_mask(device)) == r.wirelength
        for nid, nr in r.routes.items():
            assert set(back.routes[nid].nodes) == set(nr.nodes)

    def test_corrupt_payload_reads_as_miss(self, routed_pe):
        _nl, _arch, _device, _placement, results = routed_pe
        payload = routing_to_payload(results["wavefront"])
        bad = json.loads(json.dumps(payload))
        bad["forest"]["node"] = bad["forest"]["node"][:3]  # truncated
        assert routing_from_payload(bad) is None
        assert routing_from_payload({"success": True}) is None  # pre-forest entry

    def test_validate_rejects_inconsistent_arrays(self):
        with pytest.raises(ValueError):
            RouteForest.from_payload(
                {
                    "num_rr_nodes": 10,
                    "node": [1, 2],
                    "parent": [-1],  # wrong length
                    "depth": [1, 2],
                    "net_id": [0],
                    "net_source": [0],
                    "net_node_ptr": [0, 2],
                    "net_ptr": [0, 1],
                    "conn_net": [0],
                    "conn_sink": [2],
                    "conn_sink_pos": [1],
                    "conn_ptr": [0, 2],
                }
            )


class TestFlatCriticality:
    def test_tracker_flat_matches_dict(self, routed_pe):
        """conn_crit[conn_index[k]] == legacy dict[k], bit for bit."""
        nl, _arch, device, placement, results = routed_pe
        r = results["wavefront"]
        tracker = CriticalityTracker(nl, placement, device, exponent=2.0)
        flat = tracker.update_flat(r.routes).copy()
        legacy = tracker.update(r.routes)
        assert set(legacy) <= set(tracker.conn_index)
        for key, value in legacy.items():
            assert flat[tracker.conn_index[key]] == value
        # Keys the dict never saw must be zero-criticality connections.
        for key, cid in tracker.conn_index.items():
            if key not in legacy:
                assert flat[cid] == 0.0

    def test_tracker_initial_flat_matches_dict(self, routed_pe):
        nl, _arch, device, placement, _results = routed_pe
        tracker = CriticalityTracker(nl, placement, device)
        flat = tracker.initial_flat().copy()
        legacy = tracker.initial()
        for key, value in legacy.items():
            assert flat[tracker.conn_index[key]] == value

    def test_conn_crit_updates_in_place(self, routed_pe):
        nl, _arch, device, placement, results = routed_pe
        tracker = CriticalityTracker(nl, placement, device)
        first = tracker.initial_flat()
        second = tracker.update_flat(results["wavefront"].routes)
        assert first is second  # same buffer, refreshed in place

    def test_timing_objective_kernels_agree_with_pre_forest_quality(self, routed_pe):
        """Timing routes still converge and beat/match the default delay."""
        nl, _arch, device, placement, results = routed_pe
        base = results["wavefront"]
        a_base = analyze(nl, base, device, placement=placement)
        for kernel in ("wavefront", "astar"):
            timed = route(
                nl, placement, device, kernel=kernel,
                objective="timing", criticality_exponent=2.0,
            )
            assert timed.success
            a_t = analyze(nl, timed, device, placement=placement)
            assert a_t.critical_path_ns <= 1.05 * a_base.critical_path_ns


class TestCacheRehydration:
    def test_cached_route_rehydrates_routes(self, routed_pe, tmp_path):
        nl, _arch, device, placement, results = routed_pe
        cache = PaRCache(tmp_path / "routes")
        first = cached_route(nl, placement, device, cache=cache)
        assert cache.hits == 0 and cache.misses == 1
        second = cached_route(nl, placement, device, cache=cache)
        assert cache.hits == 1
        assert second.wirelength == first.wirelength
        assert second.success == first.success
        assert second.iterations == first.iterations
        for nid, nr in first.routes.items():
            assert set(second.routes[nid].nodes) == set(nr.nodes)
        # The re-hydrated result times identically.
        a1 = analyze(nl, first, device, placement=placement)
        a2 = analyze(nl, second, device, placement=placement)
        assert a1.critical_path_ns == a2.critical_path_ns

    def test_cached_route_corrupt_value_reroutes(self, routed_pe, tmp_path):
        nl, _arch, device, placement, _results = routed_pe
        cache = PaRCache(tmp_path / "routes")
        first = cached_route(nl, placement, device, cache=cache)
        # Clobber every cached value; the next call must fall back to a
        # fresh route, not crash.
        for path in (tmp_path / "routes").glob("*.json"):
            path.write_text(json.dumps({"success": True, "wirelength": 1}))
        again = cached_route(nl, placement, device, cache=cache)
        assert again.wirelength == first.wirelength

    def test_cached_route_scalar_baselines_bypass_cache(self, routed_pe, tmp_path):
        nl, _arch, device, placement, _results = routed_pe
        cache = PaRCache(tmp_path / "routes")
        cached_route(nl, placement, device, cache=cache, kernel="fast")
        assert cache.hits == 0 and cache.misses == 0

    def test_min_cw_values_stay_metrics_only(self, tmp_path):
        """Probe values carry no forest: their keys (probe kernel, probe
        iteration budget) never coincide with a flow's route key, so a
        serialized forest there would be written and read by nobody --
        re-hydration is cached_route's job."""
        from repro.par.metrics import minimum_channel_width

        nl = PhysicalNetlist("chain")
        src = nl.add_block("pi", "io")
        prev = src
        for i in range(6):
            blk = nl.add_block(f"l{i}", "clb")
            nl.add_net(f"n{i}", prev, [blk])
            prev = blk
        out = nl.add_block("po", "io")
        nl.add_net("out", prev, [out])
        nl.validate()
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        cache = PaRCache(tmp_path / "routes")
        result = minimum_channel_width(nl, placement, arch, low=1, high=8, cache=cache)
        values = [
            json.loads(path.read_text())
            for path in (tmp_path / "routes").glob("*.json")
        ]
        assert values
        assert all("forest" not in v for v in values)
        assert any(v.get("success") and "timing" in v for v in values)
        assert result.min_channel_width >= 1

    def test_failed_routes_carry_no_forest(self):
        """A congested result's trees are not flattened (probe fast path)."""
        nl = PhysicalNetlist("pair")
        a = nl.add_block("pi", "io")
        blocks = [nl.add_block(f"l{i}", "clb") for i in range(4)]
        for i, b in enumerate(blocks):
            nl.add_net(f"n{i}", a, [b])
            nl.add_net(f"m{i}", b, [blocks[(i + 1) % 4]])
        nl.validate()
        arch = FPGAArchitecture(width=2, height=2, channel_width=1)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        try:
            result = route(nl, placement, device, kernel="astar", max_iterations=2)
        except RuntimeError:
            return  # unroutable even with congestion allowed: nothing to assert
        if not result.success:
            assert result.forest is None


class TestIncrementalPlacer:
    def test_places_all_blocks_and_reports_plain_hpwl(self):
        net = adder_network(5)
        from repro.par.netlist import from_mapped_network

        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        result = timing_driven_placement(nl, arch, seed=0, effort=0.3)
        assert set(result.placement.block_site) == {b.id for b in nl.blocks}
        assert result.cost == hpwl(nl, result.placement)
        assert result.objective_cost is not None

    def test_is_seed_reproducible(self):
        net = adder_network(4)
        from repro.par.netlist import from_mapped_network

        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        a = timing_driven_placement(nl, arch, seed=3, effort=0.3)
        b = timing_driven_placement(nl, arch, seed=3, effort=0.3)
        assert a.cost == b.cost
        assert all(
            a.placement.block_site[k].as_tuple() == s.as_tuple()
            for k, s in b.placement.block_site.items()
        )

    def test_unknown_mode_rejected(self):
        net = adder_network(4)
        from repro.par.netlist import from_mapped_network

        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        with pytest.raises(ValueError, match="mode"):
            timing_driven_placement(nl, arch, mode="nope")

    def test_timing_cost_requires_batched_kernel(self):
        net = adder_network(4)
        from repro.par.netlist import from_mapped_network

        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        tc = TimingCost([0], [1], lambda x, y: [0.5])
        with pytest.raises(ValueError, match="batched"):
            place(nl, arch, kernel="incremental", timing=tc)
        with pytest.raises(ValueError, match="exclusive"):
            place(
                nl, arch, kernel="batched", timing=tc,
                net_weights=[1.0] * len(nl.nets),
            )

    def test_timing_cost_validates_conn_arrays(self):
        with pytest.raises(ValueError, match="equal length"):
            TimingCost([0, 1], [1], lambda x, y: [])

    def test_beats_or_matches_candidates_on_estimated_cp(self):
        """The headline claim at unit-test scale: the incremental placer's
        estimated critical path is no worse than the candidate recipe's."""
        from repro.par.netlist import from_mapped_network
        from repro.timing.sta import net_criticality_from_placement

        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        graph = build_timing_graph(nl, arch.lut_delay_ns)

        def est(result):
            return net_criticality_from_placement(
                graph, result.placement, arch, exponent=2.0
            )[0]

        inc = timing_driven_placement(nl, arch, seed=1, effort=0.4)
        cand = timing_driven_placement(nl, arch, seed=1, effort=0.4, mode="candidates")
        assert est(inc) <= est(cand) * 1.001
