"""Bounded property-based tests over randomly generated netlists.

Two invariants the rest of the suite checks only on hand-built examples are
checked here across a small random family of designs:

* **kernel identity** -- the ``fast`` kernel is an optimization of
  ``reference``, not an approximation: same wirelength, same per-net routes;
* **cache round-trip** -- serializing a routed result through the on-disk
  payload format and re-hydrating it reproduces the fresh computation
  bit-for-bit (wirelength, iterations, route nodes).

The suite is deliberately tiny: ``max_examples`` is capped and the profile
is derandomized, so tier-1 wall time stays flat and failures replay
deterministically in CI.  Skips cleanly when Hypothesis is not installed.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.fpga.architecture import auto_size  # noqa: E402
from repro.fpga.device import build_device  # noqa: E402
from repro.par import PaRCache, PhysicalNetlist, cached_route  # noqa: E402
from repro.par.placement import place  # noqa: E402
from repro.par.routing import route  # noqa: E402

pytestmark = pytest.mark.fuzz

BOUNDED = settings(
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_netlist(n_blocks, driver_picks, fanout_picks):
    """A small random DAG netlist driven by the given Hypothesis draws.

    Block ``i`` is driven by some earlier block (``driver_picks[i]`` modulo
    the candidates), giving a connected acyclic design; a subset of blocks
    additionally fans out to the output IO so sink counts vary.
    """
    nl = PhysicalNetlist("fuzz")
    src = nl.add_block("pi", "io")
    blocks = [src]
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        driver = blocks[driver_picks[i] % len(blocks)]
        nl.add_net(f"n{i}", driver, [blk])
        blocks.append(blk)
    out = nl.add_block("po", "io")
    sinks = [b for i, b in enumerate(blocks[1:]) if fanout_picks[i]] or [blocks[-1]]
    nl.add_net("out", blocks[-1], [s for s in sinks if s != blocks[-1]] + [out])
    nl.validate()
    return nl


netlists = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.integers(min_value=0, max_value=63), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
    )
)


def _placed(params, channel_width=8):
    n, drivers, fanouts = params
    nl = random_netlist(n, drivers, fanouts)
    arch = auto_size(
        nl.num_logic_blocks() + nl.num_ff_blocks(),
        nl.num_io_blocks(),
        channel_width=channel_width,
    )
    placement = place(nl, arch, seed=0, effort=0.3).placement
    return nl, placement, build_device(arch)


@BOUNDED
@given(params=netlists)
def test_fast_and_reference_kernels_agree(params):
    nl, placement, device = _placed(params)
    fast = route(nl, placement, device, kernel="fast")
    ref = route(nl, placement, device, kernel="reference")
    assert fast.success == ref.success
    if fast.success:
        assert fast.wirelength == ref.wirelength
        assert {n: r.nodes for n, r in fast.routes.items()} == {
            n: r.nodes for n, r in ref.routes.items()
        }


@BOUNDED
@given(params=netlists)
def test_cache_round_trip_equals_fresh_compute(params, tmp_path_factory):
    nl, placement, device = _placed(params)
    cache = PaRCache(tmp_path_factory.mktemp("fuzz-cache"))
    fresh = cached_route(nl, placement, device, cache=cache)
    rehydrated = cached_route(nl, placement, device, cache=cache)
    assert rehydrated.success == fresh.success
    assert rehydrated.wirelength == fresh.wirelength
    assert rehydrated.kernel == fresh.kernel
    # Re-hydration rebuilds each net's node list from the route forest, so
    # node *order* may differ from the kernel's emission order; the set of
    # occupied nodes per net must be identical.
    assert {n: sorted(r.nodes) for n, r in rehydrated.routes.items()} == {
        n: sorted(r.nodes) for n, r in fresh.routes.items()
    }
    if fresh.success and fresh.forest is not None:
        # A cacheable route (converged, forest-carrying) must be served
        # from disk the second time, not recomputed.
        assert cache.stats()["hits"] == 1
        assert rehydrated.iterations == fresh.iterations
        assert rehydrated.forest is not None
        rehydrated.forest.validate()


# ---------------------------------------------------------------------------
# Frame-image delta algebra on fuzzed designs
# ---------------------------------------------------------------------------

from repro.fpga.bitstream import Bitstream  # noqa: E402
from repro.reconfig.context import _MIX  # noqa: E402
from repro.reconfig.frames import (  # noqa: E402
    apply_delta,
    diff_images,
    union_frames,
)


def _routing_image(routing, device):
    """Frame image of one routing outcome (the context-renderer convention).

    Mirrors the routing half of ``render_context_bitstream`` for raw
    physical netlists (which carry no mapped LUT functions): every wire RR
    node inside the logic region sets bit ``(node * MIX) % routing_bits``
    of its tile's routing budget.
    """
    layout = device.config_layout
    rr = device.rr_graph
    bitstream = Bitstream(layout)
    tile_bits = {}
    for net_route in routing.routes.values():
        for rr_node in net_route.nodes:
            if not rr.is_wire(rr_node):
                continue
            x, y = int(rr.node_x[rr_node]), int(rr.node_y[rr_node])
            if not layout.arch.contains_clb(x, y):
                continue
            bit = (rr_node * _MIX) % layout.routing_bits
            tile_bits[(x, y)] = tile_bits.get((x, y), 0) | (1 << bit)
    for (x, y), bits in tile_bits.items():
        bitstream.set_routing_config(x, y, bits)
    return bitstream.frame_image()


@BOUNDED
@given(params=netlists)
def test_frame_delta_round_trip_on_fuzzed_designs(params):
    """``apply_delta(a, diff_images(a, b)) == b`` for real rendered images.

    The reconfiguration scheduler and the service's bitstream digests both
    lean on this algebra; here it is checked on frame images grown from
    fuzzer netlists (two placements of the same design = two contexts),
    not hand-picked dicts.
    """
    nl, placement, device = _placed(params)
    base = _routing_image(route(nl, placement, device), device)
    other = place(nl, device.arch, seed=1, effort=0.3).placement
    target = _routing_image(route(nl, other, device), device)

    # The delta is an exact patch, in both directions.
    assert apply_delta(base, diff_images(base, target)) == target
    assert apply_delta(target, diff_images(target, base)) == base
    # Canonical images never store all-zero frames, so patched images
    # stay canonical: no zero values survive an apply.
    assert all(apply_delta(base, diff_images(base, target)).values())
    # Self-delta is empty; the diff never writes more than the full path.
    assert diff_images(base, base).writes == ()
    assert apply_delta(base, diff_images(base, base)) == base
    assert diff_images(base, target).num_frames <= union_frames(base, target)
