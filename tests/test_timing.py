"""Tests for the timing subsystem: STA engine, criticality-driven PAR."""

import numpy as np
import pytest

from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.core.toolflow import run_vcgra_toolflow
from repro.flopoco.format import FPFormat
from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.device import build_device
from repro.fpga.routing_graph import RRNodeType, rr_delay_ns
from repro.netlist.hdl import Design
from repro.par.flow import place_and_route, timing_driven_placement
from repro.par.netlist import PhysicalNetlist, from_mapped_network
from repro.par.placement import hpwl, place
from repro.par.routing import route
from repro.par.timing import analyze_timing
from repro.synth.optimize import optimize
from repro.techmap import map_conventional
from repro.timing import (
    analyze,
    build_timing_graph,
    structural_net_criticality,
)


def adder_network(width=4):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_conventional(opt)


def routed_design(width=6, channel_width=8, seed=2, kernel="wavefront"):
    net = adder_network(width)
    nl = from_mapped_network(net)
    arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=channel_width)
    device = build_device(arch)
    placement = place(nl, arch, seed=seed, effort=0.4).placement
    routing = route(nl, placement, device, kernel=kernel)
    assert routing.success
    return net, nl, arch, device, placement, routing


def chain_netlist(n_blocks=6):
    nl = PhysicalNetlist("chain")
    src = nl.add_block("pi", "io")
    prev = src
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


class TestDelayModel:
    def test_rr_delay_model_per_type(self):
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        d = rr_delay_ns(arch)
        assert d[RRNodeType.CHANX] == d[RRNodeType.CHANY] == arch.wire_hop_delay_ns
        assert d[RRNodeType.OPIN] == d[RRNodeType.IPIN] == arch.pin_delay_ns
        assert d[RRNodeType.SOURCE] == d[RRNodeType.SINK] == 0.0

    def test_search_view_exports_flat_delay_array(self):
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        device = build_device(arch)
        view = device.rr_graph.search_view()
        assert view.delay_ns.shape == (device.rr_graph.num_nodes,)
        wires = device.rr_graph.node_type == RRNodeType.CHANX
        assert np.allclose(view.delay_ns[wires], arch.wire_hop_delay_ns)

    def test_with_channel_width_keeps_delay_fields(self):
        arch = FPGAArchitecture(
            width=3, height=3, channel_width=4, switch_delay_ns=0.07, pin_delay_ns=0.02
        )
        wider = arch.with_channel_width(9)
        assert wider.channel_width == 9
        assert wider.switch_delay_ns == 0.07
        assert wider.pin_delay_ns == 0.02


class TestTimingGraph:
    def test_chain_levelization(self):
        nl = chain_netlist(5)
        graph = build_timing_graph(nl, lut_delay_ns=0.4)
        # pi(0) -> l0..l4 -> po: levels strictly increase along the chain.
        assert graph.node_level[0] == 0
        for i in range(5):
            assert graph.node_level[1 + i] == i + 1
        assert graph.num_edges == len(nl.nets)

    def test_cycle_detection(self):
        nl = PhysicalNetlist("loop")
        a = nl.add_block("a", "clb")
        b = nl.add_block("b", "clb")
        nl.add_net("ab", a, [b])
        nl.add_net("ba", b, [a])
        with pytest.raises(ValueError, match="cycle"):
            build_timing_graph(nl, lut_delay_ns=0.4)


class TestSTAInvariants:
    def test_slack_and_criticality_invariants(self):
        net, nl, arch, device, placement, routing = routed_design()
        analysis = analyze(nl, routing, device, placement=placement)
        crit = analysis.edge_criticality
        assert crit.min() >= 0.0 and crit.max() <= 1.0
        # Required times are anchored at the critical-path delay, so no
        # connection can have negative slack, and the worst endpoint slack
        # is exactly zero (the critical path itself).
        assert analysis.edge_slack.min() >= -1e-9
        assert analysis.summary()["worst_slack_ns"] == pytest.approx(0.0, abs=1e-9)
        assert crit.max() == pytest.approx(1.0)
        assert analysis.critical_path_ns > 0

    def test_breakdown_sums_to_critical_path(self):
        net, nl, arch, device, placement, routing = routed_design()
        analysis = analyze(nl, routing, device, placement=placement)
        assert analysis.critical_path
        assert {e.kind for e in analysis.critical_path} <= {
            "lut", "wire", "switch", "pin"
        }
        total = sum(e.delay_ns for e in analysis.critical_path)
        assert total == pytest.approx(analysis.critical_path_ns, rel=1e-9)
        luts = sum(e.count for e in analysis.critical_path if e.kind == "lut")
        assert luts == analysis.logic_depth

    def test_breakdown_without_connection_lists(self):
        # The fast kernel's route trees carry no connection lists: the
        # engine must fall back to the BFS tree walk and still reconcile.
        net, nl, arch, device, placement, routing = routed_design(kernel="fast")
        assert all(r.connections is None for r in routing.routes.values())
        analysis = analyze(nl, routing, device, placement=placement)
        total = sum(e.delay_ns for e in analysis.critical_path)
        assert total == pytest.approx(analysis.critical_path_ns, rel=1e-9)

    def test_routed_analysis_without_placement_uses_wire_counts(self):
        # Routing without a placement must still reflect the routed wire
        # counts (the seed model), not fall back to the structural
        # one-hop estimate.
        net, nl, arch, device, placement, routing = routed_design()
        with_routes = analyze(nl, routing, device)
        structural = analyze(nl, None, device)
        assert with_routes.critical_path_ns > structural.critical_path_ns

    def test_connection_criticality_keys(self):
        net, nl, arch, device, placement, routing = routed_design()
        analysis = analyze(nl, routing, device, placement=placement)
        conn = analysis.connection_criticality()
        expected = {(n.id, s) for n in nl.nets for s in n.sinks}
        assert set(conn) == expected
        per_net = analysis.net_criticality()
        for (nid, _sink), c in conn.items():
            assert c <= per_net[nid] + 1e-12


class TestLegacyParity:
    def test_engine_reproduces_logic_depth_on_routed_pe(self):
        # The acceptance bar: on a routed (conventional) PE design the
        # engine's levelized depth equals the mapped network's LUT depth,
        # and the legacy wrapper reports engine numbers.
        spec = ProcessingElementSpec(fmt=FPFormat(3, 4), num_inputs=2, counter_width=2)
        circuit, _ = optimize(build_pe_design(spec).circuit)
        network = map_conventional(circuit)
        result = place_and_route(network, channel_width=8, placement_effort=0.25, seed=0)
        assert result.routing.success
        assert result.sta.logic_depth == network.depth()
        assert result.timing.logic_depth == network.depth()
        assert result.timing.critical_path_ns == pytest.approx(
            result.sta.critical_path_ns
        )

    def test_legacy_wrapper_matches_engine(self):
        net, nl, arch, device, placement, routing = routed_design()
        analysis = analyze(nl, routing, device, placement=placement)
        report = analyze_timing(net, nl, routing, device, placement=placement)
        assert report.logic_depth == net.depth() == analysis.logic_depth
        assert report.critical_path_ns == pytest.approx(analysis.critical_path_ns)
        total_wires = sum(
            len(r.wire_nodes(device.rr_graph)) for r in routing.routes.values()
        )
        assert report.mean_net_wirelength == pytest.approx(
            total_wires / len(routing.routes)
        )


class TestTimingObjective:
    def test_timing_objective_reduces_delay_at_equal_width(self):
        # The headline quality claim at unit scale: the timing objective
        # must beat the wirelength objective's routed critical path at the
        # same channel width, while staying inside the 1.02x wirelength
        # band of the reference route on its own placement.
        net = adder_network(6)
        wl = place_and_route(net, channel_width=8, placement_effort=0.4, seed=1)
        timing = place_and_route(
            net, channel_width=8, placement_effort=0.4, seed=1, objective="timing"
        )
        assert wl.routing.success and timing.routing.success
        assert timing.objective == "timing"
        ratio = timing.timing.critical_path_ns / wl.timing.critical_path_ns
        assert ratio <= 0.99, f"timing objective did not improve delay ({ratio:.3f}x)"
        ref = route(
            timing.netlist, timing.placement.placement, timing.device,
            kernel="reference",
        )
        assert timing.wirelength <= 1.02 * ref.wirelength

    def test_timing_objective_router_only_never_fails(self):
        # Same placement, both objectives: the timing-driven router must
        # still converge and stay within the wirelength band.
        net, nl, arch, device, placement, routing = routed_design()
        timed = route(nl, placement, device, kernel="wavefront", objective="timing")
        assert timed.success
        assert timed.wirelength <= 1.05 * routing.wirelength
        a_wl = analyze(nl, routing, device, placement=placement)
        a_t = analyze(nl, timed, device, placement=placement)
        assert a_t.critical_path_ns <= 1.05 * a_wl.critical_path_ns

    def test_timing_objective_rejected_for_scalar_baselines(self):
        nl = chain_netlist(4)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        for kernel in ("fast", "reference"):
            with pytest.raises(ValueError, match="timing"):
                route(nl, placement, device, kernel=kernel, objective="timing")
        with pytest.raises(ValueError, match="objective"):
            route(nl, placement, device, objective="area")


class TestTimingPlacement:
    def test_net_weights_require_batched_kernel(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        with pytest.raises(ValueError, match="batched"):
            place(nl, arch, kernel="incremental", net_weights=[1.0] * len(nl.nets))

    def test_weighted_placement_reports_unweighted_hpwl(self):
        nl = chain_netlist(10)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        weights = [1.0 + 2.0 * (i % 3) for i in range(len(nl.nets))]
        result = place(nl, arch, seed=1, effort=0.5, kernel="batched",
                       net_weights=weights)
        assert isinstance(result.cost, int)
        assert result.cost == hpwl(nl, result.placement)
        assert result.objective_cost is not None
        assert result.objective_cost >= result.cost

    def test_weight_length_mismatch_rejected(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        with pytest.raises(ValueError, match="entries"):
            place(nl, arch, kernel="batched", net_weights=[1.0])

    def test_structural_criticality_marks_deep_chain(self):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        crit = structural_net_criticality(nl, arch)
        assert len(crit) == len(nl.nets)
        # Every net of a pure chain lies on the single (critical) path.
        assert min(crit) == pytest.approx(1.0)

    def test_timing_driven_placement_places_all_blocks(self):
        net = adder_network(5)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        result = timing_driven_placement(nl, arch, seed=0, effort=0.3, passes=1)
        assert set(result.placement.block_site) == {b.id for b in nl.blocks}
        assert result.cost == hpwl(nl, result.placement)


class TestFlowPlumbing:
    def test_summary_carries_timing_axis(self):
        net = adder_network(4)
        result = place_and_route(net, channel_width=8, placement_effort=0.4)
        summary = result.summary()
        assert summary["objective"] == "wirelength"
        assert summary["worst_slack_ns"] == pytest.approx(0.0, abs=1e-9)
        assert result.sta is not None
        assert result.sta.critical_path_ns == summary["critical_path_ns"]

    def test_min_cw_records_timing_summary(self):
        net = adder_network(4)
        result = place_and_route(
            net, channel_width=8, placement_effort=0.4,
            find_min_channel_width=True, min_cw_bounds=(2, 8),
        )
        mc = result.min_channel_width
        assert mc is not None
        assert mc.timing_at_min is not None
        assert mc.timing_at_min["critical_path_ns"] > 0
        assert mc.timing_at_min["logic_depth"] == net.depth()

    def test_vcgra_report_exposes_cycle_estimate(self):
        from repro.core.grid import VCGRAArchitecture
        from repro.core.pe import PEOp
        from repro.core.toolflow import ApplicationGraph, PEOperation

        arch = VCGRAArchitecture(
            rows=2, cols=2, pe_spec=ProcessingElementSpec(fmt=FPFormat(4, 6))
        )
        app = ApplicationGraph("one", external_inputs=["x"])
        app.add_operation(PEOperation(name="m", op=PEOp.MUL, sample_input="x"))
        app.add_output("y", "m")
        bare = run_vcgra_toolflow(app, arch)
        assert bare.estimated_cycle_ns is None
        assert bare.estimated_latency_ns is None
        timed = run_vcgra_toolflow(app, arch, pe_critical_path_ns=12.5)
        assert timed.estimated_cycle_ns == 12.5
        assert timed.pipeline_depth == 1
        assert timed.estimated_latency_ns == 12.5
