"""Tests for the retinal vessel segmentation application and its VCGRA mapping."""

import numpy as np
import pytest

from repro.apps.filters import (
    convolve2d,
    gaussian_kernel,
    matched_filter_kernels,
    texture_kernel,
    threshold_image,
)
from repro.apps.images import generate_fundus
from repro.apps.mapping import VCGRAFilterEngine, kernel_to_applications
from repro.apps.preprocessing import (
    extract_green_channel,
    histogram_equalization,
    preprocess,
    remove_optic_disc,
    remove_outer_region,
)
from repro.apps.retina import RetinalVesselSegmentation, SegmentationConfig
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import ProcessingElementSpec
from repro.flopoco.format import FPFormat


class TestSyntheticFundus:
    def test_generation_is_reproducible(self):
        a = generate_fundus(size=48, seed=3)
        b = generate_fundus(size=48, seed=3)
        assert np.array_equal(a.rgb, b.rgb)
        assert np.array_equal(a.vessel_mask, b.vessel_mask)

    def test_shapes_and_ranges(self):
        f = generate_fundus(size=64, seed=1)
        assert f.rgb.shape == (64, 64, 3)
        assert f.vessel_mask.shape == (64, 64)
        assert 0.0 <= f.rgb.min() and f.rgb.max() <= 1.0
        assert f.vessel_mask.sum() > 0
        assert f.fov_mask.sum() > 0.5 * 64 * 64 * 0.5

    def test_vessels_are_dark_in_green_channel(self):
        f = generate_fundus(size=64, seed=2)
        green = f.green_channel
        vessels = green[f.vessel_mask]
        background = green[f.fov_mask & ~f.vessel_mask]
        assert vessels.mean() < background.mean()

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            generate_fundus(size=8)


class TestPreprocessing:
    def test_green_channel_extraction(self):
        f = generate_fundus(size=32, seed=0)
        green = extract_green_channel(f.rgb)
        assert np.array_equal(green, f.rgb[:, :, 1])
        with pytest.raises(ValueError):
            extract_green_channel(np.zeros((4, 4)))

    def test_histogram_equalization_spreads_values(self):
        rng = np.random.default_rng(0)
        img = 0.4 + 0.05 * rng.random((32, 32))
        eq = histogram_equalization(img)
        assert eq.max() - eq.min() > (img.max() - img.min())

    def test_histogram_equalization_constant_image(self):
        img = np.full((16, 16), 0.5)
        assert np.array_equal(histogram_equalization(img), img)

    def test_optic_disc_removal_reduces_peak(self):
        f = generate_fundus(size=64, seed=4)
        green = f.green_channel
        removed, center = remove_optic_disc(green, mask=f.fov_mask)
        cy, cx = center
        # detected disc centre should be near the true one
        true_cy, true_cx = f.optic_disc_center
        assert abs(cy - true_cy) < 12 and abs(cx - true_cx) < 12
        assert removed.max() <= green.max()

    def test_outer_region_removal(self):
        f = generate_fundus(size=48, seed=0)
        out = remove_outer_region(f.green_channel, f.fov_mask, border=2)
        outside = out[~f.fov_mask]
        assert np.allclose(outside, outside[0])

    def test_full_preprocess_masks_outside(self):
        f = generate_fundus(size=48, seed=0)
        pre = preprocess(f.rgb, f.fov_mask)
        assert pre.shape == f.green_channel.shape
        assert np.allclose(pre[~f.fov_mask], 0.0)


class TestFilters:
    def test_gaussian_kernel_properties(self):
        k = gaussian_kernel(5)
        assert k.shape == (5, 5)
        assert k.sum() == pytest.approx(1.0)
        assert k[2, 2] == k.max()
        with pytest.raises(ValueError):
            gaussian_kernel(4)

    def test_matched_filter_bank(self):
        kernels = matched_filter_kernels(size=16, orientations=7)
        assert len(kernels) == 7
        for k in kernels:
            assert k.shape == (16, 16)
            assert abs(k[k != 0].mean()) < 1e-6  # zero-mean on support

    def test_matched_filter_responds_to_oriented_line(self):
        kernels = matched_filter_kernels(size=15, sigma=1.5, orientations=4)
        img = np.zeros((31, 31))
        img[15, :] = 1.0  # horizontal bright line
        responses = [convolve2d(img, k)[15, 15] for k in kernels]
        # the horizontally-oriented kernel (index 0) must respond the most
        assert int(np.argmax(responses)) == 0

    def test_texture_kernel_zero_mean(self):
        k = texture_kernel(9, thickness=2.0)
        assert abs(k.sum()) < 1e-9
        with pytest.raises(ValueError):
            texture_kernel(2)

    def test_convolve2d_matches_manual_dot(self):
        rng = np.random.default_rng(0)
        img = rng.random((12, 12))
        k = rng.random((3, 3))
        out = convolve2d(img, k)
        manual = sum(
            img[4 + di, 7 + dj] * k[1 + di, 1 + dj]
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
        )
        assert out[4, 7] == pytest.approx(manual)
        assert out.shape == img.shape

    def test_threshold_percentile(self):
        img = np.arange(100, dtype=float).reshape(10, 10)
        mask = threshold_image(img, percentile=90)
        assert mask.sum() == 10


class TestKernelMapping:
    def arch(self, rows=4, cols=4):
        return VCGRAArchitecture(rows=rows, cols=cols,
                                 pe_spec=ProcessingElementSpec(fmt=FPFormat(6, 14)))

    def test_small_kernel_single_configuration(self):
        apps = kernel_to_applications(list(range(12)), self.arch())
        assert len(apps) == 1
        app, taps = apps[0]
        assert len(taps) == 12
        assert len(app.operations) == 12

    def test_large_kernel_splits_into_configurations(self):
        apps = kernel_to_applications(list(range(25)), self.arch())
        assert len(apps) == 2  # 16 + 9 taps
        total = sum(len(taps) for _, taps in apps)
        assert total == 25

    def test_engine_matches_numpy_small_kernel(self):
        rng = np.random.default_rng(5)
        img = rng.random((10, 10))
        kernel = gaussian_kernel(3)
        engine = VCGRAFilterEngine(kernel, arch=self.arch())
        got = engine.apply(img)
        want = convolve2d(img, kernel)
        assert np.allclose(got, want, atol=1e-3)

    def test_engine_matches_numpy_multi_configuration_kernel(self):
        rng = np.random.default_rng(6)
        img = rng.random((8, 8))
        kernel = rng.normal(size=(5, 5))  # 25 taps -> 2 configurations on 4x4
        engine = VCGRAFilterEngine(kernel, arch=self.arch())
        got = engine.apply(img)
        want = convolve2d(img, kernel)
        assert np.allclose(got, want, atol=2e-3)
        assert engine.report.num_configurations == 2

    def test_engine_window_validation(self):
        engine = VCGRAFilterEngine(gaussian_kernel(3), arch=self.arch())
        with pytest.raises(ValueError):
            engine.apply_window(np.zeros((2, 2)))

    def test_reconfiguration_cost_scales_with_configurations(self):
        small = VCGRAFilterEngine(gaussian_kernel(3), arch=self.arch())
        large = VCGRAFilterEngine(np.ones((5, 5)), arch=self.arch())
        assert large.reconfiguration_time_ms() > small.reconfiguration_time_ms()


class TestPipeline:
    def test_numpy_pipeline_segments_vessels(self):
        fundus = generate_fundus(size=72, seed=7, vessel_depth=0.4)
        pipeline = RetinalVesselSegmentation(SegmentationConfig(
            matched_size=11, texture_size=7, denoise_sizes=(5,), orientations=5))
        result = pipeline.run(fundus)
        metrics = result.metrics(fundus.vessel_mask, fundus.fov_mask)
        # A matched-filter pipeline on clean synthetic data must do much
        # better than chance at picking up vessel pixels.
        assert metrics["sensitivity"] > 0.35
        assert metrics["specificity"] > 0.7
        assert metrics["accuracy"] > 0.7

    def test_pipeline_records_stage_times(self):
        fundus = generate_fundus(size=48, seed=1)
        pipeline = RetinalVesselSegmentation(SegmentationConfig(
            matched_size=9, texture_size=5, denoise_sizes=(5,), orientations=3))
        result = pipeline.run(fundus)
        for stage in ("preprocess", "denoise", "matched_filters", "texture", "threshold"):
            assert stage in result.stage_seconds

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            RetinalVesselSegmentation(SegmentationConfig(backend="tpu"))

    def test_vcgra_backend_matches_numpy_backend(self):
        fundus = generate_fundus(size=24, seed=2)
        cfg_np = SegmentationConfig(
            denoise_sizes=(3,), matched_size=5, texture_size=3,
            orientations=2, backend="numpy")
        cfg_hw = SegmentationConfig(
            denoise_sizes=(3,), matched_size=5, texture_size=3,
            orientations=2, backend="vcgra", fmt=FPFormat(6, 18))
        res_np = RetinalVesselSegmentation(cfg_np).run(fundus)
        res_hw = RetinalVesselSegmentation(cfg_hw).run(fundus)
        # FloPoCo arithmetic is lower precision than float64 but the responses
        # must agree closely and the final masks should be nearly identical.
        assert np.allclose(res_hw.matched_response, res_np.matched_response, atol=5e-3)
        disagreement = np.count_nonzero(res_hw.vessel_mask != res_np.vessel_mask)
        assert disagreement <= 0.02 * res_np.vessel_mask.size
