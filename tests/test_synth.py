"""Unit and property tests for synthesis and logic optimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.circuit import Circuit, Op
from repro.netlist.hdl import Design
from repro.netlist.simulate import exhaustive_patterns, simulate_patterns, simulate_words
from repro.synth.constprop import (
    classify_nodes,
    param_bit_values,
    parameter_cone_nodes,
    specialize,
)
from repro.synth.optimize import optimize, rewrite, sweep
from repro.synth.synthesis import synthesize


def outputs_on_all_patterns(circuit):
    """Output vectors of a circuit under exhaustive input patterns (params = 0)."""
    ids = circuit.input_ids()
    pats = exhaustive_patterns(ids)
    n = 1 << len(ids)
    values = simulate_patterns(circuit, pats, n)
    mask = (1 << n) - 1
    return {name: values[nid] & mask for name, nid in circuit.outputs.items()}


def equivalent(c1, c2):
    """Functional equivalence over all input patterns, matching inputs by name."""
    # Re-simulate c2 with patterns keyed by input *name* so differing ids are fine.
    ids1 = c1.input_ids()
    names1 = [c1.names.get(i, f"in{i}") for i in ids1]
    n = len(ids1)
    pats1 = exhaustive_patterns(ids1)
    num = 1 << n
    vals1 = simulate_patterns(c1, pats1, num)

    name_to_id2 = {c2.names.get(i, f"in{i}"): i for i in c2.input_ids()}
    pats2 = {name_to_id2[nm]: pats1[i1] for nm, i1 in zip(names1, ids1) if nm in name_to_id2}
    vals2 = simulate_patterns(c2, pats2, num)
    mask = (1 << num) - 1
    for name, nid1 in c1.outputs.items():
        nid2 = c2.outputs[name]
        if (vals1[nid1] & mask) != (vals2[nid2] & mask):
            return False
    return True


class TestRewrite:
    def test_constant_folding_and(self):
        c = Circuit()
        a = c.add_input("a")
        zero = c.const(0)
        c.add_output("y", c.g_and(a, zero))
        r = rewrite(c)
        out = r.circuit.outputs["y"]
        assert r.circuit.ops[out] == Op.CONST0

    def test_or_with_one(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", c.g_or(a, c.const(1)))
        r = rewrite(c)
        assert r.circuit.ops[r.circuit.outputs["y"]] == Op.CONST1

    def test_xor_cancellation(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        c.add_output("y", c.g_xor(a, b, a))  # a ^ b ^ a = b
        r = rewrite(c)
        assert r.circuit.outputs["y"] == r.node_map[b]

    def test_double_negation(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", c.g_not(c.g_not(a)))
        r = rewrite(c)
        assert r.circuit.outputs["y"] == r.node_map[a]

    def test_mux_constant_select(self):
        c = Circuit()
        a, b, s = c.add_input("a"), c.add_input("b"), c.add_input("s")
        m = c.g_mux(c.const(1), a, b)
        c.add_output("y", m)
        r = rewrite(c)
        assert r.circuit.outputs["y"] == r.node_map[b]

    def test_mux_same_branches(self):
        c = Circuit()
        a, s = c.add_input("a"), c.add_input("s")
        c.add_output("y", c.g_mux(s, a, a))
        r = rewrite(c)
        assert r.circuit.outputs["y"] == r.node_map[a]

    def test_mux_to_and(self):
        c = Circuit()
        a, s = c.add_input("a"), c.add_input("s")
        c.add_output("y", c.g_mux(s, c.const(0), a))
        r = rewrite(c)
        out = r.circuit.outputs["y"]
        assert r.circuit.ops[out] == Op.AND

    def test_buffer_collapse(self):
        c = Circuit()
        a = c.add_input("a")
        b1 = c.gate(Op.BUF, a)
        b2 = c.gate(Op.BUF, b1)
        c.add_output("y", b2)
        r = rewrite(c)
        assert r.circuit.outputs["y"] == r.node_map[a]

    def test_rewrite_preserves_function(self):
        d = Design()
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        s, _ = d.adder(a, b)
        d.output_bus("s", s)
        r = rewrite(d.circuit)
        assert equivalent(d.circuit, r.circuit)


class TestSweep:
    def test_dead_logic_removed(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        used = c.g_and(a, b)
        c.g_or(a, b)  # dead
        c.g_xor(a, b)  # dead
        c.add_output("y", used)
        r = sweep(c)
        assert r.circuit.num_gates() == 1

    def test_inputs_preserved_by_default(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_input("unused")
        c.add_output("y", c.g_not(a))
        r = sweep(c)
        assert len(r.circuit.input_ids()) == 2

    def test_inputs_can_be_dropped(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_input("unused")
        c.add_output("y", c.g_not(a))
        r = sweep(c, keep_dangling_inputs=False)
        assert len(r.circuit.input_ids()) == 1


class TestOptimize:
    def test_optimize_shrinks_redundant_logic(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        x1 = c.g_and(a, b)
        x2 = c.g_and(a, b)  # duplicate
        y = c.g_or(x1, x2)  # or of identical nodes
        c.add_output("y", y)
        opt, report = optimize(c)
        assert opt.num_gates() == 1
        assert report.gate_reduction > 0

    def test_optimize_preserves_adder_function(self):
        d = Design()
        a = d.input_bus("a", 5)
        b = d.input_bus("b", 5)
        s, co = d.adder(a, b)
        d.output_bus("s", s)
        d.output_bit("cout", co)
        opt, _ = optimize(d.circuit)
        assert equivalent(d.circuit, opt)

    @given(st.integers(0, 2**6 - 1))
    @settings(max_examples=20, deadline=None)
    def test_optimize_preserves_random_logic(self, seed):
        import random

        rnd = random.Random(seed)
        c = Circuit()
        nodes = [c.add_input(f"i{k}") for k in range(4)]
        for _ in range(15):
            op = rnd.choice([Op.AND, Op.OR, Op.XOR, Op.NOT, Op.MUX])
            if op == Op.NOT:
                nodes.append(c.g_not(rnd.choice(nodes)))
            elif op == Op.MUX:
                nodes.append(c.g_mux(rnd.choice(nodes), rnd.choice(nodes), rnd.choice(nodes)))
            else:
                nodes.append(c.gate(op, rnd.choice(nodes), rnd.choice(nodes)))
        c.add_output("y", nodes[-1])
        c.add_output("z", nodes[-2])
        opt, _ = optimize(c)
        assert equivalent(c, opt)


class TestSpecialize:
    def build_param_mult(self):
        d = Design()
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        d.output_bus("p", d.multiplier(a, k))
        return d

    def test_param_bit_values(self):
        d = self.build_param_mult()
        vals = param_bit_values(d.circuit, {"k": 0b1010})
        by_name = {d.circuit.names[nid]: v for nid, v in vals.items()}
        assert by_name == {"k[0]": 0, "k[1]": 1, "k[2]": 0, "k[3]": 1}

    def test_param_bit_values_unknown_name(self):
        d = self.build_param_mult()
        with pytest.raises(KeyError):
            param_bit_values(d.circuit, {"nope": 1})

    def test_specialize_matches_word_level(self):
        d = self.build_param_mult()
        spec, _ = specialize(d.circuit, {"k": 6})
        # the specialized circuit has no parameters left
        out = simulate_words(spec, {"a": [0, 3, 7, 15]})
        assert [int(x) for x in out["p"]] == [0, 18, 42, 90]

    def test_specialize_by_zero_collapses_to_constant(self):
        d = self.build_param_mult()
        spec, _ = specialize(d.circuit, {"k": 0})
        assert spec.num_gates() == 0

    def test_specialization_reduces_area(self):
        d = self.build_param_mult()
        base, _ = optimize(d.circuit)
        spec, _ = specialize(d.circuit, {"k": 11})
        # Constant-propagating one operand of a multiplier must shrink it.
        assert spec.num_gates() < base.num_gates()


class TestParameterCones:
    def test_parameter_cone_detection(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        p = c.add_param("p")
        static_gate = c.g_and(a, b)
        tunable_gate = c.g_or(static_gate, p)
        c.add_output("y", tunable_gate)
        cone = parameter_cone_nodes(c)
        assert p in cone and tunable_gate in cone
        assert static_gate not in cone
        classes = classify_nodes(c)
        assert static_gate in classes["static"]
        assert tunable_gate in classes["tunable"]


class TestSynthesize:
    def test_synthesize_design(self):
        d = Design("mac_like")
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        p = d.multiplier(a, k)
        acc = d.input_bus("acc", 8)
        s, _ = d.adder(p, acc)
        d.output_bus("y", s)
        res = synthesize(d)
        assert res.num_gates > 0
        assert res.num_tunable_gates > 0
        summary = res.summary()
        assert summary["params"] == 4
        assert summary["gates"] == res.num_gates

    def test_synthesize_without_optimization(self):
        d = Design()
        a = d.input_bus("a", 3)
        b = d.input_bus("b", 3)
        d.output_bus("s", d.adder(a, b)[0])
        res_raw = synthesize(d, optimize_logic=False)
        res_opt = synthesize(d)
        assert res_raw.num_gates >= res_opt.num_gates
