"""PAR-as-a-service suite: job daemon, journal, supervision, bit-identity.

The load-bearing invariant everywhere: a job result produced *through the
service* -- coalesced, retried, crash-recovered or journal-replayed -- is
bit-identical (equal :func:`~repro.service.spec.result_digest`) to a
direct in-process :func:`~repro.service.spec.execute_job` call with the
same spec.  Everything else (backpressure, breaker, journal durability)
is availability machinery that must never bend that invariant.

Like ``tests/test_resilience.py``, every test opts into faults explicitly
(or suppresses them), so the suite is green under the CI chaos job's
ambient ``REPRO_FAULT_PLAN`` too.
"""

import asyncio
import json
import time
from dataclasses import asdict

import pytest

from repro.fpga.architecture import auto_size
from repro.par import (
    ChannelWidthError,
    PhysicalNetlist,
    minimum_channel_width,
)
from repro.par.placement import place
from repro.service import (
    CircuitBreaker,
    JobJournal,
    JobSpec,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceServer,
    canonical_dumps,
    execute_job,
    result_digest,
)
from repro.util import FaultPlan, fault_plan


def chain_netlist(n_blocks=6):
    """Synthetic physical netlist: a chain of logic blocks between two IOs."""
    nl = PhysicalNetlist("chain")
    prev = nl.add_block("pi", "io")
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


#: The smallest PE that exercises the full flow; one job is well under a
#: second, so daemon tests stay CI-sized.
TINY = dict(
    we=3, wf=4, num_inputs=2, counter_width=4,
    channel_width=12, placement_effort=0.3, router_iterations=20, seed=1,
)


def run(coro):
    return asyncio.run(coro)


def tiny_config(tmp_path, **overrides):
    defaults = dict(
        workers=1, queue_depth=8, deadline_s=60.0,
        retry_attempts=2, retry_backoff_s=0.01,
        breaker_threshold=2, breaker_cooldown_s=0.05,
        journal_dir=tmp_path / "journal",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Each test opts into faults explicitly (CI chaos-job compatible)."""
    with fault_plan(None):
        yield


@pytest.fixture(scope="module")
def direct_tiny():
    """The ground-truth result of the TINY job, computed in-process once."""
    with fault_plan(None):
        return execute_job(JobSpec(**TINY).to_payload())


# ---------------------------------------------------------------------------
# Job specs and content keys
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_payload_round_trip(self):
        spec = JobSpec(**TINY)
        again = JobSpec.from_payload(spec.to_payload())
        assert again == spec
        assert again.job_key() == spec.job_key()

    def test_job_key_covers_flow_knobs(self):
        base = JobSpec(**TINY)
        assert JobSpec(**{**TINY, "seed": 2}).job_key() != base.job_key()
        assert (
            JobSpec(**{**TINY, "channel_width": 14}).job_key()
            != base.job_key()
        )

    def test_class_key_ignores_flow_knobs(self):
        base = JobSpec(**TINY)
        assert JobSpec(**{**TINY, "seed": 2}).class_key() == base.class_key()
        assert (
            JobSpec(**{**TINY, "channel_width": 14}).class_key()
            == base.class_key()
        )
        # ...but tracks circuit-defining fields, including the mapping flow.
        assert (
            JobSpec(**{**TINY, "parameterized": False}).class_key()
            != base.class_key()
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_payload({**TINY, "chanel_width": 10})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(**{**TINY, "objective": "area"})
        with pytest.raises(ValueError):
            JobSpec(**{**TINY, "we": 1})
        with pytest.raises(ValueError):
            JobSpec(**{**TINY, "deadline_s": -1.0})
        with pytest.raises(ValueError, match="must be an object"):
            JobSpec.from_payload(["not", "a", "dict"])


# ---------------------------------------------------------------------------
# The journal encoding carries the PAR error/result types faithfully
# ---------------------------------------------------------------------------


class TestJournalEncoding:
    def test_channel_width_error_probes_round_trip(self, monkeypatch):
        """A real failed search's probe history survives the journal encoding.

        JSON objects have string keys, so the int-keyed probe dict comes
        back str-keyed -- the one normalization a journal reader must do.
        """
        import repro.par.metrics as metrics

        monkeypatch.setattr(
            metrics, "route",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("unroutable")),
        )
        nl = chain_netlist(4)
        arch = auto_size(
            nl.num_logic_blocks() + nl.num_ff_blocks(),
            nl.num_io_blocks(), channel_width=4,
        )
        placement = place(nl, arch, seed=0, effort=0.3).placement
        with pytest.raises(ChannelWidthError) as ei:
            minimum_channel_width(nl, placement, arch, low=1, high=4)
        probes = ei.value.probes
        assert probes
        decoded = json.loads(canonical_dumps(probes))
        assert {int(w): p for w, p in decoded.items()} == probes

    def test_min_cw_result_events_round_trip(self):
        """Recovery events ride the same canonical encoding unchanged."""
        nl = chain_netlist(6)
        arch = auto_size(
            nl.num_logic_blocks() + nl.num_ff_blocks(),
            nl.num_io_blocks(), channel_width=8,
        )
        placement = place(nl, arch, seed=0, effort=0.3).placement
        with fault_plan(FaultPlan.from_spec("cw.probe=error:1:@worker")):
            result = minimum_channel_width(nl, placement, arch, workers=2)
        assert result.events, "injected probe error must leave a trail"
        payload = asdict(result)
        decoded = json.loads(canonical_dumps(payload))
        assert decoded["events"] == result.events
        assert decoded["min_channel_width"] == result.min_channel_width


# ---------------------------------------------------------------------------
# Journal: atomic snapshots, replay, corruption absorption
# ---------------------------------------------------------------------------


def entry(job_id, state, seq=1, **extra):
    base = {
        "id": job_id, "key": job_id, "class": "class-x", "spec": dict(TINY),
        "state": state, "attempts": 0, "submitted_ts": 1.0,
        "updated_ts": 2.0, "seq": seq,
    }
    base.update(extra)
    return base


class TestJobJournal:
    def test_record_load_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        snap = entry("j1", "accepted")
        assert journal.record(snap) is True
        assert journal.load("j1") == snap
        assert journal.stats()["writes"] == 1

    def test_replay_classification(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record(entry("a", "accepted", seq=1))
        journal.record(entry("b", "running", seq=2))
        journal.record(entry("c", "completed", seq=3, result={"digest": "x"}))
        journal.record(entry("d", "failed", seq=4, error="boom"))
        replay = journal.replay()
        assert [e["id"] for e in replay["pending"]] == ["a", "b"]
        assert [e["id"] for e in replay["completed"]] == ["c"]
        assert [e["id"] for e in replay["failed"]] == ["d"]

    def test_corrupt_entries_absorbed(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record(entry("ok", "completed", result={"digest": "x"}))
        (tmp_path / "job-torn.json").write_text('{"id": "torn", "sta')
        (tmp_path / "job-alien.json").write_text('["not", "a", "snapshot"]')
        journal.record(entry("weird", "limbo", seq=9))
        events = []
        replay = journal.replay(events=events)
        assert [e["id"] for e in replay["completed"]] == ["ok"]
        assert journal.stats()["corrupt_entries"] == 3
        assert sum(e["event"] == "journal-corrupt-entry" for e in events) == 3

    def test_injected_write_fault_degrades_durability_only(self, tmp_path):
        journal = JobJournal(tmp_path)
        events = []
        with fault_plan(FaultPlan.from_spec("service.journal=io:1")):
            assert journal.record(entry("j1", "accepted"), events=events) is False
            assert journal.record(entry("j1", "running"), events=events) is True
        assert journal.stats()["dropped_writes"] == 1
        assert journal.load("j1")["state"] == "running"
        assert events[0]["event"] == "journal-write-dropped"

    def test_prune_keeps_pending(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record(entry("p", "accepted", seq=1))
        for i in range(4):
            journal.record(
                entry(f"c{i}", "completed", seq=2 + i, result={"d": i})
            )
        removed = journal.prune_completed(keep=1)
        assert removed == 3
        assert journal.load("p") is not None
        assert len(journal.replay()["completed"]) == 1


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold_per_class(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        breaker.record_failure("bad")
        assert breaker.allow("bad")
        breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("other"), "classes are isolated"
        assert breaker.opens == 1

    def test_success_resets_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        breaker.record_failure("c")
        breaker.record_success("c")
        breaker.record_failure("c")
        assert breaker.allow("c")

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.02)
        breaker.record_failure("c")
        assert not breaker.allow("c")
        time.sleep(0.03)
        assert breaker.allow("c"), "cooled down: one probe admitted"
        assert not breaker.allow("c"), "only one probe until it resolves"
        breaker.record_success("c")
        assert breaker.allow("c")

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.02)
        breaker.record_failure("c")
        time.sleep(0.03)
        assert breaker.allow("c")
        breaker.record_failure("c")
        assert not breaker.allow("c"), "failed probe restarts the cooldown"


# ---------------------------------------------------------------------------
# Daemon: admission, coalescing, backpressure
# ---------------------------------------------------------------------------


class TestDaemonAdmission:
    def test_bad_request_is_structured(self, tmp_path):
        daemon = ServiceDaemon(tiny_config(tmp_path))

        async def scenario():
            bad = await daemon.submit({**TINY, "chanel_width": 10})
            worse = await daemon.submit({**TINY, "objective": "area"})
            return bad, worse

        bad, worse = run(scenario())
        assert bad == {"ok": False, "error": "bad-request",
                       "detail": bad["detail"]}
        assert not worse["ok"] and worse["error"] == "bad-request"
        assert daemon.counts["rejected_bad_request"] == 2

    def test_backpressure_rejects_structured(self, tmp_path):
        # No dispatchers (daemon not started): the queue fills and holds.
        daemon = ServiceDaemon(tiny_config(tmp_path, queue_depth=2))

        async def scenario():
            responses = []
            for seed in range(3):
                responses.append(
                    await daemon.submit({**TINY, "seed": seed})
                )
            return responses

        first, second, third = run(scenario())
        assert first["ok"] and second["ok"]
        assert third == {"ok": False, "error": "overloaded",
                         "queue_depth": 2, "limit": 2}
        assert daemon.counts["rejected_overload"] == 1

    def test_duplicate_submission_coalesces_in_flight(self, tmp_path):
        daemon = ServiceDaemon(tiny_config(tmp_path))

        async def scenario():
            first = await daemon.submit(dict(TINY))
            dup = await daemon.submit(dict(TINY))
            return first, dup

        first, dup = run(scenario())
        assert first["state"] == "accepted"
        assert dup["ok"] and dup["coalesced"] and dup["state"] == "accepted"
        assert dup["job"] == first["job"]
        assert daemon.counts["coalesced"] == 1
        # One queue slot, one journal entry: coalescing is real sharing.
        assert daemon.stats()["queue_depth"] == 1

    def test_journal_written_at_acceptance(self, tmp_path):
        daemon = ServiceDaemon(tiny_config(tmp_path))

        async def scenario():
            return await daemon.submit(dict(TINY))

        response = run(scenario())
        snap = daemon.journal.load(response["job"])
        assert snap["state"] == "accepted"
        assert JobSpec.from_payload(snap["spec"]) == JobSpec(**TINY)


# ---------------------------------------------------------------------------
# Daemon: execution, recovery, replay -- the bit-identity contract
# ---------------------------------------------------------------------------


class TestDaemonExecution:
    def test_end_to_end_bit_identical_and_result_reused(
        self, tmp_path, direct_tiny
    ):
        daemon = ServiceDaemon(tiny_config(tmp_path))

        async def scenario():
            await daemon.start()
            try:
                response = await daemon.submit(dict(TINY))
                assert await daemon.wait(response["job"], timeout=120)
                result = daemon.result(response["job"])
                dup = await daemon.submit(dict(TINY))
                return response, result, dup
            finally:
                await daemon.stop()

        response, result, dup = run(scenario())
        assert result["ok"]
        assert result["result"]["digest"] == direct_tiny["digest"]
        assert result["result"]["wirelength"] == direct_tiny["wirelength"]
        # A duplicate of a finished job is served from the result table.
        assert dup == {"ok": True, "job": response["job"],
                       "state": "completed", "coalesced": True}
        assert daemon.journal.load(response["job"])["state"] == "completed"

    def test_worker_crash_recovers_bit_identical(self, tmp_path, direct_tiny):
        daemon = ServiceDaemon(tiny_config(tmp_path, retry_attempts=3))

        async def scenario():
            await daemon.start()
            try:
                with fault_plan(
                    FaultPlan.from_spec("service.exec=crash:1:@worker")
                ):
                    response = await daemon.submit(dict(TINY))
                    assert await daemon.wait(response["job"], timeout=120)
                return response["job"]
            finally:
                await daemon.stop()

        key = run(scenario())
        status = daemon.status(key)
        assert status["state"] == "completed"
        kinds = [e["event"] for e in status["events"]]
        assert "pool-failure" in kinds
        assert daemon.pool.restarts >= 1
        result = daemon.result(key)["result"]
        assert result["digest"] == direct_tiny["digest"]

    def test_concurrent_crash_recovery_stays_serial_and_bit_identical(
        self, tmp_path, direct_tiny
    ):
        # One pool failure breaks every in-flight future at once, so with
        # two dispatchers BOTH jobs land in the parent fallback together.
        # The fallback must serialize them: execute_job shares process-global
        # caches, and concurrent parent runs used to break bit identity.
        other = {**TINY, "seed": 2}
        with fault_plan(None):
            expected = {
                JobSpec.from_payload(p).job_key(): execute_job(p)["digest"]
                for p in (dict(TINY), other)
            }
        daemon = ServiceDaemon(tiny_config(tmp_path, workers=2,
                                           retry_attempts=3))

        async def scenario():
            await daemon.start()
            try:
                # Every fresh fork re-arms crash:1:@worker (hits reset to 0
                # in the child), so each worker kills its first job and both
                # jobs must finish through the parent path.
                with fault_plan(
                    FaultPlan.from_spec("service.exec=crash:1:@worker")
                ):
                    for payload in (dict(TINY), other):
                        response = await daemon.submit(payload)
                        assert response["ok"], response
                    for key in expected:
                        assert await daemon.wait(key, timeout=240)
            finally:
                await daemon.stop()

        run(scenario())
        assert daemon.pool.restarts >= 1
        for key, digest in expected.items():
            result = daemon.result(key)
            assert result["ok"], result
            assert result["result"]["digest"] == digest

    def test_exhausted_retries_fail_structured(self, tmp_path):
        daemon = ServiceDaemon(
            tiny_config(tmp_path, retry_attempts=2, breaker_threshold=1)
        )

        async def scenario():
            await daemon.start()
            try:
                with fault_plan(FaultPlan.from_spec("service.exec=error:*")):
                    response = await daemon.submit(dict(TINY))
                    assert await daemon.wait(response["job"], timeout=60)
                    spec = response["job"]
                    # Same class (different seed): the breaker now says no.
                    rejected = await daemon.submit({**TINY, "seed": 99})
                return spec, rejected
            finally:
                await daemon.stop()

        key, rejected = run(scenario())
        status = daemon.status(key)
        assert status["state"] == "failed"
        assert "2 attempt(s)" in status["error"]
        assert rejected["ok"] is False
        assert rejected["error"] == "circuit-open"
        assert daemon.counts["rejected_breaker"] == 1
        assert daemon.journal.load(key)["state"] == "failed"

    def test_journal_replay_finishes_accepted_jobs(self, tmp_path, direct_tiny):
        config = tiny_config(tmp_path)
        first_life = ServiceDaemon(config)

        async def accept_only():
            # Simulated crash-before-dispatch: the job is journaled as
            # accepted but no dispatcher ever ran.
            return (await first_life.submit(dict(TINY)))["job"]

        key = run(accept_only())
        assert first_life.journal.load(key)["state"] == "accepted"

        second_life = ServiceDaemon(config)

        async def restart_and_drain():
            replay = await second_life.start()
            try:
                assert replay["pending"] == 1
                assert await second_life.wait(key, timeout=120)
            finally:
                await second_life.stop()

        run(restart_and_drain())
        assert second_life.counts["replayed"] == 1
        result = second_life.result(key)
        assert result["ok"]
        assert result["result"]["digest"] == direct_tiny["digest"]

        # A third life replays the *completed* entry straight into the
        # result table: no recompute, same bits.
        third_life = ServiceDaemon(config)

        async def restart_again():
            replay = await third_life.start()
            try:
                assert replay["completed"] >= 1
                return await third_life.submit(dict(TINY))
            finally:
                await third_life.stop()

        dup = run(restart_again())
        assert dup["state"] == "completed" and dup["coalesced"]
        assert (
            third_life.result(key)["result"]["digest"] == direct_tiny["digest"]
        )

    def test_per_job_deadline_fails_cleanly(self, tmp_path):
        daemon = ServiceDaemon(tiny_config(tmp_path, retry_attempts=2))

        async def scenario():
            await daemon.start()
            try:
                response = await daemon.submit(
                    {**TINY, "deadline_s": 0.0001}
                )
                assert await daemon.wait(response["job"], timeout=60)
                return response["job"]
            finally:
                await daemon.stop()

        key = run(scenario())
        status = daemon.status(key)
        assert status["state"] == "failed"
        assert "DeadlineExceeded" in status["error"]


# ---------------------------------------------------------------------------
# Socket front end
# ---------------------------------------------------------------------------


class TestServiceServer:
    def test_protocol_round_trip(self, tmp_path, direct_tiny):
        async def scenario():
            server = ServiceServer(
                ServiceDaemon(tiny_config(tmp_path)), port=0
            )
            port = await server.start()
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, self._client_session, port
                )
            finally:
                await server.stop()

        replies = run(scenario())
        assert replies["ping"] == {"ok": True, "pong": True}
        assert replies["submit"]["ok"]
        assert replies["submit"]["result"]["digest"] == direct_tiny["digest"]
        assert replies["status"]["state"] == "completed"
        assert replies["result"]["result"]["digest"] == direct_tiny["digest"]
        assert replies["stats"]["counts"]["completed"] == 1
        assert replies["bad_json"]["error"] == "bad-request"
        assert replies["bad_op"]["error"] == "bad-request"
        assert replies["bad_spec"]["error"] == "bad-request"

    @staticmethod
    def _client_session(port):
        replies = {}
        with ServiceClient(port=port, timeout=120.0) as client:
            replies["ping"] = client.ping()
            replies["submit"] = client.submit(dict(TINY), wait=True, timeout=90)
            job = replies["submit"]["job"]
            replies["status"] = client.status(job)
            replies["result"] = client.result(job)
            replies["stats"] = client.stats()
            replies["bad_json"] = client.request({"op": None})
            replies["bad_op"] = client.request({"op": "frobnicate"})
            replies["bad_spec"] = client.submit({"nope": 1})
        return replies


# ---------------------------------------------------------------------------
# Executor determinism (the ground the service contract stands on)
# ---------------------------------------------------------------------------


class TestExecuteJob:
    def test_repeat_execution_is_bit_identical(self, direct_tiny):
        again = execute_job(JobSpec(**TINY).to_payload())
        assert again["digest"] == direct_tiny["digest"]
        assert again["wirelength"] == direct_tiny["wirelength"]
        assert again["routed"] is True
        assert again["events"] == [], "fault-free runs carry no events"

    def test_digest_tracks_seed(self, direct_tiny):
        other = execute_job(
            JobSpec(**{**TINY, "seed": 2}).to_payload()
        )
        assert other["digest"] != direct_tiny["digest"]
