"""Tests for placement, routing and the TPaR flow."""

import statistics

import pytest

from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.device import build_device
from repro.netlist.hdl import Design
from repro.par.cache import PaRCache
from repro.par.flow import best_placement, place_and_route, placement_sweep
from repro.par.metrics import channel_occupancy, minimum_channel_width
from repro.par.netlist import PhysicalNetlist, from_mapped_network
from repro.par.placement import hpwl, place, random_placement
from repro.par.routing import route
from repro.par.timing import analyze_timing
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized


def adder_network(width=4, param=False):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.param_bus("b", width) if param else d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_parameterized(opt) if param else map_conventional(opt)


def chain_netlist(n_blocks=6):
    """Synthetic physical netlist: a chain of logic blocks between two IOs."""
    nl = PhysicalNetlist("chain")
    src = nl.add_block("pi", "io")
    prev = src
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


class TestPhysicalNetlist:
    def test_conventional_lowering(self):
        net = adder_network(4, param=False)
        nl = from_mapped_network(net)
        assert nl.num_logic_blocks() == net.num_luts()
        assert nl.num_io_blocks() == len(net.input_node_ids()) + len(net.outputs)
        assert nl.num_ff_blocks() == 0
        nl.validate()

    def test_parameterized_lowering_has_ff_free_settings(self):
        net = adder_network(4, param=True)
        nl = from_mapped_network(net)
        # Parameters never become blocks in the fully parameterized flow.
        assert nl.num_ff_blocks() == 0
        assert nl.num_logic_blocks() == net.num_luts()

    def test_conventional_params_become_ff_blocks(self):
        d = Design()
        a = d.input_bus("a", 3)
        k = d.param_bus("k", 3)
        d.output_bus("s", d.adder(a, k)[0])
        net = map_conventional(optimize(d.circuit)[0])
        nl = from_mapped_network(net)
        assert nl.num_ff_blocks() == 3

    def test_tcons_are_absorbed_into_nets(self):
        d = Design()
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        d.output_bus("p", d.multiplier(a, k))
        net = map_parameterized(optimize(d.circuit)[0])
        nl = from_mapped_network(net)
        assert nl.num_tcons_absorbed == net.num_tcons()

    def test_nets_have_sinks(self):
        nl = from_mapped_network(adder_network(5))
        for net in nl.nets:
            assert net.sinks


class TestPlacement:
    def test_random_placement_is_feasible(self):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        pl = random_placement(nl, arch, seed=1)
        sites = [s.as_tuple() for s in pl.block_site.values()]
        assert len(sites) == len(set(sites))  # no overlaps
        for b in nl.blocks:
            kind = pl.block_site[b.id].kind
            assert (kind == "clb") == b.needs_logic_site

    def test_placement_rejects_oversubscription(self):
        nl = chain_netlist(30)
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        with pytest.raises(ValueError):
            random_placement(nl, arch)

    def test_annealing_improves_cost(self):
        nl = chain_netlist(12)
        arch = FPGAArchitecture(width=5, height=5, channel_width=4)
        result = place(nl, arch, seed=3, effort=0.5)
        assert result.cost <= result.initial_cost
        assert result.cost == pytest.approx(hpwl(nl, result.placement), rel=1e-9)

    def test_chain_placement_quality(self):
        # A 12-block chain placed on a 5x5 array should come close to the
        # minimum possible wirelength (one unit per connection).
        nl = chain_netlist(12)
        arch = FPGAArchitecture(width=5, height=5, channel_width=4)
        result = place(nl, arch, seed=0)
        assert result.cost <= 3.0 * len(nl.nets)


class TestRouting:
    def test_route_small_chain(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.5).placement
        result = route(nl, placement, device)
        assert result.success
        assert result.wirelength > 0
        assert set(result.routes) == {n.id for n in nl.nets}
        occ = channel_occupancy(result, device)
        assert occ["peak"] <= arch.channel_width

    def test_route_respects_capacity(self):
        net = adder_network(4)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.5).placement
        result = route(nl, placement, device)
        assert result.success
        assert result.overused_nodes == 0

    def test_congestion_fails_gracefully_on_tiny_channel(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=1)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        result = route(nl, placement, device, max_iterations=3)
        # With W=1 either the router reports congestion or it squeezes through;
        # it must never report success while nodes are overused.
        assert result.success == (result.overused_nodes == 0)


class TestMinimumChannelWidth:
    def test_min_cw_of_small_design(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        result = minimum_channel_width(nl, placement, arch, low=1, high=8)
        assert 1 <= result.min_channel_width <= 8
        assert result.attempts[result.min_channel_width] is True

    def test_min_cw_respects_bounds_and_records_attempts(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        result = minimum_channel_width(nl, placement, arch, low=2, high=8)
        assert 2 <= result.min_channel_width <= 8
        # Every probe lies in the (possibly widened) search interval and the
        # minimum is consistent with the recorded outcomes.
        assert all(w >= 2 for w in result.attempts)
        below = [w for w, ok in result.attempts.items()
                 if ok and w < result.min_channel_width]
        assert not below
        assert result.wirelength_at_min > 0

    def test_min_cw_failure_path_raises(self, monkeypatch):
        # When routing fails at every width, the search must widen up to the
        # hard cap and then raise instead of looping forever.
        import repro.par.metrics as metrics

        def always_congested(*args, **kwargs):
            raise RuntimeError("unroutable")

        monkeypatch.setattr(metrics, "route", always_congested)
        nl = chain_netlist(4)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        with pytest.raises(RuntimeError, match="does not route"):
            minimum_channel_width(nl, placement, arch, low=1, high=4)

    def test_min_cw_serial_and_pooled_agree(self, tmp_path):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=3, effort=0.5).placement
        serial = minimum_channel_width(nl, placement, arch, low=1, high=8)
        pooled = minimum_channel_width(
            nl, placement, arch, low=1, high=8,
            workers=2, cache=PaRCache(tmp_path / "cw"),
        )
        assert serial.min_channel_width == pooled.min_channel_width
        assert (
            serial.wirelength_at_min == pooled.wirelength_at_min
        )

    def test_min_cw_reuses_cached_routes(self, tmp_path, monkeypatch):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        cache = PaRCache(tmp_path / "routes")
        first = minimum_channel_width(nl, placement, arch, low=1, high=8, cache=cache)

        # Second run must be served entirely from the cache: routing breaks.
        import repro.par.metrics as metrics

        def explode(*args, **kwargs):
            raise AssertionError("route() called despite warm cache")

        monkeypatch.setattr(metrics, "route", explode)
        cache2 = PaRCache(tmp_path / "routes")
        again = minimum_channel_width(nl, placement, arch, low=1, high=8, cache=cache2)
        assert again.min_channel_width == first.min_channel_width
        assert cache2.hits > 0


class TestDirectedRoutingKernel:
    def test_astar_matches_reference_quality(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=6)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.4).placement
        ref = route(nl, placement, device, kernel="reference")
        fast = route(nl, placement, device, kernel="astar")
        assert fast.success == ref.success
        assert fast.overused_nodes == 0
        # The directed kernel is re-baselined, not bit-checked: its
        # wirelength must stay within 5% of the reference route.
        assert fast.wirelength <= 1.05 * ref.wirelength
        assert set(fast.routes) == {n.id for n in nl.nets}
        occ = channel_occupancy(fast, device)
        assert occ["peak"] <= arch.channel_width

    def test_astar_routes_are_connected_trees(self):
        # Every net's route must contain its source and all sink nodes, and
        # every non-source node must be reachable from a used node (the
        # backtrace merges paths into one tree).
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.5).placement
        result = route(nl, placement, device, kernel="astar")
        assert result.success
        rr = device.rr_graph
        adj = {n: set(rr.fanouts(n).tolist()) for r in result.routes.values()
               for n in r.nodes}
        for r in result.routes.values():
            nodes = set(r.nodes)
            reached = {r.nodes[0]}
            frontier = [r.nodes[0]]
            while frontier:
                n = frontier.pop()
                for m in adj[n] & nodes:
                    if m not in reached:
                        reached.add(m)
                        frontier.append(m)
            assert reached == nodes

    def test_astar_is_default_kernel(self):
        nl = chain_netlist(5)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.4).placement
        default = route(nl, placement, device)
        explicit = route(nl, placement, device, kernel="astar")
        assert default.wirelength == explicit.wirelength
        assert default.iterations == explicit.iterations

    def test_unknown_kernel_rejected(self):
        nl = chain_netlist(4)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        with pytest.raises(ValueError):
            route(nl, placement, device, kernel="warp")


class TestAutoKernel:
    def test_auto_resolves_to_astar(self):
        # "auto" is a fixed alias for the astar kernel at every scale (the
        # crossover benchmark retired the size-based wavefront promotion):
        # identical routes, wirelength and convergence.
        import repro.par.routing as routing_mod

        assert routing_mod.AUTO_KERNEL == "astar"
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=1, effort=0.4).placement
        auto = route(nl, placement, device, kernel="auto")
        astar = route(nl, placement, device, kernel="astar")
        assert auto.wirelength == astar.wirelength
        assert auto.iterations == astar.iterations
        for nid, r in astar.routes.items():
            assert auto.routes[nid].nodes == r.nodes

    def test_wavefront_stays_available_opt_in(self):
        # Demoted from the defaults, not removed: explicit requests still
        # run the vectorized kernel.
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=1, effort=0.4).placement
        wave = route(nl, placement, device, kernel="wavefront")
        assert wave.success
        assert wave.kernel == "wavefront"

    def test_min_cw_default_probe_kernel_is_auto(self):
        # The probe default must agree with the explicit scalar kernel at
        # sub-crossover scale (same minimum, same wirelength) and carry the
        # timing summary alongside the wirelength metrics.
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=3, effort=0.5).placement
        default = minimum_channel_width(nl, placement, arch, low=1, high=8)
        explicit = minimum_channel_width(
            nl, placement, arch, low=1, high=8, route_kernel="astar"
        )
        assert default.min_channel_width == explicit.min_channel_width
        assert default.wirelength_at_min == explicit.wirelength_at_min
        assert default.timing_at_min is not None
        assert default.timing_at_min["critical_path_ns"] > 0


class TestCacheObjectiveNamespace:
    def test_route_key_differs_by_objective(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        base = PaRCache.route_key(nl, placement, arch, 4, 12, "astar")
        timing = PaRCache.route_key(
            nl, placement, arch, 4, 12, "astar", objective="timing"
        )
        assert base != timing

    def test_min_cw_warm_cache_serves_timing_summary(self, tmp_path, monkeypatch):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        cache = PaRCache(tmp_path / "routes")
        first = minimum_channel_width(nl, placement, arch, low=1, high=8, cache=cache)
        assert first.timing_at_min is not None

        import repro.par.metrics as metrics

        def explode(*args, **kwargs):
            raise AssertionError("route() called despite warm cache")

        monkeypatch.setattr(metrics, "route", explode)
        cache2 = PaRCache(tmp_path / "routes")
        again = minimum_channel_width(nl, placement, arch, low=1, high=8, cache=cache2)
        assert again.timing_at_min == first.timing_at_min
        assert cache2.hits > 0


class TestWavefrontRoutingKernel:
    def test_wavefront_matches_reference_quality(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=6)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.4).placement
        ref = route(nl, placement, device, kernel="reference")
        wave = route(nl, placement, device, kernel="wavefront")
        assert wave.success == ref.success
        assert wave.overused_nodes == 0
        # Re-baselined, not bit-checked: the vectorized kernel's wirelength
        # must stay within the issue's 2% band of the reference route.
        assert wave.wirelength <= 1.02 * ref.wirelength
        assert set(wave.routes) == {n.id for n in nl.nets}
        occ = channel_occupancy(wave, device)
        assert occ["peak"] <= arch.channel_width

    def test_wavefront_routes_are_connected_trees(self):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.5).placement
        result = route(nl, placement, device, kernel="wavefront")
        assert result.success
        rr = device.rr_graph
        adj = {n: set(rr.fanouts(n).tolist()) for r in result.routes.values()
               for n in r.nodes}
        for r in result.routes.values():
            nodes = set(r.nodes)
            reached = {r.nodes[0]}
            frontier = [r.nodes[0]]
            while frontier:
                n = frontier.pop()
                for m in adj[n] & nodes:
                    if m not in reached:
                        reached.add(m)
                        frontier.append(m)
            assert reached == nodes

    def test_wavefront_is_deterministic(self):
        net = adder_network(5)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=6)
        device = build_device(arch)
        placement = place(nl, arch, seed=1, effort=0.4).placement
        a = route(nl, placement, device, kernel="wavefront")
        b = route(nl, placement, device, kernel="wavefront")
        assert a.wirelength == b.wirelength
        assert a.iterations == b.iterations
        for nid, r in a.routes.items():
            assert b.routes[nid].nodes == r.nodes

    def test_wavefront_batch_sizes_agree_on_success(self):
        # Batching changes the negotiation trajectory but never correctness:
        # every batch size must converge to a legal route.
        nl = chain_netlist(10)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=3, effort=0.5).placement
        for batch in (1, 2, 8):
            result = route(nl, placement, device, kernel="wavefront", batch=batch)
            assert result.success, f"batch={batch}"
            assert result.overused_nodes == 0
            occ = channel_occupancy(result, device)
            assert occ["peak"] <= arch.channel_width

    def test_wavefront_congestion_fails_gracefully(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=1)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        result = route(nl, placement, device, kernel="wavefront", max_iterations=3)
        # With W=1 either the router reports congestion or it squeezes
        # through; it must never report success while nodes are overused.
        assert result.success == (result.overused_nodes == 0)


class TestBatchedPlacementKernel:
    def test_batched_quality_within_band_across_seeds(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=6)
        seeds = range(5)
        inc = [place(nl, arch, seed=s, effort=0.5, kernel="incremental").cost
               for s in seeds]
        bat = [place(nl, arch, seed=s, effort=0.5, kernel="batched").cost
               for s in seeds]
        ratio = statistics.mean(bat) / statistics.mean(inc)
        assert ratio <= 1.02, f"batched mean HPWL {ratio:.3f}x of incremental"

    def test_batched_cost_is_exact_int_hpwl(self):
        nl = chain_netlist(10)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        for kernel in ("reference", "incremental", "batched"):
            result = place(nl, arch, seed=1, effort=0.5, kernel=kernel)
            assert isinstance(result.cost, int), kernel
            assert isinstance(result.initial_cost, int), kernel
            assert result.cost == hpwl(nl, result.placement), kernel
        assert isinstance(hpwl(nl, result.placement), int)

    def test_batched_is_seed_reproducible(self):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        a = place(nl, arch, seed=7, effort=0.5, kernel="batched")
        b = place(nl, arch, seed=7, effort=0.5, kernel="batched")
        assert a.cost == b.cost
        assert a.moves_accepted == b.moves_accepted
        for bid, site in a.placement.block_site.items():
            assert b.placement.block_site[bid].as_tuple() == site.as_tuple()


class TestPlacementSweep:
    def test_sweep_serial_and_pooled_agree(self, tmp_path):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        seeds = [0, 1, 2]
        serial = placement_sweep(nl, arch, seeds, effort=0.3, cache=None)
        pooled = placement_sweep(
            nl, arch, seeds, effort=0.3, workers=2,
            cache=PaRCache(tmp_path / "sweep"),
        )
        assert [r.cost for r in serial] == [r.cost for r in pooled]
        best = best_placement(serial)
        assert best.cost == min(r.cost for r in serial)

    def test_sweep_results_served_from_cache(self, tmp_path):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        cache = PaRCache(tmp_path / "sweep")
        first = placement_sweep(nl, arch, [0, 1], effort=0.3, cache=cache)
        cache2 = PaRCache(tmp_path / "sweep")
        second = placement_sweep(nl, arch, [0, 1], effort=0.3, cache=cache2)
        assert cache2.hits == 2
        assert [r.cost for r in first] == [r.cost for r in second]
        for a, b in zip(first, second):
            for bid, site in a.placement.block_site.items():
                assert b.placement.block_site[bid].as_tuple() == site.as_tuple()


class TestTimingAndFlow:
    def test_place_and_route_flow_conventional(self):
        net = adder_network(4)
        result = place_and_route(net, channel_width=8, placement_effort=0.4)
        assert result.routing.success
        summary = result.summary()
        assert summary["luts"] == net.num_luts()
        assert summary["wirelength"] > 0
        assert summary["logic_depth"] == net.depth()
        assert result.timing.critical_path_ns > 0

    def test_place_and_route_flow_parameterized(self):
        net = adder_network(4, param=True)
        result = place_and_route(net, channel_width=8, placement_effort=0.4)
        assert result.routing.success
        assert result.network.num_tluts() > 0

    def test_parameterized_wirelength_not_larger(self):
        # The fully parameterized flow places fewer blocks and routes fewer
        # nets, so its wirelength should not exceed the conventional flow's.
        conv = place_and_route(adder_network(6, param=False), channel_width=8,
                               placement_effort=0.4, seed=1)
        par = place_and_route(adder_network(6, param=True), channel_width=8,
                              placement_effort=0.4, seed=1)
        assert par.wirelength <= conv.wirelength

    def test_timing_without_routing(self):
        net = adder_network(4)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks())
        device = build_device(arch)
        report = analyze_timing(net, nl, None, device)
        assert report.logic_depth == net.depth()
        assert report.critical_path_ns > 0

    def test_timing_on_routed_result(self):
        net = adder_network(5)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.4).placement
        routing = route(nl, placement, device)
        assert routing.success
        report = analyze_timing(net, nl, routing, device)
        assert report.logic_depth == net.depth()
        assert report.critical_path_ns > 0
        # Routed wire statistics must reflect the actual route trees.
        assert report.mean_net_wirelength > 0
        assert report.max_net_wirelength >= report.mean_net_wirelength
        total_wires = sum(
            len(r.wire_nodes(device.rr_graph)) for r in routing.routes.values()
        )
        assert report.mean_net_wirelength == pytest.approx(
            total_wires / len(routing.routes)
        )
        d = report.as_dict()
        assert d["logic_depth"] == report.logic_depth
        assert d["max_net_wirelength"] == report.max_net_wirelength
