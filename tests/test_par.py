"""Tests for placement, routing and the TPaR flow."""

import pytest

from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.device import build_device
from repro.netlist.hdl import Design
from repro.par.flow import place_and_route
from repro.par.metrics import channel_occupancy, minimum_channel_width
from repro.par.netlist import PhysicalNetlist, from_mapped_network
from repro.par.placement import hpwl, place, random_placement
from repro.par.routing import route
from repro.par.timing import analyze_timing
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized


def adder_network(width=4, param=False):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.param_bus("b", width) if param else d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_parameterized(opt) if param else map_conventional(opt)


def chain_netlist(n_blocks=6):
    """Synthetic physical netlist: a chain of logic blocks between two IOs."""
    nl = PhysicalNetlist("chain")
    src = nl.add_block("pi", "io")
    prev = src
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


class TestPhysicalNetlist:
    def test_conventional_lowering(self):
        net = adder_network(4, param=False)
        nl = from_mapped_network(net)
        assert nl.num_logic_blocks() == net.num_luts()
        assert nl.num_io_blocks() == len(net.input_node_ids()) + len(net.outputs)
        assert nl.num_ff_blocks() == 0
        nl.validate()

    def test_parameterized_lowering_has_ff_free_settings(self):
        net = adder_network(4, param=True)
        nl = from_mapped_network(net)
        # Parameters never become blocks in the fully parameterized flow.
        assert nl.num_ff_blocks() == 0
        assert nl.num_logic_blocks() == net.num_luts()

    def test_conventional_params_become_ff_blocks(self):
        d = Design()
        a = d.input_bus("a", 3)
        k = d.param_bus("k", 3)
        d.output_bus("s", d.adder(a, k)[0])
        net = map_conventional(optimize(d.circuit)[0])
        nl = from_mapped_network(net)
        assert nl.num_ff_blocks() == 3

    def test_tcons_are_absorbed_into_nets(self):
        d = Design()
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        d.output_bus("p", d.multiplier(a, k))
        net = map_parameterized(optimize(d.circuit)[0])
        nl = from_mapped_network(net)
        assert nl.num_tcons_absorbed == net.num_tcons()

    def test_nets_have_sinks(self):
        nl = from_mapped_network(adder_network(5))
        for net in nl.nets:
            assert net.sinks


class TestPlacement:
    def test_random_placement_is_feasible(self):
        nl = chain_netlist(8)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        pl = random_placement(nl, arch, seed=1)
        sites = [s.as_tuple() for s in pl.block_site.values()]
        assert len(sites) == len(set(sites))  # no overlaps
        for b in nl.blocks:
            kind = pl.block_site[b.id].kind
            assert (kind == "clb") == b.needs_logic_site

    def test_placement_rejects_oversubscription(self):
        nl = chain_netlist(30)
        arch = FPGAArchitecture(width=3, height=3, channel_width=4)
        with pytest.raises(ValueError):
            random_placement(nl, arch)

    def test_annealing_improves_cost(self):
        nl = chain_netlist(12)
        arch = FPGAArchitecture(width=5, height=5, channel_width=4)
        result = place(nl, arch, seed=3, effort=0.5)
        assert result.cost <= result.initial_cost
        assert result.cost == pytest.approx(hpwl(nl, result.placement), rel=1e-9)

    def test_chain_placement_quality(self):
        # A 12-block chain placed on a 5x5 array should come close to the
        # minimum possible wirelength (one unit per connection).
        nl = chain_netlist(12)
        arch = FPGAArchitecture(width=5, height=5, channel_width=4)
        result = place(nl, arch, seed=0)
        assert result.cost <= 3.0 * len(nl.nets)


class TestRouting:
    def test_route_small_chain(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        device = build_device(arch)
        placement = place(nl, arch, seed=2, effort=0.5).placement
        result = route(nl, placement, device)
        assert result.success
        assert result.wirelength > 0
        assert set(result.routes) == {n.id for n in nl.nets}
        occ = channel_occupancy(result, device)
        assert occ["peak"] <= arch.channel_width

    def test_route_respects_capacity(self):
        net = adder_network(4)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=8)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.5).placement
        result = route(nl, placement, device)
        assert result.success
        assert result.overused_nodes == 0

    def test_congestion_fails_gracefully_on_tiny_channel(self):
        net = adder_network(6)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=1)
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        result = route(nl, placement, device, max_iterations=3)
        # With W=1 either the router reports congestion or it squeezes through;
        # it must never report success while nodes are overused.
        assert result.success == (result.overused_nodes == 0)


class TestMinimumChannelWidth:
    def test_min_cw_of_small_design(self):
        nl = chain_netlist(6)
        arch = FPGAArchitecture(width=4, height=4, channel_width=8)
        placement = place(nl, arch, seed=1, effort=0.5).placement
        result = minimum_channel_width(nl, placement, arch, low=1, high=8)
        assert 1 <= result.min_channel_width <= 8
        assert result.attempts[result.min_channel_width] is True


class TestTimingAndFlow:
    def test_place_and_route_flow_conventional(self):
        net = adder_network(4)
        result = place_and_route(net, channel_width=8, placement_effort=0.4)
        assert result.routing.success
        summary = result.summary()
        assert summary["luts"] == net.num_luts()
        assert summary["wirelength"] > 0
        assert summary["logic_depth"] == net.depth()
        assert result.timing.critical_path_ns > 0

    def test_place_and_route_flow_parameterized(self):
        net = adder_network(4, param=True)
        result = place_and_route(net, channel_width=8, placement_effort=0.4)
        assert result.routing.success
        assert result.network.num_tluts() > 0

    def test_parameterized_wirelength_not_larger(self):
        # The fully parameterized flow places fewer blocks and routes fewer
        # nets, so its wirelength should not exceed the conventional flow's.
        conv = place_and_route(adder_network(6, param=False), channel_width=8,
                               placement_effort=0.4, seed=1)
        par = place_and_route(adder_network(6, param=True), channel_width=8,
                              placement_effort=0.4, seed=1)
        assert par.wirelength <= conv.wirelength

    def test_timing_without_routing(self):
        net = adder_network(4)
        nl = from_mapped_network(net)
        arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks())
        device = build_device(arch)
        report = analyze_timing(net, nl, None, device)
        assert report.logic_depth == net.depth()
        assert report.critical_path_ns > 0
