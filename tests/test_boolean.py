"""Unit and property tests for truth-table Boolean functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.boolean import (
    TruthTable,
    cofactor,
    const_tt,
    is_wire_function,
    restrict,
    var_tt,
    wire_source,
)


class TestConstructors:
    def test_const0(self):
        tt = const_tt(0, 3)
        assert tt.is_const0()
        assert not tt.is_const1()
        assert tt.count_ones() == 0

    def test_const1(self):
        tt = const_tt(1, 3)
        assert tt.is_const1()
        assert tt.count_ones() == 8

    def test_var_projection(self):
        tt = var_tt(1, 3)
        for row in range(8):
            assert tt.value(row) == (row >> 1) & 1

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            var_tt(3, 3)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 0)

    def test_bits_are_masked(self):
        tt = TruthTable(1, 0b1111)
        assert tt.bits == 0b11


class TestEvaluation:
    def test_evaluate_and_value_agree(self):
        tt = TruthTable(2, 0b1000)  # AND
        assert tt.evaluate([1, 1]) == 1
        assert tt.evaluate([0, 1]) == 0
        assert tt.value(3) == 1
        assert tt.value(1) == 0

    def test_evaluate_wrong_arity(self):
        tt = TruthTable(2, 0b1000)
        with pytest.raises(ValueError):
            tt.evaluate([1])

    def test_value_out_of_range(self):
        tt = TruthTable(2, 0b1000)
        with pytest.raises(ValueError):
            tt.value(4)


class TestAlgebra:
    def test_and_or_xor_not(self):
        a = var_tt(0, 2)
        b = var_tt(1, 2)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_mismatched_vars_rejected(self):
        with pytest.raises(ValueError):
            _ = var_tt(0, 2) & var_tt(0, 3)

    def test_de_morgan(self):
        a, b = var_tt(0, 2), var_tt(1, 2)
        assert (~(a & b)).bits == ((~a) | (~b)).bits


class TestSupport:
    def test_depends_on(self):
        a = var_tt(0, 3)
        assert a.depends_on(0)
        assert not a.depends_on(1)
        assert not a.depends_on(2)

    def test_support_of_and(self):
        f = var_tt(0, 3) & var_tt(2, 3)
        assert f.support() == (0, 2)

    def test_shrink_to_support(self):
        f = var_tt(0, 3) & var_tt(2, 3)
        small, kept = f.shrink_to_support()
        assert kept == (0, 2)
        assert small.num_vars == 2
        assert small.bits == 0b1000  # AND of the two retained vars

    def test_expand_roundtrip(self):
        f = TruthTable(2, 0b0110)  # XOR
        big = f.expand(4, [1, 3])
        assert big.support() == (1, 3)
        small, kept = big.shrink_to_support()
        assert kept == (1, 3)
        assert small.bits == f.bits


class TestCofactor:
    def test_cofactor_of_and(self):
        f = var_tt(0, 2) & var_tt(1, 2)
        assert cofactor(f, 0, 1).bits == var_tt(1, 2).bits
        assert cofactor(f, 0, 0).is_const0()

    def test_restrict_multiple(self):
        f = var_tt(0, 3) & var_tt(1, 3) & var_tt(2, 3)
        g = restrict(f, {0: 1, 1: 1})
        assert g.bits == var_tt(2, 3).bits

    def test_shannon_expansion_identity(self):
        f = TruthTable(3, 0b10110010)
        pos = cofactor(f, 1, 1)
        neg = cofactor(f, 1, 0)
        x = var_tt(1, 3)
        recombined = (x & pos) | (~x & neg)
        assert recombined.bits == f.bits


class TestWireFunctions:
    def test_identity_is_wire(self):
        f = var_tt(2, 4)
        assert is_wire_function(f, [2])
        assert wire_source(f, [2]) == ("var", 2, False)

    def test_inverted_wire(self):
        f = ~var_tt(1, 3)
        assert is_wire_function(f, [1])
        assert wire_source(f, [1]) == ("var", 1, True)

    def test_constants_are_wires(self):
        assert is_wire_function(const_tt(0, 2), [0, 1])
        assert wire_source(const_tt(1, 2), [0, 1]) == ("const1", None, False)

    def test_and_is_not_a_wire(self):
        f = var_tt(0, 2) & var_tt(1, 2)
        assert not is_wire_function(f, [0, 1])
        with pytest.raises(ValueError):
            wire_source(f, [0, 1])

    def test_wire_over_wrong_var_set(self):
        f = var_tt(0, 2)
        assert not is_wire_function(f, [1])


@st.composite
def truth_tables(draw, max_vars=4):
    n = draw(st.integers(min_value=0, max_value=max_vars))
    bits = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return TruthTable(n, bits)


class TestProperties:
    @given(truth_tables())
    @settings(max_examples=100)
    def test_double_negation(self, tt):
        assert (~~tt).bits == tt.bits

    @given(truth_tables())
    @settings(max_examples=100)
    def test_xor_self_is_zero(self, tt):
        assert (tt ^ tt).is_const0()

    @given(truth_tables())
    @settings(max_examples=100)
    def test_support_matches_shrink(self, tt):
        small, kept = tt.shrink_to_support()
        assert kept == tt.support()
        assert small.num_vars == len(kept)

    @given(truth_tables(max_vars=3), st.integers(min_value=0, max_value=2))
    @settings(max_examples=100)
    def test_cofactor_removes_dependence(self, tt, var):
        if var >= tt.num_vars:
            return
        assert not cofactor(tt, var, 0).depends_on(var)
        assert not cofactor(tt, var, 1).depends_on(var)

    @given(truth_tables(max_vars=3))
    @settings(max_examples=100)
    def test_evaluate_agrees_with_value(self, tt):
        for row in range(tt.num_rows):
            bits = [(row >> i) & 1 for i in range(tt.num_vars)]
            assert tt.evaluate(bits) == tt.value(row)
