"""Chaos suite: the PAR stack under injected faults.

Every test here installs an explicit :class:`FaultPlan` (or suppresses
injection with ``fault_plan(None)``), so the suite is deterministic and
green both in a clean tier-1 run and in the CI chaos job that additionally
sets an ambient ``REPRO_FAULT_PLAN``.  The recurring assertions:

* under injected cache corruption, worker crashes and kernel timeouts the
  flow still returns a *valid routed result*, with the recovery path
  recorded in ``result.events``;
* recoverable-fault results are **bit-identical** to the fault-free run
  whenever the kernel degradation chain was not taken (cache rot and pool
  crashes change how much work is done, never which result comes out);
* with injection disabled nothing changes at all -- no events, no route
  differences.

See RESILIENCE.md for the fault-point names and the event taxonomy.
"""

import json
import os
from pathlib import Path

import pytest

from repro.fpga.architecture import FPGAArchitecture, auto_size
from repro.fpga.device import build_device
from repro.netlist.hdl import Design
from repro.par import (
    CacheIOError,
    ChannelWidthError,
    PaRCache,
    PhysicalNetlist,
    cached_route,
    from_mapped_network,
    minimum_channel_width,
    place_and_route,
    placement_sweep,
    route_resilient,
)
from repro.par.placement import place
from repro.par.routing import route
from repro.synth.optimize import optimize
from repro.techmap import map_parameterized
from repro.util import (
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    count_events,
    fault_plan,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def adder_network(width=4):
    """Parameterized ripple-carry adder pushed through the TCON mapper."""
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.param_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_parameterized(opt)


def chain_netlist(n_blocks=6):
    """Synthetic physical netlist: a chain of logic blocks between two IOs."""
    nl = PhysicalNetlist("chain")
    src = nl.add_block("pi", "io")
    prev = src
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Suppress any ambient REPRO_FAULT_PLAN: every test opts in explicitly.

    The CI chaos job exports a plan for the whole pytest process; without
    this fixture the ambient rules would double-fire inside tests that
    install their own plans.
    """
    with fault_plan(None):
        yield


@pytest.fixture
def placed_chain():
    netlist = chain_netlist(8)
    arch = auto_size(
        netlist.num_logic_blocks() + netlist.num_ff_blocks(),
        netlist.num_io_blocks(),
        channel_width=8,
    )
    device = build_device(arch)
    placement = place(netlist, arch, seed=0).placement
    return netlist, placement, arch, device


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        d.check("anywhere")  # must not raise
        assert d.remaining() == float("inf")

    def test_expiry_with_fake_clock(self):
        t = [0.0]
        d = Deadline(5.0, clock=lambda: t[0])
        assert d.remaining() == 5.0
        t[0] = 4.9
        d.check()
        t[0] = 5.1
        assert d.expired()
        with pytest.raises(DeadlineExceeded, match="5.000s exceeded in stage"):
            d.check("stage")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        p = RetryPolicy(attempts=4, backoff_s=0.1, seed=42)
        assert list(p.backoffs()) == list(p.backoffs())

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        events = []
        p = RetryPolicy(attempts=3, backoff_s=0.0, jitter=0.0)
        assert p.call(flaky, events=events, site="t") == "ok"
        assert len(calls) == 3
        assert [e["event"] for e in events] == ["retry", "retry"]

    def test_exhaustion_reraises_last(self):
        p = RetryPolicy(attempts=2, backoff_s=0.0)
        with pytest.raises(OSError, match="always"):
            p.call(lambda: (_ for _ in ()).throw(OSError("always")))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=5, backoff_s=0.0).call(bad)
        assert len(calls) == 1


class TestFaultPlan:
    def test_spec_round_trip(self):
        p = FaultPlan.from_spec(
            "cache.read=corrupt:2; cw.probe=crash:1:@worker;"
            "cache.write=io:p0.5:s7; route.kernel=timeout:*"
        )
        r = p.rules["cache.read"]
        assert (r.kind, r.times, r.scope) == ("corrupt", 2, "any")
        assert p.rules["cw.probe"].scope == "worker"
        assert p.rules["cache.write"].prob == 0.5
        assert p.rules["cache.write"].seed == 7
        assert p.rules["route.kernel"].times is None

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("nokind")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("site=kind:@nowhere")

    def test_times_budget(self):
        p = FaultPlan.from_spec("s=boom:2")
        with fault_plan(p):
            from repro.util import inject

            assert [inject("s") for _ in range(4)] == ["boom", "boom", None, None]
        assert [(site, kind) for site, kind, _ in p.fired] == [("s", "boom")] * 2

    def test_disabled_site_is_noop(self):
        from repro.util import inject

        with fault_plan(FaultPlan.from_spec("other=boom:*")):
            assert inject("this") is None
        assert inject("this") is None  # no plan at all

    def test_prob_rule_is_seeded(self):
        def draws():
            p = FaultPlan.from_spec("s=boom:p0.5:s3")
            with fault_plan(p):
                from repro.util import inject

                return [inject("s") for _ in range(20)]

        first, second = draws(), draws()
        assert first == second
        assert "boom" in first and None in first


# ---------------------------------------------------------------------------
# Cache failure paths
# ---------------------------------------------------------------------------


class TestCacheResilience:
    def test_injected_read_corruption_counts_and_recovers(self, tmp_path):
        cache = PaRCache(tmp_path / "c")
        cache.put("k", {"v": 1})
        events = []
        with fault_plan(FaultPlan.from_spec("cache.read=corrupt:1")):
            assert cache.get("k", events=events) is None  # injected rot
            assert cache.get("k", events=events) == {"v": 1}  # budget spent
        assert cache.stats()["read_errors"] == 1
        assert count_events(events, "cache-read-error") == 1

    def test_injected_write_fault_drops_and_counts(self, tmp_path):
        cache = PaRCache(tmp_path / "c")
        events = []
        with fault_plan(FaultPlan.from_spec("cache.write=io:1")):
            with pytest.warns(RuntimeWarning, match="dropped a write"):
                assert cache.put("k", {"v": 1}, events=events) is False
            assert cache.put("k", {"v": 2}, events=events) is True
        assert cache.get("k") == {"v": 2}
        assert cache.stats()["dropped_writes"] == 1
        assert count_events(events, "cache-write-dropped") == 1

    def test_strict_mode_raises(self, tmp_path):
        cache = PaRCache(tmp_path / "c", strict=True)
        cache.put("k", {"v": 1})
        cache._path("k").write_text("{rot")
        with pytest.raises(CacheIOError, match="cache read failed"):
            cache.get("k")
        with fault_plan(FaultPlan.from_spec("cache.write=io:1")):
            with pytest.warns(RuntimeWarning):
                with pytest.raises(CacheIOError, match="cache write failed"):
                    cache.put("x", {"v": 1})

    def test_missing_entry_is_plain_miss_not_error(self, tmp_path):
        cache = PaRCache(tmp_path / "c", strict=True)
        events = []
        assert cache.get("absent", events=events) is None  # strict must not raise
        assert cache.stats() == {
            "hits": 0, "misses": 1, "read_errors": 0, "dropped_writes": 0,
        }
        assert events == []

    def test_warns_once_per_directory(self, tmp_path):
        import warnings

        PaRCache._warned_dirs.discard(str(tmp_path / "w"))
        cache = PaRCache(tmp_path / "w")
        with fault_plan(FaultPlan.from_spec("cache.write=io:2")):
            with pytest.warns(RuntimeWarning):
                cache.put("a", {})
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                cache.put("b", {})  # second drop: counted, not warned
        assert cache.stats()["dropped_writes"] == 2


class TestCachedRouteResilience:
    def test_corrupt_route_entry_bit_identical_recovery(self, placed_chain, tmp_path):
        """Cache rot must change the work done, never the result."""
        netlist, placement, arch, device = placed_chain
        cache = PaRCache(tmp_path / "c")
        baseline = cached_route(netlist, placement, device, cache=cache)
        assert baseline.success

        # Rot every cached entry on disk.
        for path in cache.directory.glob("*.json"):
            path.write_text("{definitely not json")
        events = []
        recovered = cached_route(
            netlist, placement, device, cache=cache, events=events
        )
        assert recovered.success
        assert recovered.wirelength == baseline.wirelength
        assert recovered.iterations == baseline.iterations
        assert {n: r.nodes for n, r in recovered.routes.items()} == {
            n: r.nodes for n, r in baseline.routes.items()
        }
        assert count_events(events, "cache-read-error") == 1
        # The recompute overwrote the rotted entry with a good one.
        rehydrated = cached_route(netlist, placement, device, cache=cache)
        assert rehydrated.wirelength == baseline.wirelength

    def test_bad_forest_payload_falls_back_to_fresh_route(
        self, placed_chain, tmp_path
    ):
        netlist, placement, arch, device = placed_chain
        cache = PaRCache(tmp_path / "c")
        baseline = cached_route(netlist, placement, device, cache=cache)
        # Corrupt the forest *inside* valid JSON: json loads fine, the
        # payload validation must catch it.
        [path] = cache.directory.glob("*.json")
        value = json.loads(path.read_text())
        value["forest"]["node"] = [-5] * len(value["forest"]["node"])
        path.write_text(json.dumps(value))
        events = []
        recovered = cached_route(
            netlist, placement, device, cache=cache, events=events
        )
        assert recovered.wirelength == baseline.wirelength
        assert count_events(events, "cache-fallback") == 1

    def test_injected_hydrate_fault(self, placed_chain, tmp_path):
        netlist, placement, arch, device = placed_chain
        cache = PaRCache(tmp_path / "c")
        baseline = cached_route(netlist, placement, device, cache=cache)
        events = []
        with fault_plan(FaultPlan.from_spec("cache.hydrate=corrupt:1")):
            recovered = cached_route(
                netlist, placement, device, cache=cache, events=events
            )
        assert recovered.wirelength == baseline.wirelength
        assert count_events(events, "cache-fallback") == 1

    def test_degraded_result_never_poisons_cache(self, placed_chain, tmp_path):
        """A degraded-kernel route must not be stored under the requested key."""
        netlist, placement, arch, device = placed_chain
        cache = PaRCache(tmp_path / "c")
        with fault_plan(FaultPlan.from_spec("route.kernel=timeout:1")):
            events = []
            degraded = cached_route(
                netlist, placement, device, cache=cache, events=events
            )
            assert degraded.kernel == "fast"
            assert count_events(events, "degraded-kernel") == 1
        # The fault-free rerun must route fresh (no poisoned hit) and match
        # the astar (auto default) baseline exactly.
        events2 = []
        clean = cached_route(netlist, placement, device, cache=cache, events=events2)
        assert clean.kernel == "astar"
        assert count_events(events2, "degraded-kernel") == 0
        baseline = route(netlist, placement, device, kernel="astar")
        assert clean.wirelength == baseline.wirelength
        assert {n: r.nodes for n, r in clean.routes.items()} == {
            n: r.nodes for n, r in baseline.routes.items()
        }


# ---------------------------------------------------------------------------
# Kernel deadlines and the degradation chain
# ---------------------------------------------------------------------------


class TestRouteResilient:
    def test_fault_free_is_bit_identical_to_route(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        events = []
        a = route(netlist, placement, device, kernel="wavefront")
        b = route_resilient(
            netlist, placement, device, kernel="wavefront", events=events
        )
        assert events == []
        assert b.kernel == "wavefront"
        assert a.wirelength == b.wirelength
        assert {n: r.nodes for n, r in a.routes.items()} == {
            n: r.nodes for n, r in b.routes.items()
        }

    def test_timeout_degrades_down_the_chain(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        with fault_plan(FaultPlan.from_spec("route.kernel=timeout:2")):
            events = []
            result = route_resilient(
                netlist, placement, device, kernel="wavefront", events=events
            )
        assert result.success
        assert result.kernel == "fast"
        kinds = [e["event"] for e in events]
        assert kinds.count("kernel-deadline") == 2
        assert kinds.count("degraded-kernel") == 1
        degr = next(e for e in events if e["event"] == "degraded-kernel")
        assert degr["requested"] == "wavefront"
        assert degr["kernel"] == "fast"

    def test_kernel_error_degrades(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        with fault_plan(FaultPlan.from_spec("route.kernel=error:1")):
            events = []
            result = route_resilient(
                netlist, placement, device, kernel="wavefront", events=events
            )
        assert result.success and result.kernel == "astar"
        assert count_events(events, "kernel-error") == 1

    def test_real_deadline_timeout_degrades(self, placed_chain):
        """A genuine (not injected) 0-second budget exhausts wavefront+astar;
        the chain still produces a valid route via a later kernel, because
        each attempt gets a *fresh* deadline."""
        netlist, placement, arch, device = placed_chain

        # Zero-budget deadlines expire on the first poll of every kernel --
        # including fast, so the whole chain fails with kernel-deadline
        # events and the error propagates.
        events = []
        with pytest.raises(DeadlineExceeded):
            route_resilient(
                netlist, placement, device,
                kernel="wavefront", deadline_s=0.0, events=events,
            )
        assert count_events(events, "kernel-deadline") == 3

    def test_exhausted_chain_raises_last_error(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        with fault_plan(FaultPlan.from_spec("route.kernel=error:*")):
            events = []
            with pytest.raises(FaultInjected):
                route_resilient(
                    netlist, placement, device, kernel="wavefront", events=events
                )
        assert count_events(events, "kernel-error") == 3

    def test_degrade_false_reraises(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        with fault_plan(FaultPlan.from_spec("route.kernel=timeout:1")):
            with pytest.raises(DeadlineExceeded):
                route_resilient(
                    netlist, placement, device, kernel="wavefront", degrade=False
                )

    def test_timing_objective_degrades_objective_on_fast(self, placed_chain):
        netlist, placement, arch, device = placed_chain
        with fault_plan(FaultPlan.from_spec("route.kernel=timeout:2")):
            events = []
            result = route_resilient(
                netlist, placement, device,
                kernel="wavefront", objective="timing", events=events,
            )
        assert result.success and result.kernel == "fast"
        degr = next(e for e in events if e["event"] == "degraded-kernel")
        assert degr["objective"] == "wirelength"
        assert degr["objective_degraded"] is True


# ---------------------------------------------------------------------------
# Pool-worker failure: min-channel-width and placement sweep
# ---------------------------------------------------------------------------


class TestPoolRecovery:
    def test_min_cw_crash_recovers_to_serial_result(self):
        """A crashing probe worker must not change the found width."""
        netlist = from_mapped_network(adder_network(3))
        arch = auto_size(
            netlist.num_logic_blocks() + netlist.num_ff_blocks(),
            netlist.num_io_blocks(),
            channel_width=10,
        )
        placement = place(netlist, arch, seed=0).placement

        serial = minimum_channel_width(netlist, placement, arch, workers=1)
        with fault_plan(FaultPlan.from_spec("cw.probe=crash:1:@worker")):
            chaotic = minimum_channel_width(netlist, placement, arch, workers=2)
        assert chaotic.min_channel_width == serial.min_channel_width
        assert chaotic.wirelength_at_min == serial.wirelength_at_min
        assert chaotic.attempts == serial.attempts
        kinds = [e["event"] for e in chaotic.events]
        assert "pool-failure" in kinds and "serial-resubmit" in kinds

    def test_min_cw_worker_error_recovers(self):
        netlist = from_mapped_network(adder_network(3))
        arch = auto_size(
            netlist.num_logic_blocks() + netlist.num_ff_blocks(),
            netlist.num_io_blocks(),
            channel_width=10,
        )
        placement = place(netlist, arch, seed=0).placement
        serial = minimum_channel_width(netlist, placement, arch, workers=1)
        with fault_plan(FaultPlan.from_spec("cw.probe=error:2:@worker")):
            chaotic = minimum_channel_width(netlist, placement, arch, workers=2)
        assert chaotic.min_channel_width == serial.min_channel_width
        assert count_events(chaotic.events, "pool-failure") >= 1

    def test_sweep_crash_recovers_to_serial_result(self, placed_chain):
        netlist, _placement, arch, _device = placed_chain
        seeds = [0, 1, 2, 3]
        serial = placement_sweep(netlist, arch, seeds, workers=1, cache=None)
        events = []
        with fault_plan(FaultPlan.from_spec("sweep.place=crash:1:@worker")):
            chaotic = placement_sweep(
                netlist, arch, seeds, workers=2, cache=None, events=events
            )
        assert [r.cost for r in chaotic] == [r.cost for r in serial]
        assert [r.placement.block_site for r in chaotic] == [
            r.placement.block_site for r in serial
        ]
        kinds = [e["event"] for e in events]
        assert "pool-failure" in kinds and "serial-resubmit" in kinds

    def test_min_cw_failure_carries_probe_history(self, monkeypatch):
        """When the search gives up, the error says which widths it probed."""
        import repro.par.metrics as metrics

        def always_congested(*args, **kwargs):
            raise RuntimeError("unroutable")

        monkeypatch.setattr(metrics, "route", always_congested)
        nl = chain_netlist(4)
        arch = FPGAArchitecture(width=4, height=4, channel_width=4)
        placement = place(nl, arch, seed=0, effort=0.3).placement
        with pytest.raises(ChannelWidthError, match="does not route") as ei:
            minimum_channel_width(nl, placement, arch, low=1, high=4)
        probes = ei.value.probes
        assert probes, "probe history must not be empty"
        assert all(not p["converged"] for p in probes.values())
        assert max(probes) == 512  # widened all the way to the give-up bound
        # It is still a RuntimeError for callers written before the subclass.
        assert isinstance(ei.value, RuntimeError)


# ---------------------------------------------------------------------------
# Whole-flow chaos
# ---------------------------------------------------------------------------


class TestPlaceAndRouteChaos:
    def test_flow_survives_combined_faults(self, tmp_path):
        """Cache rot + worker crash + kernel timeout in one flow run."""
        network = adder_network(3)
        baseline = place_and_route(
            network, channel_width=10, find_min_channel_width=True, workers=2
        )
        assert baseline.routing.success
        assert baseline.events == []
        assert baseline.summary()["recovery_events"] == 0

        plan = FaultPlan.from_spec(
            "cache.read=corrupt:1; cw.probe=crash:1:@worker; route.kernel=timeout:1"
        )
        cache = PaRCache(tmp_path / "c")
        with fault_plan(plan):
            chaotic = place_and_route(
                network,
                channel_width=10,
                find_min_channel_width=True,
                workers=2,
                cache=cache,
            )
        # Valid routed result despite every injected failure.
        assert chaotic.routing.success
        assert chaotic.routing.forest is not None
        chaotic.routing.forest.validate()
        assert chaotic.min_channel_width.min_channel_width == (
            baseline.min_channel_width.min_channel_width
        )
        # The recovery paths are visible in the events.
        kinds = [e["event"] for e in chaotic.events]
        assert "degraded-kernel" in kinds
        assert "pool-failure" in kinds
        summary = chaotic.summary()
        assert summary["recovery_events"] == len(chaotic.events)
        assert summary["degraded_kernel"] == 1
        assert chaotic.degraded

    def test_recoverable_faults_keep_flow_bit_identical(self, tmp_path):
        """Faults absorbed *without* taking the degradation chain must leave
        the flow's result bit-identical to the fault-free run."""
        network = adder_network(2)
        baseline = place_and_route(network, channel_width=10)
        plan = FaultPlan.from_spec("cache.read=corrupt:1; cache.write=io:1")
        cache = PaRCache(tmp_path / "c")
        with fault_plan(plan), pytest.warns(RuntimeWarning, match="dropped a write"):
            chaotic = place_and_route(network, channel_width=10, cache=cache)
        assert chaotic.routing.success
        assert not chaotic.degraded
        assert chaotic.wirelength == baseline.wirelength
        assert {n: r.nodes for n, r in chaotic.routing.routes.items()} == {
            n: r.nodes for n, r in baseline.routing.routes.items()
        }
        assert chaotic.summary()["critical_path_ns"] == (
            baseline.summary()["critical_path_ns"]
        )

    def test_route_deadline_parameter_threads_through(self):
        network = adder_network(2)
        result = place_and_route(
            network, channel_width=10, route_deadline_s=120.0
        )
        assert result.routing.success
        assert result.events == []


class TestAmbientEnvPlan:
    def test_env_plan_installs_in_subprocess(self):
        """REPRO_FAULT_PLAN is picked up lazily on the first inject()."""
        import subprocess
        import sys

        code = (
            "from repro.util import inject, active_plan\n"
            "assert inject('demo.site') == 'boom'\n"
            "assert inject('demo.site') is None\n"
            "print('fired', len(active_plan().fired))\n"
        )
        env = dict(os.environ, REPRO_FAULT_PLAN="demo.site=boom:1")
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
            check=True,
        )
        assert out.stdout.strip() == "fired 1"
