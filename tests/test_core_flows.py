"""Tests for the evaluation flows, specialization (TC/PPC/SCG), reconfiguration
cost model and the high-level VCGRA tool flow."""

import pytest

from repro.core.flows import compare_pe_flows, run_pe_flow
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import PEOp, ProcessingElementSpec, build_pe_design
from repro.core.reconfiguration import HWICAP, MICAP, ReconfigurationCostModel
from repro.core.specialization import SpecializedConfigurationGenerator
from repro.core.toolflow import (
    ApplicationGraph,
    PEOperation,
    VCGRAToolflowError,
    run_vcgra_toolflow,
)
from repro.flopoco.arithmetic import fp_mac
from repro.flopoco.format import FPFormat
from repro.par.flow import place_and_route
from repro.synth.optimize import optimize
from repro.techmap import map_parameterized

TINY = FPFormat(we=4, wf=4)
SMALL = FPFormat(we=4, wf=6)


@pytest.fixture(scope="module")
def tiny_pe_comparison():
    """Both flows on a tiny PE, including PaR (kept small so tests stay fast)."""
    spec = ProcessingElementSpec(fmt=TINY, num_inputs=2, counter_width=4)
    return compare_pe_flows(
        spec=spec,
        do_par=True,
        channel_width=10,
        placement_effort=0.3,
        router_iterations=12,
        seed=1,
    )


class TestPEFlows:
    def test_mapping_only_flow(self):
        spec = ProcessingElementSpec(fmt=TINY, num_inputs=2, counter_width=4)
        circuit = build_pe_design(spec).circuit
        res = run_pe_flow(circuit, parameterized=True, do_par=False)
        assert res.par is None
        assert res.network.num_tcons() > 0
        assert "technology_mapping" in res.elapsed_seconds

    def test_comparison_shape_matches_paper(self, tiny_pe_comparison):
        cmp = tiny_pe_comparison
        conv = cmp.conventional.network
        par = cmp.parameterized.network
        # Headline result of Table I: the fully parameterized PE uses fewer
        # LUTs, has TCONs, and its depth does not increase.
        assert par.num_luts() < conv.num_luts()
        assert par.num_tcons() > 0
        assert conv.num_tcons() == 0
        assert par.depth() <= conv.depth()
        assert cmp.lut_reduction() > 0.05
        assert cmp.intra_network_lut_overhead() > 0

    def test_comparison_wirelength(self, tiny_pe_comparison):
        cmp = tiny_pe_comparison
        wl = cmp.wirelength_reduction()
        assert wl is not None
        # fewer blocks and nets must not increase wirelength
        assert wl > -0.05

    def test_table_rows_have_expected_keys(self, tiny_pe_comparison):
        table = tiny_pe_comparison.table()
        for row in table.values():
            for key in ("luts", "tluts", "tcons", "logic_depth", "wirelength"):
                assert key in row

    def test_functional_equivalence_of_both_flows(self):
        spec = ProcessingElementSpec(fmt=TINY, num_inputs=2, counter_width=4)
        circuit = build_pe_design(spec).circuit
        conv = run_pe_flow(circuit, parameterized=False, do_par=False).network
        par = run_pe_flow(circuit, parameterized=True, do_par=False).network
        fmt = spec.fmt
        sample, acc, coeff = fmt.encode(1.5), fmt.encode(-2.0), fmt.encode(0.75)
        params = {"coeff": coeff, "sel_a": 0, "sel_b": 1, "op": PEOp.MAC, "count_limit": 3}
        stim = {"in0": [sample], "in1": [acc], "count": [3]}
        out_c = conv.evaluate_words(stim, params)
        out_p = par.evaluate_words(stim, params)
        assert out_c == out_p
        expected = fp_mac(fmt, acc, sample, coeff)
        assert out_p["out"][0] == expected
        assert out_p["done"][0] == 1


class TestSpecializationGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        spec = ProcessingElementSpec(fmt=TINY, num_inputs=2, counter_width=4)
        circuit = build_pe_design(spec).circuit
        opt, _ = optimize(circuit)
        network = map_parameterized(opt)
        par = place_and_route(network, channel_width=10, placement_effort=0.3,
                              router_iterations=10, seed=0)
        return spec, SpecializedConfigurationGenerator(network, par)

    def test_summary_counts(self, generator):
        _, scg = generator
        s = scg.summary()
        assert s["tluts"] == scg.network.num_tluts()
        assert s["tcons"] == scg.network.num_tcons()
        assert s["boolean_functions"] > 0
        assert s["ppc_bits"] > 0

    def test_specialization_produces_bitstream_and_frames(self, generator):
        spec, scg = generator
        fmt = spec.fmt
        out = scg.specialize({"coeff": fmt.encode(0.5), "sel_a": 0, "sel_b": 1,
                              "op": PEOp.MAC, "count_limit": 2})
        assert out.bitstream is not None
        assert out.num_frames > 0
        assert out.evaluation_seconds >= 0

    def test_coefficient_change_touches_bounded_frame_set(self, generator):
        spec, scg = generator
        fmt = spec.fmt
        base = {"sel_a": 0, "sel_b": 1, "op": PEOp.MAC, "count_limit": 2}
        scg.specialize({"coeff": fmt.encode(0.5), **base})
        changed = scg.specialize({"coeff": fmt.encode(-1.75), **base})
        # a coefficient change must rewrite something, but only frames holding
        # tunable elements -- never more than the full tunable footprint
        full_footprint = scg._layout.frames_for_tiles(
            changed.bitstream.configured_tiles()
        )
        assert 1 <= changed.num_frames <= len(full_footprint)

    def test_identical_parameters_touch_no_frames(self, generator):
        spec, scg = generator
        fmt = spec.fmt
        params = {"coeff": fmt.encode(1.5), "sel_a": 0, "sel_b": 1,
                  "op": PEOp.MAC, "count_limit": 1}
        scg.specialize(params)
        again = scg.specialize(params)
        assert again.num_frames == 0


class TestReconfigurationModel:
    def test_paper_estimate_reproduced(self):
        model = ReconfigurationCostModel(HWICAP)
        # Paper: 526 TLUTs + 568 TCONs -> approximately 251 ms per PE.
        t = model.estimate_time_ms(526, 568)
        assert 200 <= t <= 300

    def test_micap_is_faster(self):
        slow = ReconfigurationCostModel(HWICAP).estimate_time_ms(526, 568)
        fast = ReconfigurationCostModel(MICAP).estimate_time_ms(526, 568)
        assert fast < slow

    def test_time_scales_with_elements(self):
        model = ReconfigurationCostModel()
        assert model.estimate_time_ms(100, 100) < model.estimate_time_ms(500, 500)

    def test_frame_based_time(self):
        model = ReconfigurationCostModel(HWICAP)
        assert model.time_from_frames_ms(0) == 0
        assert model.time_from_frames_ms(100) == pytest.approx(
            100 * HWICAP.frame_rmw_us / 1000.0
        )

    def test_amortization_example(self):
        model = ReconfigurationCostModel(HWICAP)
        t = model.estimate_time_ms(526, 568)
        amortized = model.amortized_overhead(t, items_per_configuration=1000,
                                             time_per_item_ms=5.0)
        assert amortized["per_item_overhead_ms"] == pytest.approx(t / 1000)
        assert 0 < amortized["overhead_fraction"] < 1

    def test_amortization_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ReconfigurationCostModel().amortized_overhead(10.0, 0, 1.0)


def simple_filter_app(taps=3):
    """A small MAC chain: out = sum_i coeff_i * x  (systolic accumulation)."""
    app = ApplicationGraph("fir", external_inputs=["x", "zero"])
    prev = "zero"
    for i in range(taps):
        app.add_operation(
            PEOperation(
                name=f"mac{i}",
                op=PEOp.MAC,
                coefficient=0.5 + i,
                count_limit=1,
                sample_input="x",
                acc_input=prev,
            )
        )
        prev = f"mac{i}"
    app.add_output("y", prev)
    return app


class TestVCGRAToolflow:
    def test_small_filter_maps_onto_grid(self):
        arch = VCGRAArchitecture(rows=4, cols=4,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        report = run_vcgra_toolflow(simple_filter_app(4), arch)
        assert report.pes_used == 4
        assert report.settings.num_enabled() == 4
        assert report.total_seconds < 1.0
        # chained MACs must sit in consecutive rows
        rows = [report.placement[f"mac{i}"][0] for i in range(4)]
        assert rows == sorted(rows)

    def test_settings_hold_encoded_coefficients(self):
        arch = VCGRAArchitecture(rows=4, cols=4,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        report = run_vcgra_toolflow(simple_filter_app(2), arch)
        pos = report.placement["mac0"]
        settings = report.settings.pe_settings[pos]
        assert settings.coefficient == SMALL.encode(0.5)
        assert settings.op == PEOp.MAC

    def test_broadcast_input_binds_every_consumer(self):
        # Regression: one external stream feeding multiple PEs used to keep
        # only the last binding, silently starving the other consumers.
        arch = VCGRAArchitecture(rows=2, cols=4,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        app = ApplicationGraph("broadcast", external_inputs=["x"])
        for i in range(3):
            app.add_operation(PEOperation(name=f"m{i}", op=PEOp.MUL,
                                          coefficient=float(i + 1),
                                          sample_input="x"))
        app.add_output("y0", "m0")
        app.add_output("y1", "m1")
        app.add_output("y2", "m2")
        report = run_vcgra_toolflow(app, arch)
        bindings = report.settings.input_bindings["x"]
        assert len(bindings) == 3
        assert {report.placement[f"m{i}"] for i in range(3)} == {
            pos for pos, _port in bindings
        }
        # The simulator must drive all three consumers from the one stream.
        from repro.vsim.simulator import VCGRASimulator

        sim = VCGRASimulator(arch, report.settings)
        trace = sim.run({"x": [2.0]})
        assert trace.outputs["y0"][0] == pytest.approx(2.0, rel=1e-3)
        assert trace.outputs["y1"][0] == pytest.approx(4.0, rel=1e-3)
        assert trace.outputs["y2"][0] == pytest.approx(6.0, rel=1e-3)

    def test_too_deep_application_rejected(self):
        arch = VCGRAArchitecture(rows=2, cols=2,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        with pytest.raises(VCGRAToolflowError):
            run_vcgra_toolflow(simple_filter_app(5), arch)

    def test_too_wide_level_rejected(self):
        arch = VCGRAArchitecture(rows=2, cols=2,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        app = ApplicationGraph("wide", external_inputs=["x"])
        for i in range(3):
            app.add_operation(PEOperation(name=f"m{i}", op=PEOp.MUL,
                                          coefficient=1.0, sample_input="x"))
        app.add_output("y", "m0")
        with pytest.raises(VCGRAToolflowError):
            run_vcgra_toolflow(app, arch)

    def test_unknown_input_rejected(self):
        app = ApplicationGraph("bad", external_inputs=["x"])
        app.add_operation(PEOperation(name="m", op=PEOp.MAC,
                                      sample_input="x", acc_input="ghost"))
        app.add_output("y", "m")
        with pytest.raises(VCGRAToolflowError):
            app.validate()

    def test_cycle_rejected(self):
        app = ApplicationGraph("loop", external_inputs=["x"])
        app.add_operation(PEOperation(name="a", sample_input="x", acc_input="b"))
        app.add_operation(PEOperation(name="b", sample_input="a"))
        app.add_output("y", "b")
        with pytest.raises(VCGRAToolflowError):
            app.validate()

    def test_duplicate_names_rejected(self):
        app = ApplicationGraph("dup", external_inputs=["x"])
        app.add_operation(PEOperation(name="a", sample_input="x"))
        with pytest.raises(ValueError):
            app.add_operation(PEOperation(name="a", sample_input="x"))

    def test_register_image_diff_between_applications(self):
        arch = VCGRAArchitecture(rows=4, cols=4,
                                 pe_spec=ProcessingElementSpec(fmt=SMALL))
        r1 = run_vcgra_toolflow(simple_filter_app(3), arch)
        app2 = simple_filter_app(3)
        app2.operations["mac1"].coefficient = 9.0
        r2 = run_vcgra_toolflow(app2, arch)
        diff = r1.settings.diff(r2.settings)
        assert len(diff) == 1
