"""Native (compiled-C) backend: build cache, graceful fallback, bit-identity.

The contract under test (see ``src/repro/native/``):

* the build cache content-addresses compiled kernels (source + flags +
  compiler version) and memoizes loads per process;
* every failure mode -- ``REPRO_NATIVE=0``, no compiler on PATH, a failed
  compile, the ``native.compile`` fault point -- degrades to the Python
  kernels with the flow fully functional;
* the compiled astar expansion loop and annealer move loop are
  **bit-identical twins** of their Python kernels: same routes, same
  placements, same exact-int costs and counters, across the bench seeds,
  in wirelength, weighted, and timing modes.  This is what keeps
  ``ROUTE_ALGO_VERSION`` / ``PLACE_ALGO_VERSION`` and the on-disk cache
  backend-independent.
"""

import ctypes
import os
import warnings
from contextlib import contextmanager

import pytest

from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.native import build as native_build
from repro.native import status as native_status
from repro.native.annealer import annealer_kernel
from repro.native.astar import astar_kernel
from repro.netlist.hdl import Design
from repro.par.netlist import PhysicalNetlist, from_mapped_network
from repro.par.flow import timing_driven_placement
from repro.par.placement import hpwl, place
from repro.par.routing import route, routing_to_payload
from repro.synth.optimize import optimize
from repro.techmap import map_conventional
from repro.util import FaultPlan, fault_plan

HAS_CC = native_build.find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAS_CC, reason="no C compiler on PATH")

BENCH_SEEDS = [0, 1, 2, 3, 4]  # the bench_hotpaths.py PLACE_SEEDS


@contextmanager
def python_twins():
    """Force the pure-Python kernels (``REPRO_NATIVE=0``) inside the block."""
    prev = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = "0"
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_NATIVE"]
        else:
            os.environ["REPRO_NATIVE"] = prev


@pytest.fixture(autouse=True)
def _native_on(monkeypatch):
    """Run this module with the backend enabled regardless of ambient env."""
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    with fault_plan(None):
        yield


def adder_network(width=4):
    d = Design("adder")
    a = d.input_bus("a", width)
    b = d.input_bus("b", width)
    s, co = d.adder(a, b)
    d.output_bus("s", s)
    d.output_bit("cout", co)
    opt, _ = optimize(d.circuit)
    return map_conventional(opt)


def chain_netlist(n_blocks=6):
    nl = PhysicalNetlist("chain")
    src = nl.add_block("pi", "io")
    prev = src
    for i in range(n_blocks):
        blk = nl.add_block(f"l{i}", "clb")
        nl.add_net(f"n{i}", prev, [blk])
        prev = blk
    out = nl.add_block("po", "io")
    nl.add_net("out", prev, [out])
    nl.validate()
    return nl


@pytest.fixture(scope="module")
def workload():
    """One placed adder design, shared across the identity tests."""
    net = adder_network(4)
    nl = from_mapped_network(net)
    arch = auto_size(nl.num_logic_blocks(), nl.num_io_blocks(), channel_width=6)
    device = build_device(arch)
    placement = place(nl, arch, seed=0, effort=0.4).placement
    return nl, arch, device, placement


TINY_SRC = """
#include <stdint.h>
int64_t repro_tiny(int64_t x) { return x + 1; }
"""

TINY_SRC_V2 = """
#include <stdint.h>
int64_t repro_tiny(int64_t x) { return x + 2; }
"""

BROKEN_SRC = "this is not C\n"


@needs_cc
class TestBuildCache:
    def test_compile_memo_and_disk_hit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native_build.reset()
        lib = native_build.load_kernel("tiny", TINY_SRC)
        assert lib is not None
        fn = lib.repro_tiny
        fn.argtypes = [ctypes.c_int64]
        fn.restype = ctypes.c_int64
        assert fn(41) == 42
        objects = list(tmp_path.glob("tiny-*.so"))
        assert len(objects) == 1
        # Same process: memoized, same CDLL object back.
        assert native_build.load_kernel("tiny", TINY_SRC) is lib
        # Fresh process simulated by reset(): the .so is reused, not rebuilt.
        before = objects[0].stat().st_mtime_ns
        native_build.reset()
        lib2 = native_build.load_kernel("tiny", TINY_SRC)
        assert lib2 is not None
        assert objects[0].stat().st_mtime_ns == before
        native_build.reset()

    def test_source_change_misses_to_new_object(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native_build.reset()
        assert native_build.load_kernel("tiny", TINY_SRC) is not None
        assert native_build.load_kernel("tiny", TINY_SRC_V2) is not None
        assert len(list(tmp_path.glob("tiny-*.so"))) == 2
        native_build.reset()

    def test_stale_object_is_rebuilt(self, tmp_path, monkeypatch):
        # Plant a corrupted cache entry at the exact content-addressed path
        # *before* any load, simulating a truncated write by a previous
        # process.  (Corrupting a .so that is already dlopen-ed in this
        # process would invalidate the live mapping instead.)
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native_build.reset()
        cc = native_build.find_compiler()
        digest = native_build.source_digest(
            TINY_SRC, native_build._compiler_version(cc)
        )
        stale = tmp_path / f"tiny-{digest[:16]}.so"
        stale.write_bytes(b"truncated garbage")
        lib = native_build.load_kernel("tiny", TINY_SRC)
        assert lib is not None
        fn = lib.repro_tiny
        fn.argtypes = [ctypes.c_int64]
        fn.restype = ctypes.c_int64
        assert fn(1) == 2
        native_build.reset()

    def test_failed_build_warns_once_then_stays_python(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native_build.reset()
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert native_build.load_kernel("broken", BROKEN_SRC) is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert native_build.load_kernel("broken", BROKEN_SRC) is None
        native_build.reset()


class TestFallback:
    def test_env_gate_disables_backend(self):
        with python_twins():
            assert not native_build.native_enabled()
            assert astar_kernel() is None
            assert annealer_kernel() is None
            st = native_status()
            assert st["enabled"] is False
            assert st["astar"] is False and st["annealer"] is False

    def test_native_compile_fault_point(self):
        with fault_plan(FaultPlan.from_spec("native.compile=fail:2")):
            assert astar_kernel() is None
            assert annealer_kernel() is None
        # The plan is exhausted/uninstalled: loads succeed again (given a
        # compiler; otherwise they stay None, which is also correct).
        if HAS_CC:
            assert astar_kernel() is not None

    def test_no_compiler_on_path(self, monkeypatch):
        monkeypatch.setattr(native_build, "find_compiler", lambda: None)
        assert astar_kernel() is None
        assert annealer_kernel() is None
        assert native_status()["compiler"] is None

    def test_flow_works_without_compiler(self, monkeypatch):
        """Placement + routing end-to-end with the compiler lookup failing."""
        monkeypatch.setattr(native_build, "find_compiler", lambda: None)
        nl = chain_netlist(6)
        arch = auto_size(
            nl.num_logic_blocks() + nl.num_ff_blocks(),
            nl.num_io_blocks(),
            channel_width=6,
        )
        device = build_device(arch)
        result = place(nl, arch, seed=1, effort=0.4, kernel="batched")
        assert result.cost == hpwl(nl, result.placement)
        routed = route(nl, result.placement, device)
        assert routed.success

    def test_fault_injected_flow_still_routes(self):
        with fault_plan(FaultPlan.from_spec("native.compile=fail:100")):
            nl = chain_netlist(5)
            arch = auto_size(
                nl.num_logic_blocks() + nl.num_ff_blocks(),
                nl.num_io_blocks(),
                channel_width=6,
            )
            device = build_device(arch)
            placement = place(nl, arch, seed=0, effort=0.4, kernel="batched")
            routed = route(nl, placement.placement, device)
            assert routed.success


def _routes_equal(a, b):
    if set(a.routes) != set(b.routes):
        return False
    return all(a.routes[k].nodes == r.nodes for k, r in b.routes.items())


@needs_cc
class TestAstarBitIdentity:
    def test_routes_identical_across_seeds(self, workload):
        nl, arch, device, _ = workload
        for seed in BENCH_SEEDS:
            placement = place(nl, arch, seed=seed, effort=0.3).placement
            nat = route(nl, placement, device, kernel="astar")
            assert nat.success
            with python_twins():
                py = route(nl, placement, device, kernel="astar")
            assert nat.wirelength == py.wirelength, seed
            assert nat.iterations == py.iterations, seed
            assert _routes_equal(nat, py), seed

    def test_forest_payload_identical(self, workload):
        """The fragment arrays emitted during native backtrace match the
        Python path's bit for bit (same cache payload)."""
        nl, _arch, device, placement = workload
        nat = route(nl, placement, device, kernel="astar")
        with python_twins():
            py = route(nl, placement, device, kernel="astar")
        assert routing_to_payload(nat) == routing_to_payload(py)

    def test_timing_objective_identical(self, workload):
        nl, _arch, device, placement = workload
        nat = route(nl, placement, device, kernel="astar", objective="timing")
        with python_twins():
            py = route(nl, placement, device, kernel="astar", objective="timing")
        assert nat.success == py.success
        assert nat.wirelength == py.wirelength
        assert _routes_equal(nat, py)


@needs_cc
class TestAnnealerBitIdentity:
    def _identical(self, a, b):
        assert a.cost == b.cost
        assert a.initial_cost == b.initial_cost
        assert a.moves_attempted == b.moves_attempted
        assert a.moves_accepted == b.moves_accepted
        assert a.temperature_steps == b.temperature_steps
        assert a.objective_cost == b.objective_cost
        sites_a = {k: v.as_tuple() for k, v in a.placement.block_site.items()}
        sites_b = {k: v.as_tuple() for k, v in b.placement.block_site.items()}
        assert sites_a == sites_b

    def test_plain_trajectories_identical_across_seeds(self, workload):
        nl, arch, _device, _ = workload
        for seed in BENCH_SEEDS:
            nat = place(nl, arch, seed=seed, effort=0.3, kernel="batched")
            with python_twins():
                py = place(nl, arch, seed=seed, effort=0.3, kernel="batched")
            self._identical(nat, py)

    def test_weighted_trajectories_identical(self, workload):
        nl, arch, _device, _ = workload
        weights = [1.0 + 2.0 * (i % 3) for i in range(len(nl.nets))]
        for seed in BENCH_SEEDS[:2]:
            nat = place(
                nl, arch, seed=seed, effort=0.3, kernel="batched",
                net_weights=weights,
            )
            with python_twins():
                py = place(
                    nl, arch, seed=seed, effort=0.3, kernel="batched",
                    net_weights=weights,
                )
            self._identical(nat, py)

    def test_timing_trajectories_identical(self, workload):
        """The retime callback fires mid-loop from C; trajectories (and the
        exact-int timing costs) must still match the Python twin."""
        nl, arch, _device, _ = workload
        for seed in BENCH_SEEDS[:2]:
            nat = timing_driven_placement(
                nl, arch, seed=seed, effort=0.3, mode="incremental"
            )
            with python_twins():
                py = timing_driven_placement(
                    nl, arch, seed=seed, effort=0.3, mode="incremental"
                )
            self._identical(nat, py)

    def test_callback_exception_propagates(self, workload):
        """An exception inside the retime callback must abort the C loop and
        re-raise in Python, not crash or hang."""
        from repro.par.placement import TimingCost

        nl, arch, _device, _ = workload

        def bad_criticality(block_x, block_y):
            raise RuntimeError("boom from retime")

        nedges = sum(1 + len(n.sinks) for n in nl.nets)
        tc = TimingCost(
            conn_src=[n.driver for n in nl.nets for _ in n.sinks],
            conn_dst=[s for n in nl.nets for s in n.sinks],
            criticality=bad_criticality,
            tradeoff=3.0,
            retime_every=1,
        )
        with pytest.raises(RuntimeError, match="boom from retime"):
            place(nl, arch, seed=0, effort=0.3, kernel="batched", timing=tc)
