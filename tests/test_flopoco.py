"""Tests for the FloPoCo floating-point substrate (format, arithmetic, circuits)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flopoco.arithmetic import fp_add, fp_mac, fp_mul, fp_neg
from repro.flopoco.circuits import fp_adder_circuit, fp_mac_circuit, fp_multiplier_circuit
from repro.flopoco.format import (
    EXC_INF,
    EXC_NAN,
    EXC_NORMAL,
    EXC_ZERO,
    FPFormat,
    PAPER_FORMAT,
)
from repro.netlist.simulate import simulate_words

# A small format keeps the circuit tests fast; the format logic itself is
# width-independent so the same code paths are exercised.
SMALL = FPFormat(we=4, wf=6)
MEDIUM = FPFormat(we=5, wf=10)


finite_floats = st.floats(
    min_value=-200.0, max_value=200.0, allow_nan=False, allow_infinity=False
).filter(lambda v: v == 0.0 or 2.0**-6 < abs(v) < 2.0**6)


class TestFormat:
    def test_paper_format_dimensions(self):
        assert PAPER_FORMAT.we == 6
        assert PAPER_FORMAT.wf == 26
        assert PAPER_FORMAT.width == 35
        assert PAPER_FORMAT.bias == 31

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError):
            FPFormat(we=1, wf=8)
        with pytest.raises(ValueError):
            FPFormat(we=4, wf=0)

    def test_pack_unpack_roundtrip(self):
        fmt = SMALL
        word = fmt.pack(EXC_NORMAL, 1, 9, 0b101011)
        assert fmt.unpack(word) == (EXC_NORMAL, 1, 9, 0b101011)

    def test_pack_range_checks(self):
        with pytest.raises(ValueError):
            SMALL.pack(4, 0, 0, 0)
        with pytest.raises(ValueError):
            SMALL.pack(EXC_NORMAL, 0, 16, 0)
        with pytest.raises(ValueError):
            SMALL.pack(EXC_NORMAL, 0, 0, 64)

    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 3.75, -0.125, 13.0, 100.0])
    def test_encode_decode_exact_values(self, value):
        assert SMALL.decode(SMALL.encode(value)) == pytest.approx(value, rel=2**-6)

    def test_encode_zero_and_specials(self):
        fmt = SMALL
        assert fmt.exception_of(fmt.encode(0.0)) == EXC_ZERO
        assert fmt.exception_of(fmt.encode(float("inf"))) == EXC_INF
        assert fmt.exception_of(fmt.encode(float("-inf"))) == EXC_INF
        assert fmt.sign_of(fmt.encode(float("-inf"))) == 1
        assert fmt.exception_of(fmt.encode(float("nan"))) == EXC_NAN

    def test_encode_overflow_saturates_to_inf(self):
        fmt = SMALL  # emax-bias = 15-7 = 8 -> max magnitude < 2^9
        assert fmt.exception_of(fmt.encode(1e9)) == EXC_INF

    def test_encode_underflow_flushes_to_zero(self):
        fmt = SMALL
        assert fmt.exception_of(fmt.encode(1e-9)) == EXC_ZERO

    @given(finite_floats)
    @settings(max_examples=200)
    def test_encode_decode_relative_error(self, value):
        fmt = MEDIUM
        decoded = fmt.decode(fmt.encode(value))
        if value == 0.0:
            assert decoded == 0.0
        else:
            assert abs(decoded - value) <= abs(value) * 2.0 ** (-fmt.wf)

    def test_ulp(self):
        assert PAPER_FORMAT.ulp(1.0) == 2.0**-26
        assert PAPER_FORMAT.ulp(2.0) == 2.0**-25


class TestWordArithmetic:
    @given(finite_floats, finite_floats)
    @settings(max_examples=200)
    def test_mul_matches_float(self, a, b):
        fmt = PAPER_FORMAT
        res = fmt.decode(fp_mul(fmt, fmt.encode(a), fmt.encode(b)))
        expected = a * b
        if expected == 0.0:
            assert res == 0.0
        else:
            assert abs(res - expected) <= abs(expected) * 2.0 ** (-fmt.wf + 2)

    @given(finite_floats, finite_floats)
    @settings(max_examples=200)
    def test_add_matches_float(self, a, b):
        fmt = PAPER_FORMAT
        res = fmt.decode(fp_add(fmt, fmt.encode(a), fmt.encode(b)))
        expected = a + b
        tol = max(abs(a), abs(b), 1e-30) * 2.0 ** (-fmt.wf + 2)
        assert abs(res - expected) <= tol

    @given(finite_floats, finite_floats, finite_floats)
    @settings(max_examples=100)
    def test_mac_matches_float(self, acc, x, k):
        fmt = PAPER_FORMAT
        res = fmt.decode(fp_mac(fmt, fmt.encode(acc), fmt.encode(x), fmt.encode(k)))
        expected = acc + x * k
        tol = (abs(acc) + abs(x * k) + 1e-30) * 2.0 ** (-fmt.wf + 3)
        assert abs(res - expected) <= tol

    def test_mul_special_cases(self):
        fmt = SMALL
        inf, nan, zero = fmt.encode(float("inf")), fmt.encode(float("nan")), fmt.encode(0.0)
        two = fmt.encode(2.0)
        assert fmt.exception_of(fp_mul(fmt, inf, two)) == EXC_INF
        assert fmt.exception_of(fp_mul(fmt, inf, zero)) == EXC_NAN
        assert fmt.exception_of(fp_mul(fmt, nan, two)) == EXC_NAN
        assert fmt.exception_of(fp_mul(fmt, zero, two)) == EXC_ZERO
        # sign of zero product
        m = fp_mul(fmt, fmt.encode(-2.0), zero)
        assert fmt.exception_of(m) == EXC_ZERO and fmt.sign_of(m) == 1

    def test_add_special_cases(self):
        fmt = SMALL
        inf = fmt.encode(float("inf"))
        ninf = fmt.encode(float("-inf"))
        nan = fmt.encode(float("nan"))
        zero = fmt.encode(0.0)
        two = fmt.encode(2.0)
        assert fmt.exception_of(fp_add(fmt, inf, ninf)) == EXC_NAN
        assert fmt.exception_of(fp_add(fmt, inf, inf)) == EXC_INF
        assert fmt.exception_of(fp_add(fmt, nan, two)) == EXC_NAN
        assert fp_add(fmt, zero, two) == two
        assert fp_add(fmt, two, zero) == two

    def test_add_exact_cancellation(self):
        fmt = SMALL
        a = fmt.encode(3.5)
        na = fp_neg(fmt, a)
        assert fmt.exception_of(fp_add(fmt, a, na)) == EXC_ZERO

    def test_mul_overflow_and_underflow(self):
        fmt = SMALL
        big = fmt.pack(EXC_NORMAL, 0, fmt.emax, (1 << fmt.wf) - 1)
        tiny = fmt.pack(EXC_NORMAL, 0, 0, 1)
        assert fmt.exception_of(fp_mul(fmt, big, big)) == EXC_INF
        assert fmt.exception_of(fp_mul(fmt, tiny, tiny)) == EXC_ZERO

    def test_mul_commutative(self):
        fmt = MEDIUM
        for a, b in [(1.5, -2.25), (0.03125, 19.0), (7.0, 7.0)]:
            wa, wb = fmt.encode(a), fmt.encode(b)
            assert fp_mul(fmt, wa, wb) == fp_mul(fmt, wb, wa)

    def test_add_commutative(self):
        fmt = MEDIUM
        for a, b in [(1.5, -2.25), (0.03125, 19.0), (-7.0, 7.0)]:
            wa, wb = fmt.encode(a), fmt.encode(b)
            assert fp_add(fmt, wa, wb) == fp_add(fmt, wb, wa)


def circuit_words(design, port_values):
    out = simulate_words(design.circuit, port_values["inputs"], port_values.get("params"))
    return {k: [int(x) for x in v] for k, v in out.items()}


class TestMultiplierCircuit:
    @given(finite_floats, finite_floats)
    @settings(max_examples=25, deadline=None)
    def test_matches_word_level(self, a, b):
        fmt = SMALL
        d = fp_multiplier_circuit(fmt)
        wa, wb = fmt.encode(a), fmt.encode(b)
        res = circuit_words(d, {"inputs": {"x": [wa], "y": [wb]}})
        assert res["p"][0] == fp_mul(fmt, wa, wb)

    def test_special_values_match(self):
        fmt = SMALL
        d = fp_multiplier_circuit(fmt)
        specials = [
            fmt.encode(0.0),
            fmt.encode(float("inf")),
            fmt.encode(float("-inf")),
            fmt.encode(float("nan")),
            fmt.encode(1.0),
            fmt.encode(-3.25),
            fmt.pack(EXC_NORMAL, 0, fmt.emax, (1 << fmt.wf) - 1),
            fmt.pack(EXC_NORMAL, 1, 0, 1),
        ]
        xs, ys, expected = [], [], []
        for a in specials:
            for b in specials:
                xs.append(a)
                ys.append(b)
                expected.append(fp_mul(fmt, a, b))
        res = circuit_words(d, {"inputs": {"x": xs, "y": ys}})
        assert res["p"] == expected

    def test_parameterized_coefficient_port(self):
        fmt = SMALL
        d = fp_multiplier_circuit(fmt, param_coefficient=True)
        assert len(d.circuit.param_ids()) == fmt.width
        wa = fmt.encode(1.5)
        wk = fmt.encode(-2.0)
        res = circuit_words(d, {"inputs": {"x": [wa]}, "params": {"coeff": wk}})
        assert res["p"][0] == fp_mul(fmt, wa, wk)


class TestAdderCircuit:
    @given(finite_floats, finite_floats)
    @settings(max_examples=25, deadline=None)
    def test_matches_word_level(self, a, b):
        fmt = SMALL
        d = fp_adder_circuit(fmt)
        wa, wb = fmt.encode(a), fmt.encode(b)
        res = circuit_words(d, {"inputs": {"x": [wa], "y": [wb]}})
        assert res["s"][0] == fp_add(fmt, wa, wb)

    def test_special_values_match(self):
        fmt = SMALL
        d = fp_adder_circuit(fmt)
        specials = [
            fmt.encode(0.0),
            fmt.encode(-0.0),
            fmt.encode(float("inf")),
            fmt.encode(float("-inf")),
            fmt.encode(float("nan")),
            fmt.encode(1.0),
            fmt.encode(-1.0),
            fmt.encode(1.0 + 2**-6),
            fmt.pack(EXC_NORMAL, 0, fmt.emax, (1 << fmt.wf) - 1),
            fmt.pack(EXC_NORMAL, 1, 0, 0),
        ]
        xs, ys, expected = [], [], []
        for a in specials:
            for b in specials:
                xs.append(a)
                ys.append(b)
                expected.append(fp_add(fmt, a, b))
        res = circuit_words(d, {"inputs": {"x": xs, "y": ys}})
        assert res["s"] == expected


class TestMacCircuit:
    @given(finite_floats, finite_floats, finite_floats)
    @settings(max_examples=15, deadline=None)
    def test_matches_word_level(self, acc, x, k):
        fmt = SMALL
        d = fp_mac_circuit(fmt, param_coefficient=True)
        wacc, wx, wk = fmt.encode(acc), fmt.encode(x), fmt.encode(k)
        res = circuit_words(
            d, {"inputs": {"sample": [wx], "acc": [wacc]}, "params": {"coeff": wk}}
        )
        assert res["result"][0] == fp_mac(fmt, wacc, wx, wk)

    def test_gate_count_scales_with_format(self):
        small = fp_mac_circuit(FPFormat(4, 6)).circuit.num_gates()
        larger = fp_mac_circuit(FPFormat(5, 10)).circuit.num_gates()
        assert larger > small > 0
