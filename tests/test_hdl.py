"""Unit and property tests for the word-level structural HDL builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.hdl import Design
from repro.netlist.simulate import simulate_words


def run_words(design, inputs, params=None):
    """Helper: simulate and return output buses as plain Python ints."""
    out = simulate_words(design.circuit, inputs, params)
    return {k: [int(x) for x in v] for k, v in out.items()}


class TestAdderSubtractor:
    def test_adder_small_exhaustive(self):
        d = Design("add4")
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        s, cout = d.adder(a, b)
        d.output_bus("s", s)
        d.output_bit("cout", cout)
        avals = [x for x in range(16) for _ in range(16)]
        bvals = [y for _ in range(16) for y in range(16)]
        res = run_words(d, {"a": avals, "b": bvals})
        for i, (x, y) in enumerate(zip(avals, bvals)):
            total = x + y
            assert res["s"][i] == total & 0xF
            assert res["cout"][i] == (total >> 4) & 1

    def test_subtractor_borrow(self):
        d = Design("sub4")
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        diff, borrow = d.subtractor(a, b)
        d.output_bus("diff", diff)
        d.output_bit("borrow", borrow)
        avals = list(range(16)) * 16
        bvals = [y for y in range(16) for _ in range(16)]
        res = run_words(d, {"a": avals, "b": bvals})
        for i, (x, y) in enumerate(zip(avals, bvals)):
            assert res["diff"][i] == (x - y) & 0xF
            assert res["borrow"][i] == (1 if x < y else 0)

    def test_mixed_width_operands(self):
        d = Design()
        a = d.input_bus("a", 6)
        b = d.input_bus("b", 3)
        s, _ = d.adder(a, b)
        d.output_bus("s", s)
        res = run_words(d, {"a": [40, 63], "b": [5, 7]})
        assert res["s"] == [45, (63 + 7) & 0x3F]


class TestMultiplier:
    def test_multiplier_exhaustive_4x4(self):
        d = Design("mul4")
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        p = d.multiplier(a, b)
        assert len(p) == 8
        d.output_bus("p", p)
        avals = [x for x in range(16) for _ in range(16)]
        bvals = [y for _ in range(16) for y in range(16)]
        res = run_words(d, {"a": avals, "b": bvals})
        for i, (x, y) in enumerate(zip(avals, bvals)):
            assert res["p"][i] == x * y

    @given(st.integers(0, 2**7 - 1), st.integers(0, 2**7 - 1))
    @settings(max_examples=30, deadline=None)
    def test_multiplier_random_7x7(self, x, y):
        d = Design()
        a = d.input_bus("a", 7)
        b = d.input_bus("b", 7)
        d.output_bus("p", d.multiplier(a, b))
        res = run_words(d, {"a": [x], "b": [y]})
        assert res["p"][0] == x * y


class TestComparators:
    def test_equals_const(self):
        d = Design()
        a = d.input_bus("a", 5)
        d.output_bit("hit", d.equals_const(a, 19))
        res = run_words(d, {"a": list(range(32))})
        assert res["hit"] == [1 if v == 19 else 0 for v in range(32)]

    def test_equals_and_less_than(self):
        d = Design()
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        d.output_bit("eq", d.equals(a, b))
        d.output_bit("lt", d.less_than(a, b))
        avals = [3, 7, 12, 12]
        bvals = [5, 7, 4, 12]
        res = run_words(d, {"a": avals, "b": bvals})
        assert res["eq"] == [0, 1, 0, 1]
        assert res["lt"] == [1, 0, 0, 0]


class TestShifters:
    def test_constant_shifts(self):
        d = Design()
        a = d.input_bus("a", 8)
        d.output_bus("l", d.shift_left_const(a, 3))
        d.output_bus("r", d.shift_right_const(a, 2))
        res = run_words(d, {"a": [0b10110101]})
        assert res["l"][0] == (0b10110101 << 3) & 0xFF
        assert res["r"][0] == 0b10110101 >> 2

    def test_barrel_shift_right(self):
        d = Design()
        a = d.input_bus("a", 8)
        amt = d.input_bus("amt", 3)
        d.output_bus("y", d.barrel_shift_right(a, amt))
        vals = [0xB5] * 8
        amts = list(range(8))
        res = run_words(d, {"a": vals, "amt": amts})
        assert res["y"] == [(0xB5 >> k) & 0xFF for k in range(8)]

    def test_barrel_shift_left(self):
        d = Design()
        a = d.input_bus("a", 8)
        amt = d.input_bus("amt", 3)
        d.output_bus("y", d.barrel_shift_left(a, amt))
        vals = [0x35] * 8
        amts = list(range(8))
        res = run_words(d, {"a": vals, "amt": amts})
        assert res["y"] == [(0x35 << k) & 0xFF for k in range(8)]


class TestLeadingZeroCount:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 0x80, 0x40, 0xFF, 0x01, 0x10])
    def test_lzc_8bit(self, value):
        d = Design()
        a = d.input_bus("a", 8)
        d.output_bus("lzc", d.leading_zero_count(a))
        res = run_words(d, {"a": [value]})
        expected = 8 if value == 0 else 8 - value.bit_length()
        assert res["lzc"][0] == expected


class TestMuxes:
    def test_mux_bus(self):
        d = Design()
        s = d.input_bit("s")
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        d.output_bus("y", d.mux_bus(s, a, b))
        res = run_words(d, {"s": [0, 1], "a": [3, 3], "b": [12, 12]})
        assert res["y"] == [3, 12]

    def test_mux_tree(self):
        d = Design()
        sels = d.input_bus("sel", 2)
        choices = [d.const_bus(v, 4) for v in (1, 5, 9, 14)]
        d.output_bus("y", d.mux_tree(sels, choices))
        res = run_words(d, {"sel": [0, 1, 2, 3]})
        assert res["y"] == [1, 5, 9, 14]

    def test_mux_tree_wrong_choice_count(self):
        d = Design()
        sels = d.input_bus("sel", 2)
        with pytest.raises(ValueError):
            d.mux_tree(sels, [d.const_bus(0, 2)] * 3)


class TestParamBuses:
    def test_param_bus_acts_as_constant_operand(self):
        d = Design()
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        p = d.multiplier(a, k)
        d.output_bus("p", p)
        res = run_words(d, {"a": [3, 5, 7]}, params={"k": 6})
        assert res["p"] == [18, 30, 42]

    def test_param_nodes_are_marked(self):
        d = Design()
        d.param_bus("k", 3)
        d.input_bus("a", 2)
        assert len(d.circuit.param_ids()) == 3
        assert len(d.circuit.input_ids()) == 2


class TestProperties:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_adder_matches_python(self, x, y):
        d = Design()
        a = d.input_bus("a", 8)
        b = d.input_bus("b", 8)
        s, cout = d.adder(a, b)
        d.output_bus("s", s)
        d.output_bit("cout", cout)
        res = run_words(d, {"a": [x], "b": [y]})
        assert res["s"][0] + (res["cout"][0] << 8) == x + y

    @given(st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_shift_consistency(self, value, amount):
        d = Design()
        a = d.input_bus("a", 8)
        amt = d.input_bus("amt", 3)
        d.output_bus("y", d.barrel_shift_right(a, amt))
        res = run_words(d, {"a": [value], "amt": [amount]})
        assert res["y"][0] == (value >> amount)
