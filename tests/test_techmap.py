"""Unit, integration and property tests for technology mapping (LUT map + TCONMAP)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.circuit import Circuit, Op
from repro.netlist.hdl import Design
from repro.netlist.simulate import simulate_words
from repro.synth.optimize import optimize
from repro.techmap import (
    MapperOptions,
    NodeKind,
    decompose_to_binary,
    map_conventional,
    map_parameterized,
    param_only_nodes,
    technology_map,
)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def param_mult_design(width_a=4, width_k=4):
    """a * k with the coefficient k as a parameter (the paper's MAC pattern)."""
    d = Design("pmul")
    a = d.input_bus("a", width_a)
    k = d.param_bus("k", width_k)
    d.output_bus("p", d.multiplier(a, k))
    return d


def words_match(circuit, network, input_words, param_words):
    """Check mapped network against gate-level simulation for given stimulus."""
    golden = simulate_words(circuit, input_words, param_words)
    mapped = network.evaluate_words(input_words, param_words)
    for bus in golden:
        g = [int(x) for x in golden[bus]]
        m = mapped.get(bus, [])
        if g != m:
            return False
    return True


# ---------------------------------------------------------------------------
# decomposition / param-only analysis
# ---------------------------------------------------------------------------

class TestDecompose:
    def test_wide_and_becomes_binary(self):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(7)]
        c.add_output("y", c.g_and(*ins))
        d = decompose_to_binary(c)
        assert all(len(f) <= 2 for f in d.fanins)
        out = simulate_words(d, {f"i{k}": [1] for k in range(7)})
        assert int(out["y"][0]) == 1
        out = simulate_words(d, {**{f"i{k}": [1] for k in range(6)}, "i6": [0]})
        assert int(out["y"][0]) == 0

    def test_wide_nor(self):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(5)]
        c.add_output("y", c.gate(Op.NOR, *ins))
        d = decompose_to_binary(c)
        out = simulate_words(d, {f"i{k}": [0] for k in range(5)})
        assert int(out["y"][0]) == 1

    def test_mux_left_alone(self):
        c = Circuit()
        s, a, b = c.add_input("s"), c.add_input("a"), c.add_input("b")
        c.add_output("y", c.g_mux(s, a, b))
        d = decompose_to_binary(c)
        assert Op.MUX in d.ops


class TestParamOnly:
    def test_param_only_detection(self):
        c = Circuit()
        a = c.add_input("a")
        p1, p2 = c.add_param("p1"), c.add_param("p2")
        pp = c.g_and(p1, p2)       # param-only
        mixed = c.g_or(pp, a)      # mixed
        c.add_output("y", mixed)
        po = param_only_nodes(c)
        assert p1 in po and p2 in po and pp in po
        assert mixed not in po and a not in po


# ---------------------------------------------------------------------------
# conventional mapping
# ---------------------------------------------------------------------------

class TestConventionalMapping:
    def test_small_adder_maps_and_matches(self):
        d = Design()
        a = d.input_bus("a", 4)
        b = d.input_bus("b", 4)
        s, co = d.adder(a, b)
        d.output_bus("s", s)
        d.output_bit("cout", co)
        opt, _ = optimize(d.circuit)
        net = map_conventional(opt)
        assert net.num_luts() > 0
        assert net.num_tluts() == 0
        assert net.num_tcons() == 0
        stim = {"a": [0, 3, 9, 15, 7], "b": [0, 12, 9, 15, 8]}
        assert words_match(net.source, net, stim, {})

    def test_lut_input_limit_respected(self):
        d = Design()
        a = d.input_bus("a", 6)
        b = d.input_bus("b", 6)
        d.output_bus("p", d.multiplier(a, b))
        net = map_conventional(optimize(d.circuit)[0])
        net.validate()
        for nid in net.lut_node_ids():
            assert len(net.nodes[nid].inputs) <= 4

    def test_depth_not_worse_than_gate_depth(self):
        d = Design()
        a = d.input_bus("a", 8)
        b = d.input_bus("b", 8)
        d.output_bus("s", d.adder(a, b)[0])
        opt, _ = optimize(d.circuit)
        net = map_conventional(opt)
        assert net.depth() <= opt.depth()

    def test_params_become_ordinary_inputs(self):
        d = param_mult_design()
        net = map_conventional(optimize(d.circuit)[0])
        assert net.num_tluts() == 0
        assert net.num_tcons() == 0
        assert len(net.param_node_ids()) > 0
        stim = {"a": [0, 1, 5, 15]}
        assert words_match(net.source, net, stim, {"k": 7})

    def test_output_driven_by_input_directly(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", a)
        net = map_conventional(c)
        assert net.num_luts() == 0
        assert net.evaluate({"a": 1}, {})["y"] == 1


# ---------------------------------------------------------------------------
# TCONMAP
# ---------------------------------------------------------------------------

class TestTconExtraction:
    def test_and_with_param_is_tcon(self):
        c = Circuit()
        a = c.add_input("a")
        k = c.add_param("k")
        c.add_output("y", c.g_and(a, k))
        net = map_parameterized(c)
        assert net.num_tcons() == 1
        assert net.num_luts() == 0
        # k=1 routes a through; k=0 drives constant 0
        assert net.evaluate({"a": 1}, {net.source.param_ids()[0]: 1})["y"] == 1
        assert net.evaluate({"a": 1}, {net.source.param_ids()[0]: 0})["y"] == 0

    def test_param_mux_is_tcon(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        s = c.add_param("sel")
        c.add_output("y", c.g_mux(s, a, b))
        net = map_parameterized(c)
        assert net.num_tcons() == 1
        assert net.num_luts() == 0
        pid = net.source.param_ids()[0]
        assert net.evaluate({"a": 1, "b": 0}, {pid: 0})["y"] == 1
        assert net.evaluate({"a": 1, "b": 0}, {pid: 1})["y"] == 0

    def test_xor_with_param_is_not_tcon(self):
        # XOR needs inversion capability, which routing switches lack.
        c = Circuit()
        a = c.add_input("a")
        k = c.add_param("k")
        c.add_output("y", c.g_xor(a, k))
        net = map_parameterized(c)
        assert net.num_tcons() == 0
        assert net.num_tluts() == 1

    def test_mux_tree_controlled_by_params_is_all_tcons(self):
        d = Design()
        sels = d.param_bus("sel", 2)
        buses = [d.input_bus(f"x{i}", 1) for i in range(4)]
        d.output_bus("y", d.mux_tree(sels, buses))
        net = map_parameterized(d.circuit)
        assert net.num_tcons() == 3  # two first-level muxes + one second-level
        assert net.num_luts() == 0

    def test_param_only_logic_needs_no_luts(self):
        c = Circuit()
        a = c.add_input("a")
        p1, p2 = c.add_param("p1"), c.add_param("p2")
        pp = c.g_and(p1, p2)
        c.add_output("y", c.g_and(a, pp))
        net = map_parameterized(c)
        # the AND(a, pp) is a TCON with pp as a derived tuning variable
        assert net.num_tcons() == 1
        assert net.num_luts() == 0

    def test_tcon_extraction_can_be_disabled(self):
        c = Circuit()
        a = c.add_input("a")
        k = c.add_param("k")
        c.add_output("y", c.g_and(a, k))
        net = map_parameterized(c, extract_tcons=False)
        assert net.num_tcons() == 0
        assert net.num_tluts() == 1


class TestTlutMapping:
    def test_param_multiplier_uses_tcons(self):
        # Every partial-product AND gate degenerates to a wire once the
        # coefficient bits are fixed, so the multiplier's parameter fan-in is
        # absorbed entirely by tunable connections.
        d = param_mult_design(4, 4)
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        stats = net.stats()
        assert stats.num_tcons > 0
        assert stats.num_luts > 0

    def test_param_adder_uses_tluts(self):
        # An adder with a parameterized operand goes through XOR gates, which
        # cannot be reduced to wires, so its parameter cone produces TLUTs.
        d = Design("padd")
        a = d.input_bus("a", 6)
        k = d.param_bus("k", 6)
        s, _ = d.adder(a, k)
        d.output_bus("s", s)
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        assert net.num_tluts() > 0
        # and it still matches the gate-level model
        assert words_match(net.source, net, {"a": [0, 13, 47, 63]}, {"k": 21})

    def test_parameterized_uses_fewer_luts_than_conventional(self):
        d = param_mult_design(6, 6)
        opt, _ = optimize(d.circuit)
        conv = map_conventional(opt)
        par = map_parameterized(opt)
        assert par.num_luts() < conv.num_luts()

    @pytest.mark.parametrize("kval", [0, 1, 5, 9, 15])
    def test_functional_equivalence_across_param_values(self, kval):
        d = param_mult_design(4, 4)
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        stim = {"a": list(range(16))}
        assert words_match(net.source, net, stim, {"k": kval})

    def test_conventional_and_parameterized_agree(self):
        d = param_mult_design(5, 3)
        opt, _ = optimize(d.circuit)
        conv = map_conventional(opt)
        par = map_parameterized(opt)
        stim = {"a": [0, 7, 19, 31]}
        for kval in (0, 3, 6):
            out_c = conv.evaluate_words(stim, {"k": kval})
            out_p = par.evaluate_words(stim, {"k": kval})
            assert out_c == out_p

    @given(st.integers(0, 255))
    @settings(max_examples=15, deadline=None)
    def test_specialization_matches_gate_level(self, kval):
        d = param_mult_design(4, 8)
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        stim = {"a": [3, 9, 14]}
        assert words_match(net.source, net, stim, {"k": kval})


class TestSpecializedNetwork:
    def test_tcon_routes_change_with_params(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        s = c.add_param("sel")
        c.add_output("y", c.g_mux(s, a, b))
        net = map_parameterized(c)
        pid = net.source.param_ids()[0]
        spec0 = net.specialize({pid: 0})
        spec1 = net.specialize({pid: 1})
        tcon_id = net.tcon_node_ids()[0]
        assert spec0.tcon_routes[tcon_id] != spec1.tcon_routes[tcon_id]
        assert spec0.tcon_routes[tcon_id][0] == "var"

    def test_tlut_configs_change_with_params(self):
        d = Design("padd")
        a = d.input_bus("a", 4)
        k = d.param_bus("k", 4)
        d.output_bus("s", d.adder(a, k)[0])
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        spec_a = net.specialize_words({"k": 3})
        spec_b = net.specialize_words({"k": 5})
        tluts = [nid for nid in net.lut_node_ids() if net.nodes[nid].kind == NodeKind.TLUT]
        assert any(spec_a.lut_configs[t].bits != spec_b.lut_configs[t].bits for t in tluts)

    def test_static_lut_configs_do_not_change(self):
        d = param_mult_design(4, 4)
        opt, _ = optimize(d.circuit)
        net = map_parameterized(opt)
        spec_a = net.specialize_words({"k": 1})
        spec_b = net.specialize_words({"k": 14})
        statics = [nid for nid in net.lut_node_ids() if net.nodes[nid].kind == NodeKind.LUT]
        for nid in statics:
            assert spec_a.lut_configs[nid].bits == spec_b.lut_configs[nid].bits


class TestMapperOptions:
    def test_k_controls_lut_size(self):
        d = Design()
        a = d.input_bus("a", 6)
        b = d.input_bus("b", 6)
        d.output_bus("s", d.adder(a, b)[0])
        opt, _ = optimize(d.circuit)
        net6 = technology_map(opt, MapperOptions(k=6))
        net4 = technology_map(opt, MapperOptions(k=4))
        assert net6.num_luts() <= net4.num_luts()
        for nid in net6.lut_node_ids():
            assert len(net6.nodes[nid].inputs) <= 6

    def test_validate_passes_on_both_flows(self):
        d = param_mult_design(5, 5)
        opt, _ = optimize(d.circuit)
        map_conventional(opt).validate()
        map_parameterized(opt).validate()
