"""Unit tests for the gate-level circuit representation."""

import pytest

from repro.netlist.circuit import Circuit, Op


def small_and_or():
    c = Circuit("small")
    a = c.add_input("a")
    b = c.add_input("b")
    d = c.add_input("d")
    ab = c.g_and(a, b)
    out = c.g_or(ab, d)
    c.add_output("y", out)
    return c, (a, b, d, ab, out)


class TestConstruction:
    def test_topological_ids(self):
        c, (a, b, d, ab, out) = small_and_or()
        assert a < ab < out
        c.validate()

    def test_input_and_param_kinds(self):
        c = Circuit()
        i = c.add_input("x")
        p = c.add_param("k")
        assert c.ops[i] == Op.INPUT
        assert c.ops[p] == Op.PARAM
        assert c.input_ids() == [i]
        assert c.param_ids() == [p]

    def test_const_nodes_are_cached(self):
        c = Circuit()
        assert c.const(0) == c.const(0)
        assert c.const(1) == c.const(1)
        assert c.const(0) != c.const(1)

    def test_gate_arity_checks(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.gate(Op.NOT, a, a)
        with pytest.raises(ValueError):
            c.gate(Op.AND, a)
        with pytest.raises(ValueError):
            c.gate(Op.MUX, a, a)

    def test_unknown_gate_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.gate("nandnor", a, a)

    def test_missing_fanin_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.gate(Op.AND, a, 42)

    def test_duplicate_output_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", a)
        with pytest.raises(ValueError):
            c.add_output("y", a)

    def test_strash_merges_identical_gates(self):
        c = Circuit(strash=True)
        a = c.add_input("a")
        b = c.add_input("b")
        g1 = c.g_and(a, b)
        g2 = c.g_and(b, a)  # commutative: same node
        assert g1 == g2
        g3 = c.g_or(a, b)
        assert g3 != g1

    def test_strash_respects_noncommutative_order(self):
        c = Circuit(strash=True)
        a = c.add_input("a")
        b = c.add_input("b")
        s = c.add_input("s")
        m1 = c.g_mux(s, a, b)
        m2 = c.g_mux(s, b, a)
        assert m1 != m2


class TestQueries:
    def test_stats(self):
        c, _ = small_and_or()
        st = c.stats()
        assert st.num_inputs == 3
        assert st.num_gates == 2
        assert st.num_outputs == 1
        assert st.depth == 2

    def test_depth_of_leaf_only_circuit(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y", a)
        assert c.depth() == 0

    def test_fanouts(self):
        c, (a, b, d, ab, out) = small_and_or()
        fo = c.fanouts()
        assert fo[a] == [ab]
        assert fo[ab] == [out]
        assert fo[out] == []

    def test_levels(self):
        c, (a, b, d, ab, out) = small_and_or()
        lv = c.levels()
        assert lv[a] == 0
        assert lv[ab] == 1
        assert lv[out] == 2


class TestTransforms:
    def test_extract_cone(self):
        c, (a, b, d, ab, out) = small_and_or()
        cone, remap = c.extract_cone([ab])
        assert len(cone) == 3  # a, b, and the AND gate
        assert cone.num_gates() == 1
        assert remap[ab] in cone.outputs.values()
        cone.validate()

    def test_clone_is_independent(self):
        c, _ = small_and_or()
        c2 = c.clone()
        c2.add_input("extra")
        assert len(c2) == len(c) + 1

    def test_validate_catches_cycle_violation(self):
        c, _ = small_and_or()
        # Force a forward reference, which breaks the topological invariant.
        c.fanins[0] = (len(c.ops) - 1,)
        c.ops[0] = Op.NOT
        with pytest.raises(ValueError):
            c.validate()

    def test_transitive_fanin(self):
        c, (a, b, d, ab, out) = small_and_or()
        cone = c.transitive_fanin([out])
        assert set(cone) == {a, b, d, ab, out}
        assert c.transitive_fanin([ab]) == [a, b, ab]
