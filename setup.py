"""Setup shim.

The canonical metadata lives in pyproject.toml (name, version, the src/
package layout and dependencies).  This file exists so the package can
still be installed by legacy tooling (``python setup.py develop``) and in
offline environments via ``pip install -e . --no-build-isolation``, where
pip cannot fetch the isolated build backend.
"""

from setuptools import setup

setup()
