"""Setup shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package can be installed in environments without the ``wheel`` package or
network access (``python setup.py develop`` / legacy editable installs).
"""
from setuptools import setup

setup()
