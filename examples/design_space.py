#!/usr/bin/env python3
"""Design-space exploration: how the TCON savings scale with the PE's precision.

Sweeps the FloPoCo datapath precision of the Processing Element, maps each
variant with the conventional flow, the semi-parameterized flow (TLUTs only,
prior work [2]) and the fully parameterized flow (this paper), and prints the
LUT/TCON counts plus the reconfiguration cost of each variant.

Run:  python examples/design_space.py
"""

from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.core.reconfiguration import HWICAP, ReconfigurationCostModel
from repro.flopoco.format import FPFormat
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized


def main() -> None:
    formats = [FPFormat(4, 6), FPFormat(5, 10), FPFormat(6, 14), FPFormat(6, 18)]
    model = ReconfigurationCostModel(HWICAP)

    print(f"{'format':<8}{'conv LUTs':>10}{'semi LUTs':>10}{'full LUTs':>10}"
          f"{'TLUTs':>7}{'TCONs':>7}{'LUT save':>10}{'reconf ms':>11}")
    for fmt in formats:
        spec = ProcessingElementSpec(fmt=fmt)
        circuit = build_pe_design(spec).circuit
        optimized, _ = optimize(circuit)

        conventional = map_conventional(optimized)
        semi = map_parameterized(optimized, extract_tcons=False)
        full = map_parameterized(optimized)

        saving = 1 - full.num_luts() / conventional.num_luts()
        reconf = model.estimate_time_ms(full.num_tluts(), full.num_tcons())
        print(f"{fmt.we}/{fmt.wf:<6}{conventional.num_luts():>10}{semi.num_luts():>10}"
              f"{full.num_luts():>10}{full.num_tluts():>7}{full.num_tcons():>7}"
              f"{saving:>10.1%}{reconf:>11.1f}")

    print("\nThe fully parameterized mapping (TLUTs + TCONs) consistently needs the")
    print("fewest LUTs; the gap to the conventional flow grows with the datapath")
    print("precision because the intra-connect widens with the word size.")


if __name__ == "__main__":
    main()
