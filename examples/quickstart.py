#!/usr/bin/env python3
"""Quickstart: parameterize a MAC Processing Element and compare both flows.

This walks the core loop of the paper in a couple of minutes:

1. build the PE (FloPoCo MAC datapath + settings-driven intra-connect) with
   the filter coefficient annotated as a ``--PARAM`` input,
2. run the conventional flow (everything in LUTs, settings in flip-flops),
3. run the fully parameterized flow (TCONMAP: TLUTs + TCONs),
4. specialize the parameterized PE for a concrete coefficient with the SCG
   and check it computes the same MAC result,
5. print a small Table-I-style comparison.

Run:  python examples/quickstart.py
"""

from repro.core.flows import compare_pe_flows
from repro.core.pe import PEOp, ProcessingElementSpec
from repro.flopoco.arithmetic import fp_mac
from repro.flopoco.format import FPFormat


def main() -> None:
    # A reduced FloPoCo format keeps the run short; the paper uses we=6, wf=26.
    fmt = FPFormat(we=5, wf=10)
    spec = ProcessingElementSpec(fmt=fmt, num_inputs=2, counter_width=8)
    print(f"Processing Element: FloPoCo we={fmt.we} wf={fmt.wf}, "
          f"{spec.settings_bits} settings bits\n")

    # --- run both flows (mapping only; add do_par=True for wirelength numbers) ---
    cmp = compare_pe_flows(spec=spec, do_par=False)
    table = cmp.table()
    print(f"{'flow':<22}{'LUTs':>8}{'TLUTs':>8}{'TCONs':>8}{'depth':>8}")
    for name, row in table.items():
        print(f"{name:<22}{row['luts']:>8}{row['tluts']:>8}{row['tcons']:>8}"
              f"{row['logic_depth']:>8}")
    print(f"\nLUT reduction: {cmp.lut_reduction():.1%}   "
          f"depth reduction: {cmp.depth_reduction():.1%}\n")

    # --- specialize the parameterized PE for a coefficient and verify it ---------
    network = cmp.parameterized.network
    coeff_value = -0.4375
    sample_value, acc_value = 2.5, 0.75
    params = {
        "coeff": fmt.encode(coeff_value),
        "sel_a": 0, "sel_b": 1, "op": PEOp.MAC, "count_limit": 1,
    }
    stim = {
        "in0": [fmt.encode(sample_value)],
        "in1": [fmt.encode(acc_value)],
        "count": [0],
    }
    out = network.evaluate_words(stim, params)
    got = fmt.decode(out["out"][0])
    expected_word = fp_mac(fmt, fmt.encode(acc_value), fmt.encode(sample_value),
                           fmt.encode(coeff_value))
    print(f"specialized PE: {acc_value} + {sample_value} * {coeff_value} = {got:.6f} "
          f"(bit-exact with the FloPoCo model: {out['out'][0] == expected_word})")


if __name__ == "__main__":
    main()
