#!/usr/bin/env python3
"""Retinal vessel segmentation on the VCGRA (the paper's HPC application).

Generates a synthetic fundus image, runs the full Figure-5 pipeline with the
NumPy reference backend, re-runs the denoise filter on the VCGRA functional
simulator, and reports segmentation quality plus the reconfiguration cost of
switching filter coefficients.

Run:  python examples/retina_segmentation.py
"""

import numpy as np

from repro.apps.filters import convolve2d, gaussian_kernel
from repro.apps.images import generate_fundus
from repro.apps.mapping import VCGRAFilterEngine
from repro.apps.retina import RetinalVesselSegmentation, SegmentationConfig
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import ProcessingElementSpec
from repro.core.reconfiguration import HWICAP, MICAP, ReconfigurationCostModel
from repro.flopoco.format import FPFormat


def main() -> None:
    # --- 1. synthetic fundus image (stands in for DRIVE-style photographs) -----
    fundus = generate_fundus(size=96, seed=42, vessel_depth=0.4)
    print(f"synthetic fundus: {fundus.shape[0]}x{fundus.shape[1]}, "
          f"{int(fundus.vessel_mask.sum())} ground-truth vessel pixels")

    # --- 2. full pipeline on the reference backend ------------------------------
    pipeline = RetinalVesselSegmentation(SegmentationConfig(
        denoise_sizes=(5, 9), matched_size=16, orientations=7, texture_size=9))
    result = pipeline.run(fundus)
    metrics = result.metrics(fundus.vessel_mask, fundus.fov_mask)
    print("\npipeline stages (reference backend):")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:<16}{seconds * 1e3:8.1f} ms")
    print("segmentation quality: "
          f"sensitivity={metrics['sensitivity']:.3f} "
          f"specificity={metrics['specificity']:.3f} dice={metrics['dice']:.3f}")

    # --- 3. run the denoise filter on the VCGRA overlay -------------------------
    arch = VCGRAArchitecture(rows=5, cols=5,
                             pe_spec=ProcessingElementSpec(fmt=FPFormat(6, 18)))
    kernel = gaussian_kernel(5)
    engine = VCGRAFilterEngine(kernel, arch=arch)
    crop = result.preprocessed[32:64, 32:64]
    overlay = engine.apply(crop)
    reference = convolve2d(crop, kernel)
    print(f"\nVCGRA-executed 5x5 denoise filter on a 32x32 crop: "
          f"max |error| vs reference = {np.max(np.abs(overlay - reference)):.2e}")
    print(f"overlay configurations needed for this kernel: "
          f"{engine.report.num_configurations} "
          f"({engine.report.pes_per_configuration} PEs each)")

    # --- 4. reconfiguration cost of changing coefficients -----------------------
    for interface in (HWICAP, MICAP):
        model = ReconfigurationCostModel(interface)
        per_pe = model.estimate_time_ms(526, 568)  # the paper's PE footprint
        amortized = model.amortized_overhead(per_pe, items_per_configuration=1000,
                                             time_per_item_ms=5.0)
        print(f"reconfiguration per PE via {interface.name}: {per_pe:6.1f} ms "
              f"({amortized['per_item_overhead_ms']:.3f} ms per image over 1000 images)")


if __name__ == "__main__":
    main()
