#!/usr/bin/env python3
"""Map a filter dataflow onto the 4x4 VCGRA grid and simulate it.

Demonstrates the high-level VCGRA tool flow of Figure 2: an application is
described as a dataflow graph of MAC operations, synthesized, placed onto the
virtual PEs, routed through the virtual switch blocks, and the resulting
settings are executed on the cycle-level simulator.  The script also prints
the Table II resource accounting for the grid and the compile-time advantage
over the gate-level flow.

Run:  python examples/grid_mapping.py
"""

import time

import numpy as np

from repro.core.accounting import grid_resource_table
from repro.core.flows import run_pe_flow
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import PEOp, ProcessingElementSpec, build_pe_design
from repro.core.toolflow import ApplicationGraph, PEOperation, run_vcgra_toolflow
from repro.flopoco.format import FPFormat
from repro.vsim.simulator import VCGRASimulator


def build_dot_product_app(coefficients):
    """A chain of MACs computing sum_i coeff[i] * x_i in one dataflow step."""
    app = ApplicationGraph(
        "dot_product",
        external_inputs=[f"x{i}" for i in range(len(coefficients))] + ["zero"],
    )
    prev = "zero"
    for i, c in enumerate(coefficients):
        app.add_operation(PEOperation(
            name=f"mac{i}", op=PEOp.MAC, coefficient=float(c), count_limit=1,
            sample_input=f"x{i}", acc_input=prev))
        prev = f"mac{i}"
    app.add_output("y", prev)
    return app


def main() -> None:
    fmt = FPFormat(we=6, wf=18)
    arch = VCGRAArchitecture(rows=4, cols=4, pe_spec=ProcessingElementSpec(fmt=fmt))
    print(f"VCGRA overlay: {arch.describe()}\n")

    # --- Table II accounting -----------------------------------------------------
    table = grid_resource_table(arch)
    print("Table II (grid resources realized on FPGA functional resources):")
    for name, row in table.items():
        print(f"  {row.implementation:<22} inter-network={row.inter_network:<4} "
              f"settings registers={row.settings_registers}")
    print()

    # --- high-level tool flow: map a 4-tap dot product ----------------------------
    coefficients = [0.25, -0.5, 1.0, 0.125]
    app = build_dot_product_app(coefficients)
    report = run_vcgra_toolflow(app, arch)
    print(f"high-level VCGRA flow: {report.pes_used} PEs used, "
          f"settings generated in {report.total_seconds * 1e3:.2f} ms")
    for name, pos in sorted(report.placement.items()):
        print(f"  {name:<6} -> PE{pos}")

    # --- simulate the configured overlay -------------------------------------------
    sim = VCGRASimulator(arch, report.settings)
    rng = np.random.default_rng(0)
    samples = rng.normal(size=(3, len(coefficients)))
    streams = {f"x{i}": samples[:, i].tolist() for i in range(len(coefficients))}
    streams["zero"] = [0.0] * 3
    trace = sim.run(streams)
    expected = samples @ np.array(coefficients)
    print("\nsimulation (per-step dot products):")
    for step, (got, want) in enumerate(zip(trace.outputs["y"], expected)):
        print(f"  step {step}: overlay={got:+.6f}  numpy={want:+.6f}")

    # --- compile-time comparison against the gate-level flow --------------------------
    t0 = time.perf_counter()
    run_pe_flow(build_pe_design(ProcessingElementSpec(fmt=FPFormat(5, 10))).circuit,
                parameterized=True, do_par=False)
    gate_seconds = time.perf_counter() - t0
    print(f"\ncompile-time comparison: overlay settings in "
          f"{report.total_seconds * 1e3:.2f} ms vs gate-level mapping of one PE in "
          f"{gate_seconds:.2f} s "
          f"(~{gate_seconds / max(report.total_seconds, 1e-9):.0f}x slower)")


if __name__ == "__main__":
    main()
