"""CI daemon smoke: journal replay + worker crash, with bit identity.

Run by the chaos CI job as::

    REPRO_FAULT_PLAN='service.exec=crash:1:@worker' \\
        PYTHONPATH=src python benchmarks/smoke_service.py [journal-dir]

The script exercises the service daemon's two recovery paths end to end,
honouring the *ambient* ``REPRO_FAULT_PLAN`` (unlike ``tests/test_service.py``,
whose autouse fixture suppresses it so every test installs an exact plan):

1. **Daemon death mid-flight.**  Life 1 accepts jobs into the journal and
   exits without ever dispatching them -- exactly the state a daemon killed
   between acceptance and completion leaves behind.  Life 2 must replay the
   ``accepted`` entries and finish them.
2. **Worker death mid-job.**  Under the chaos plan the first pool worker is
   killed inside ``execute_job`` (the parent sees ``BrokenProcessPool``);
   the supervisor rebuilds the pool and the job's remaining attempts finish
   in the parent.

Both recoveries must land on the service's one non-negotiable: every
completed job's digest equals a direct in-process ``execute_job`` run.
Exit code 0 == all assertions held.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile

from repro.service import JobSpec, ServiceConfig, ServiceDaemon, execute_job
from repro.util import active_plan, fault_plan

#: Tiny PE: the whole flow runs in ~1 s per job, which keeps the smoke leg
#: cheap while still crossing every layer (synth -> map -> PAR -> frames).
_TINY = {
    "we": 3,
    "wf": 4,
    "num_inputs": 2,
    "counter_width": 4,
    "channel_width": 12,
    "placement_effort": 0.3,
    "router_iterations": 20,
    "seed": 1,
}
JOBS = [_TINY, {**_TINY, "seed": 2}]

WAIT_S = 600.0


def _config(journal_dir: str) -> ServiceConfig:
    return ServiceConfig(
        workers=2,
        queue_depth=8,
        deadline_s=120.0,
        retry_attempts=3,
        retry_backoff_s=0.05,
        journal_dir=journal_dir,
    )


async def _life1_accept_and_die(config: ServiceConfig) -> None:
    """Accept jobs into the journal, then vanish without running them."""
    daemon = ServiceDaemon(config)
    # No start(): nothing drains the queue, so every job is journaled
    # ``accepted`` and abandoned -- a deterministic stand-in for a daemon
    # killed mid-flight.
    for payload in JOBS:
        response = await daemon.submit(payload)
        assert response["ok"] and response["state"] == "accepted", response


async def _life2_replay_and_verify(
    config: ServiceConfig, baseline: dict
) -> dict:
    """Replay the journal (under the ambient chaos plan) and check bits."""
    daemon = ServiceDaemon(config)
    replayed = await daemon.start()
    assert replayed["pending"] == len(JOBS), replayed
    try:
        for key in baseline:
            finished = await daemon.wait(key, timeout=WAIT_S)
            assert finished, f"job {key} did not finish within {WAIT_S}s"
        for key, digest in baseline.items():
            response = daemon.result(key)
            assert response["ok"], response
            got = response["result"]["digest"]
            assert got == digest, (
                f"bit-identity violated for {key}: {got} != {digest}"
            )
        job_events = [
            event
            for key in baseline
            for event in daemon.status(key).get("events", [])
        ]
        return {"stats": daemon.stats(), "job_events": job_events}
    finally:
        await daemon.stop()


def main() -> int:
    journal_dir = (
        sys.argv[1] if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="repro-service-smoke-")
    )
    config = _config(journal_dir)

    # Fault-free baseline digests, direct in-process runs.
    with fault_plan(None):
        baseline = {
            JobSpec.from_payload(p).job_key(): execute_job(p)["digest"]
            for p in JOBS
        }

    asyncio.run(_life1_accept_and_die(config))
    outcome = asyncio.run(_life2_replay_and_verify(config, baseline))

    stats = outcome["stats"]
    restarts = stats["pool"]["restarts"]
    crash_kinds = sorted(
        {e["event"] for e in outcome["job_events"]}
    )
    chaos = active_plan() is not None
    if chaos:
        # The ambient plan kills worker(s) mid-job; the recovery must be
        # *visible*, not just survived.
        assert restarts >= 1, stats["pool"]
        assert any(
            e["event"] in ("pool-failure", "worker-stuck", "retry")
            for e in outcome["job_events"]
        ), outcome["job_events"]

    print(
        "service smoke OK: "
        f"{len(baseline)} jobs replayed + bit-identical, "
        f"chaos={'on' if chaos else 'off'}, "
        f"worker restarts={restarts}, recovery events={crash_kinds}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
