"""E4 -- compilation-time comparison: VCGRA tool flow vs gate-level FPGA flow.

Section II-A's motivation for the overlay: because the basic programmable
element of the VCGRA flow is a whole PE, generating new settings for a
changed application takes orders of magnitude less time than pushing the
design through the full gate-level flow (synthesis, technology mapping,
place and route).  This benchmark maps the same filter application both ways
and reports the speed-up.
"""

from __future__ import annotations

import time

import pytest

from _bench_config import BENCH_FP_FORMAT, write_report
from repro.apps.filters import gaussian_kernel
from repro.apps.mapping import kernel_to_applications
from repro.core.flows import run_pe_flow
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.core.toolflow import run_vcgra_toolflow


@pytest.fixture(scope="module")
def grid() -> VCGRAArchitecture:
    return VCGRAArchitecture(rows=4, cols=4,
                             pe_spec=ProcessingElementSpec(fmt=BENCH_FP_FORMAT))


@pytest.fixture(scope="module")
def gate_level_seconds(grid):
    """Time of the gate-level flow for ONE PE of the overlay (mapping + PaR)."""
    circuit = build_pe_design(grid.pe_spec).circuit
    t0 = time.perf_counter()
    run_pe_flow(
        circuit,
        parameterized=True,
        do_par=True,
        channel_width=12,
        placement_effort=0.3,
        router_iterations=12,
        seed=0,
    )
    return time.perf_counter() - t0


def test_compile_time_comparison(benchmark, grid, gate_level_seconds):
    """Map a 3x3 Gaussian filter onto the overlay and compare compile times."""
    kernel = gaussian_kernel(3)
    applications = kernel_to_applications(kernel.ravel().tolist(), grid)

    def vcgra_compile():
        return [run_vcgra_toolflow(app, grid) for app, _ in applications]

    reports = benchmark(vcgra_compile)
    vcgra_seconds = sum(r.total_seconds for r in reports)
    # The gate-level flow has to process every PE the application occupies.
    pes_used = sum(r.pes_used for r in reports)
    gate_seconds_total = gate_level_seconds * pes_used
    speedup = gate_seconds_total / max(vcgra_seconds, 1e-9)

    lines = [
        "E4 -- Compilation time: VCGRA tool flow vs gate-level FPGA flow",
        "",
        f"application: 3x3 Gaussian denoise kernel ({pes_used} PEs used)",
        f"VCGRA tool flow (settings generation): {vcgra_seconds * 1e3:9.2f} ms",
        f"gate-level flow, one PE (map + PaR):   {gate_level_seconds * 1e3:9.2f} ms",
        f"gate-level flow, {pes_used} PEs (scaled):        {gate_seconds_total * 1e3:9.2f} ms",
        f"speed-up of the overlay flow:          {speedup:9.0f} x",
        "",
        "paper claim: settings generation is orders of magnitude faster than the",
        "standard FPGA compilation of the same design (Section II-A).",
    ]
    write_report("compile_time", lines)

    assert speedup > 100  # "orders of magnitude"
    assert all(r.pes_used > 0 for r in reports)


def test_benchmark_settings_regeneration(benchmark, grid):
    """Time settings regeneration when only coefficients change (re-specification)."""
    kernel = gaussian_kernel(3)
    app, _ = kernel_to_applications(kernel.ravel().tolist(), grid)[0]

    def regenerate():
        return run_vcgra_toolflow(app, grid)

    report = benchmark(regenerate)
    assert report.settings.num_enabled() == kernel.size
