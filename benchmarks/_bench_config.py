"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md, per-experiment index E1..E7) and prints a paper-vs-measured
report.  Heavy computations (full CAD flows) run once in module-scoped
fixtures; the ``benchmark`` fixture then times a representative kernel of the
experiment so ``pytest-benchmark`` output stays meaningful.

Environment knobs
-----------------
``REPRO_FULL=1``
    Use the paper's full FloPoCo format (6-bit exponent, 26-bit mantissa) and
    channel width 10 for the Table I experiment.  The default is a reduced
    format (5/10) at channel width 12 so the whole harness completes in a few
    minutes; the qualitative shape (who wins, by how much) is preserved.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.flopoco.format import FPFormat, PAPER_FORMAT

RESULTS_DIR = Path(__file__).parent / "results"

FULL_MODE = os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")

#: benchmark-scale knobs, switched by REPRO_FULL
if FULL_MODE:  # pragma: no cover - opt-in heavy configuration
    BENCH_FP_FORMAT = PAPER_FORMAT
    BENCH_CHANNEL_WIDTH = 10
    BENCH_PLACEMENT_EFFORT = 1.0
    BENCH_ROUTER_ITERATIONS = 40
    BENCH_FIND_MIN_CW = True
    BENCH_IMAGE_SIZE = 96
else:
    BENCH_FP_FORMAT = FPFormat(we=5, wf=10)
    BENCH_CHANNEL_WIDTH = 12
    BENCH_PLACEMENT_EFFORT = 0.5
    BENCH_ROUTER_ITERATIONS = 20
    BENCH_FIND_MIN_CW = False
    BENCH_IMAGE_SIZE = 56


def write_report(name: str, lines) -> Path:
    """Write a benchmark report to benchmarks/results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print("\n" + text)
    return path

