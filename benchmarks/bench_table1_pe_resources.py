"""E1 -- Table I: resource utilization and PaR results of one Processing Element.

Paper values (FloPoCo 6/26 MAC PE on the VPR 4-LUT architecture):

    ============== ===========  =====  ===========  ======  ===
    VCGRA          LUTs(TLUTs)  TCONs  Logic depth  WL      CW
    ============== ===========  =====  ===========  ======  ===
    Conventional   2522 (0)     0      36           27242   10
    Fully param.   1802 (526)   568    33           16824   10
    ============== ===========  =====  ===========  ======  ===

Shape to reproduce: ~30% fewer LUTs, ~31% less wirelength, slightly lower
logic depth, no channel-width penalty.  The default benchmark configuration
uses a reduced FP format (see conftest) so absolute numbers are smaller; set
``REPRO_FULL=1`` for the paper's format.
"""

from __future__ import annotations

import pytest

from _bench_config import (
    BENCH_CHANNEL_WIDTH,
    BENCH_FIND_MIN_CW,
    BENCH_FP_FORMAT,
    BENCH_PLACEMENT_EFFORT,
    BENCH_ROUTER_ITERATIONS,
    write_report,
)
from repro.core.flows import FlowComparison, compare_pe_flows
from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.synth.optimize import optimize
from repro.techmap import map_parameterized

PAPER_TABLE1 = {
    "conventional": {"luts": 2522, "tluts": 0, "tcons": 0, "logic_depth": 36,
                     "wirelength": 27242, "channel_width": 10},
    "fully_parameterized": {"luts": 1802, "tluts": 526, "tcons": 568, "logic_depth": 33,
                            "wirelength": 16824, "channel_width": 10},
}


@pytest.fixture(scope="module")
def pe_spec() -> ProcessingElementSpec:
    return ProcessingElementSpec(fmt=BENCH_FP_FORMAT)


@pytest.fixture(scope="module")
def comparison(pe_spec) -> FlowComparison:
    """Both complete flows (synthesis -> mapping -> PaR) on the same PE."""
    return compare_pe_flows(
        spec=pe_spec,
        do_par=True,
        channel_width=BENCH_CHANNEL_WIDTH,
        placement_effort=BENCH_PLACEMENT_EFFORT,
        router_iterations=BENCH_ROUTER_ITERATIONS,
        find_min_channel_width=BENCH_FIND_MIN_CW,
        seed=1,
    )


def _format_row(label: str, row: dict) -> str:
    return (
        f"{label:<22} luts={row.get('luts', '-'):>6}  tluts={row.get('tluts', '-'):>5}  "
        f"tcons={row.get('tcons', '-'):>5}  depth={row.get('logic_depth', '-'):>4}  "
        f"wl={row.get('wirelength', '-'):>7}  cw={row.get('channel_width', '-'):>3}"
    )


def test_table1_reproduction(benchmark, comparison, pe_spec):
    """Regenerate Table I and check the qualitative claims of the paper."""
    table = comparison.table()
    # The timed kernel: assembling the Table I rows from both flow results.
    summary = benchmark(comparison.summary)

    lines = [
        "E1 / Table I -- Resource utilization and PaR results of a PE",
        f"PE datapath: FloPoCo we={pe_spec.fmt.we}, wf={pe_spec.fmt.wf} "
        f"(paper uses 6/26; set REPRO_FULL=1 to match)",
        "",
        "paper:",
        _format_row("  Conventional", PAPER_TABLE1["conventional"]),
        _format_row("  Fully parameterized", PAPER_TABLE1["fully_parameterized"]),
        "measured:",
        _format_row("  Conventional", table["conventional"]),
        _format_row("  Fully parameterized", table["fully_parameterized"]),
        "",
        f"LUT reduction:          measured {summary['lut_reduction']:6.1%}   paper 28.6%",
        f"logic depth reduction:  measured {summary['depth_reduction']:6.1%}   paper 8.3%",
        f"intra-net LUT overhead: measured {summary['intra_network_lut_overhead']:6.1%}   paper ~31%",
    ]
    if "wirelength_reduction" in summary:
        lines.append(
            f"wirelength reduction:   measured {summary['wirelength_reduction']:6.1%}   paper 38.2%"
        )
    write_report("table1_pe_resources", lines)

    conv = table["conventional"]
    par = table["fully_parameterized"]
    # The paper's qualitative claims:
    assert par["luts"] < conv["luts"]                       # fewer LUTs
    assert par["tcons"] > 0 and conv["tcons"] == 0          # TCONs only in the new flow
    assert par["logic_depth"] <= conv["logic_depth"]        # no depth penalty
    assert summary["lut_reduction"] >= 0.15                 # substantial reduction
    if "wirelength_reduction" in summary:
        assert summary["wirelength_reduction"] > 0.0        # less wire
    assert conv["routed"] and par["routed"]


def test_benchmark_tconmap_mapping(benchmark, pe_spec):
    """Time the TCONMAP mapping step of the fully parameterized flow."""
    circuit = build_pe_design(pe_spec).circuit
    optimized, _ = optimize(circuit)
    network = benchmark(map_parameterized, optimized)
    assert network.num_tcons() > 0
