"""E6 -- structural content of Figures 1 and 4.

Figure 1 shows the VCGRA grid fragment (PEs, VSBs and their settings
registers); Figure 4 shows the fully parameterized PE (BLEs of TLUTs,
intra-connect of TCONs, settings register).  Neither carries measured data,
so this experiment regenerates their quantitative content: the structural
statistics of the grid and of a mapped PE as a function of the architecture
parameters.
"""

from __future__ import annotations


from _bench_config import BENCH_FP_FORMAT, write_report
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import ProcessingElementSpec, build_pe_design, pe_port_summary
from repro.synth.optimize import optimize
from repro.techmap import map_parameterized


def test_grid_structure_series(benchmark):
    """Figure 1 content: grid component counts as a function of grid size."""

    def sweep():
        rows = {}
        for n in (2, 3, 4, 6, 8):
            arch = VCGRAArchitecture(rows=n, cols=n)
            rows[n] = {
                "pes": arch.num_pes,
                "vsbs": arch.num_vsbs,
                "vcbs": arch.num_virtual_connection_blocks,
                "settings_registers": arch.num_settings_registers,
            }
        return rows

    series = benchmark(sweep)

    lines = [
        "E6 / Figure 1 -- VCGRA grid structure vs grid size",
        "",
        f"{'grid':>6}{'PEs':>6}{'VSBs':>6}{'VCBs':>6}{'settings regs':>15}",
    ]
    for n, row in series.items():
        lines.append(
            f"{n}x{n:<4}{row['pes']:>6}{row['vsbs']:>6}{row['vcbs']:>6}"
            f"{row['settings_registers']:>15}"
        )
    write_report("fig1_grid_structure", lines)

    assert series[4] == {"pes": 16, "vsbs": 9, "vcbs": 32, "settings_registers": 25}


def test_pe_structure(benchmark):
    """Figure 4 content: the fully parameterized PE's internal composition."""
    spec = ProcessingElementSpec(fmt=BENCH_FP_FORMAT)

    def build_and_map():
        circuit = build_pe_design(spec).circuit
        optimized, _ = optimize(circuit)
        return map_parameterized(optimized)

    network = benchmark(build_and_map)
    ports = pe_port_summary(spec)
    stats = network.stats()

    lines = [
        "E6 / Figure 4 -- Fully parameterized PE structure",
        "",
        f"floating-point format: we={spec.fmt.we}, wf={spec.fmt.wf} "
        f"({spec.fmt.width}-bit words)",
        f"settings register: {spec.settings_bits} bits "
        f"({spec.num_settings_registers} x 32-bit registers)",
        f"ports: {', '.join(f'{k}[{v}]' for k, v in ports.items())}",
        "",
        "mapped composition (BLEs and intra-connect of Figure 4):",
        f"  static LUTs (Template Configuration): {stats.num_static_luts}",
        f"  TLUTs (tunable BLEs):                 {stats.num_tluts}",
        f"  TCONs (tunable intra-connections):    {stats.num_tcons}",
        f"  LUT levels on the critical path:      {stats.depth}",
    ]
    write_report("fig4_pe_structure", lines)

    assert stats.num_tcons > 0
    assert stats.num_tluts > 0
    assert spec.settings_bits <= spec.num_settings_registers * 32
