"""E5 -- the retinal vessel segmentation application (Figure 5).

Figure 5 of the paper is the processing pipeline: preprocessing in software,
then Gaussian denoise (5x5/9x9), seven 16x16 steerable matched filters and a
texture filter in hardware, followed by thresholding.  The paper reports no
quality numbers, so this experiment regenerates the pipeline behaviour:

* per-stage runtimes of the reference (NumPy) implementation,
* segmentation quality against the synthetic ground truth, and
* a cross-check that the VCGRA-executed filters produce the same responses
  as the reference within the FloPoCo format's precision.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_config import BENCH_IMAGE_SIZE, write_report
from repro.apps.filters import convolve2d, gaussian_kernel
from repro.apps.images import generate_fundus
from repro.apps.mapping import VCGRAFilterEngine
from repro.apps.retina import RetinalVesselSegmentation, SegmentationConfig
from repro.core.grid import VCGRAArchitecture
from repro.core.pe import ProcessingElementSpec
from repro.flopoco.format import FPFormat


@pytest.fixture(scope="module")
def fundus():
    return generate_fundus(size=BENCH_IMAGE_SIZE, seed=11, vessel_depth=0.4)


@pytest.fixture(scope="module")
def reference_result(fundus):
    pipeline = RetinalVesselSegmentation(SegmentationConfig(
        denoise_sizes=(5, 9), matched_size=16, orientations=7, texture_size=9))
    return pipeline.run(fundus)


def test_pipeline_quality_and_stages(benchmark, fundus, reference_result):
    """Report per-stage runtimes and segmentation quality of the full pipeline."""
    result = reference_result
    metrics = benchmark(result.metrics, fundus.vessel_mask, fundus.fov_mask)

    lines = [
        "E5 / Figure 5 -- Retinal vessel segmentation pipeline (reference backend)",
        "",
        f"image: synthetic fundus {fundus.shape[0]}x{fundus.shape[1]} "
        f"(paper: fundus photographs; see DESIGN.md substitution table)",
        "",
        "stage runtimes:",
    ]
    for stage, seconds in result.stage_seconds.items():
        lines.append(f"  {stage:<16} {seconds * 1e3:8.2f} ms")
    lines += [
        "",
        "segmentation quality vs ground truth:",
        f"  sensitivity {metrics['sensitivity']:.3f}   specificity {metrics['specificity']:.3f}   "
        f"accuracy {metrics['accuracy']:.3f}   dice {metrics['dice']:.3f}",
    ]
    write_report("retina_pipeline", lines)

    assert metrics["sensitivity"] > 0.3
    assert metrics["specificity"] > 0.7
    assert set(result.stage_seconds) == {
        "preprocess", "denoise", "matched_filters", "texture", "threshold"
    }


def test_vcgra_filter_matches_reference(benchmark, fundus, reference_result):
    """The denoise filter executed on the VCGRA overlay matches the reference."""
    arch = VCGRAArchitecture(rows=5, cols=5,
                             pe_spec=ProcessingElementSpec(fmt=FPFormat(6, 18)))
    kernel = gaussian_kernel(5)
    engine = VCGRAFilterEngine(kernel, arch=arch)
    # Filter a small crop on the overlay (full frames are benchmarked by E4/E7).
    crop = reference_result.preprocessed[:24, :24]

    overlay = benchmark(engine.apply, crop)
    reference = convolve2d(crop, kernel)
    max_err = float(np.max(np.abs(overlay - reference)))

    lines = [
        "E5b -- VCGRA-executed denoise filter vs NumPy reference",
        "",
        f"kernel: 5x5 Gaussian; overlay: {arch.describe()}",
        f"configurations per kernel: {engine.report.num_configurations}",
        f"max absolute response error: {max_err:.2e} "
        f"(FloPoCo wf={arch.pe_spec.fmt.wf} resolution ~{2.0 ** -arch.pe_spec.fmt.wf:.1e})",
    ]
    write_report("retina_vcgra_filter", lines)

    assert max_err < 1e-3
    assert engine.report.num_configurations == 1
