"""E3 -- reconfiguration time: per-PE estimate and multi-context serving.

The paper estimates 251 ms to micro-reconfigure one PE (526 TLUTs + 568 TCONs
through HWICAP) and argues the cost is acceptable because the denoise and
texture filter coefficients change only once per batch (e.g. per 1000 images).
This benchmark reproduces the estimate from the cost model, measures the
actual SCG specialization (PPC Boolean-function evaluation) on a mapped PE,
and reports the amortization the paper quotes.

Since PR 8 it also measures the claim *at scale*: a library of specialized
PE contexts (one per coefficient set) is multiplexed on the grid by the
:mod:`repro.reconfig` scheduler -- frame-level diff switches, an LRU of
resident partial configurations under a context-memory budget -- against a
skewed synthetic request trace, reporting contexts/sec, amortized switch
cost, hit rate vs. residency budget, and the full-vs-diff frame counts.
Every switch is checked bit-identical to a full reconfiguration (the same
invariant ``check_quality.py`` gates on the hotpath bench).
"""

from __future__ import annotations

import pytest

from _bench_config import BENCH_FP_FORMAT, write_report
from repro.core.flows import run_pe_flow
from repro.core.pe import PEOp, ProcessingElementSpec, build_pe_design
from repro.core.reconfiguration import HWICAP, MICAP, ReconfigurationCostModel
from repro.core.specialization import SpecializedConfigurationGenerator
from repro.reconfig import (
    ContextLibrary,
    ReconfigScheduler,
    popularity_weights,
    replay,
    synthetic_trace,
)

PAPER_TLUTS = 526
PAPER_TCONS = 568
PAPER_ESTIMATE_MS = 251.0

NUM_CONTEXTS = 16
TRACE_LENGTH = 600
TRACE_SKEW = 1.2
TRACE_REPEAT = 0.25


@pytest.fixture(scope="module")
def scg():
    """A mapped + placed-and-routed PE wrapped by the SCG (reduced format)."""
    spec = ProcessingElementSpec(fmt=BENCH_FP_FORMAT, num_inputs=2, counter_width=8)
    result = run_pe_flow(
        build_pe_design(spec).circuit,
        parameterized=True,
        do_par=True,
        channel_width=12,
        placement_effort=0.3,
        router_iterations=15,
        seed=0,
    )
    return spec, SpecializedConfigurationGenerator(result.network, result.par)


def test_paper_reconfiguration_estimate(benchmark):
    """Reproduce the 251 ms per-PE estimate from the cost model."""
    model = ReconfigurationCostModel(HWICAP)
    estimate = benchmark(model.estimate_time_ms, PAPER_TLUTS, PAPER_TCONS)
    micap = ReconfigurationCostModel(MICAP).estimate_time_ms(PAPER_TLUTS, PAPER_TCONS)
    amortized = model.amortized_overhead(estimate, items_per_configuration=1000,
                                         time_per_item_ms=5.0)

    lines = [
        "E3 -- Reconfiguration time estimate (Section V)",
        "",
        f"paper estimate:                 {PAPER_ESTIMATE_MS:7.1f} ms per PE "
        f"({PAPER_TLUTS} TLUTs + {PAPER_TCONS} TCONs, HWICAP)",
        f"measured model (HWICAP):        {estimate:7.1f} ms per PE",
        f"measured model (MiCAP):         {micap:7.1f} ms per PE",
        "",
        "amortization over 1000 images (paper's example):",
        f"  per-image overhead:           {amortized['per_item_overhead_ms']:7.3f} ms",
        f"  overhead fraction:            {amortized['overhead_fraction']:7.2%}",
    ]
    write_report("reconfiguration_time", lines)

    assert estimate == pytest.approx(PAPER_ESTIMATE_MS, rel=0.25)
    assert micap < estimate
    assert amortized["per_item_overhead_ms"] < 1.0


def test_scg_specialization_cost(benchmark, scg):
    """Measure the software half of a reconfiguration: PPC evaluation by the SCG."""
    spec, generator = scg
    fmt = spec.fmt
    coeffs = [0.5, -1.25, 0.125, 3.0]
    state = {"i": 0}

    def one_specialization():
        state["i"] += 1
        coeff = coeffs[state["i"] % len(coeffs)]
        return generator.specialize(
            {"coeff": fmt.encode(coeff), "sel_a": 0, "sel_b": 1,
             "op": PEOp.MAC, "count_limit": 16}
        )

    outcome = benchmark(one_specialization)
    summary = generator.summary()
    model = ReconfigurationCostModel(HWICAP)
    hw_time = model.time_from_frames_ms(outcome.num_frames, summary["boolean_functions"])

    lines = [
        "E3b -- SCG specialization on the mapped (reduced-format) PE",
        "",
        f"tunable elements: {summary['tluts']} TLUTs + {summary['tcons']} TCONs "
        f"({summary['boolean_functions']} PPC Boolean functions, {summary['ppc_bits']} PPC bits)",
        f"frames touched by a coefficient change: {outcome.num_frames}",
        f"modelled HWICAP micro-reconfiguration time: {hw_time:.2f} ms",
    ]
    write_report("reconfiguration_scg", lines)
    assert outcome.num_frames > 0


@pytest.fixture(scope="module")
def context_library(scg):
    """One specialized-PE context per coefficient set, on the shared grid."""
    spec, generator = scg
    fmt = spec.fmt
    layout = generator._layout
    assert layout is not None
    library = ContextLibrary(layout)
    weights = popularity_weights(NUM_CONTEXTS, skew=TRACE_SKEW)
    for i in range(NUM_CONTEXTS):
        coeff = (-1) ** i * (0.125 + 0.25 * i)
        outcome = generator.specialize(
            {"coeff": fmt.encode(coeff), "sel_a": i % 2, "sel_b": (i + 1) % 2,
             "op": PEOp.MAC, "count_limit": 8 + i}
        )
        library.add_bitstream(f"coeff{i}", outcome.bitstream,
                              criticality=float(weights[i]))
    return library


def test_multi_context_scheduler(benchmark, context_library):
    """E3c -- serving many PE contexts on one grid via frame-diff switches."""
    library = context_library
    names = library.names()
    trace = synthetic_trace(names, TRACE_LENGTH, seed=0,
                            skew=TRACE_SKEW, repeat=TRACE_REPEAT)
    total = library.total_frames()

    # hit rate / switch cost vs. context-memory residency budget, with every
    # switch checked bit-identical to a full reconfiguration of the target
    sweeps = []
    for fraction in (0.1, 0.3, 1.0):
        budget = max(1, int(total * fraction))
        scheduler = ReconfigScheduler(library, budget_frames=budget)
        for name in trace:
            scheduler.switch_to(name)
            assert scheduler.active_image == library[name].image, (
                "diff-applied configuration diverged from full reconfiguration"
            )
        sweeps.append((fraction, scheduler.stats()))

    # timed replay at the middle budget (the serving configuration)
    budget = max(1, int(total * 0.3))

    def serve():
        return replay(ReconfigScheduler(library, budget_frames=budget), trace)

    report = benchmark(serve)

    lines = [
        "E3c -- multi-context reconfiguration scheduler "
        f"({NUM_CONTEXTS} specialized-PE contexts, {TRACE_LENGTH}-request trace, "
        f"skew {TRACE_SKEW}, repeat {TRACE_REPEAT}, MiCAP frame costs)",
        "",
        f"library: {total} resident-frame footprint, "
        f"mean consecutive delta {library.mean_delta_frames():.1f} frames",
        "",
        f"{'budget':>8} {'hit rate':>9} {'ctx/sec':>9} {'ms/switch':>10} "
        f"{'diff frames':>12} {'full frames':>12} {'saved':>7}",
    ]
    for fraction, stats in sweeps:
        switch_ms = stats["time_ms"] / stats["switches"]
        ctx_per_sec = stats["switches"] / (stats["time_ms"] / 1000.0)
        lines.append(
            f"{fraction:7.0%} {stats['hit_rate']:9.2%} {ctx_per_sec:9.0f} "
            f"{switch_ms:10.3f} {stats['frames_written']:12.0f} "
            f"{stats['frames_full']:12.0f} {stats['frame_savings']:7.2%}"
        )
    lines += [
        "",
        f"timed replay at 30% budget: {report.contexts_per_sec:.0f} contexts/sec, "
        f"{report.amortized_switch_ms:.3f} ms amortized switch cost, "
        f"hit rate {report.hit_rate:.2%}, frame savings {report.frame_savings:.2%}",
    ]
    write_report("reconfiguration_scheduler", lines)

    # the residency budget must buy hit rate monotonically, and diffs must
    # never write more frames than the full-reconfiguration baseline
    hit_rates = [stats["hit_rate"] for _, stats in sweeps]
    assert hit_rates == sorted(hit_rates)
    for _, stats in sweeps:
        assert stats["frames_written"] <= stats["frames_full"]
    assert report.frame_savings > 0.0
    assert report.contexts_per_sec > 0.0
