"""E3 -- reconfiguration time estimate (Section V).

The paper estimates 251 ms to micro-reconfigure one PE (526 TLUTs + 568 TCONs
through HWICAP) and argues the cost is acceptable because the denoise and
texture filter coefficients change only once per batch (e.g. per 1000 images).
This benchmark reproduces the estimate from the cost model, measures the
actual SCG specialization (PPC Boolean-function evaluation) on a mapped PE,
and reports the amortization the paper quotes.
"""

from __future__ import annotations

import pytest

from _bench_config import BENCH_FP_FORMAT, write_report
from repro.core.flows import run_pe_flow
from repro.core.pe import PEOp, ProcessingElementSpec, build_pe_design
from repro.core.reconfiguration import HWICAP, MICAP, ReconfigurationCostModel
from repro.core.specialization import SpecializedConfigurationGenerator

PAPER_TLUTS = 526
PAPER_TCONS = 568
PAPER_ESTIMATE_MS = 251.0


@pytest.fixture(scope="module")
def scg():
    """A mapped + placed-and-routed PE wrapped by the SCG (reduced format)."""
    spec = ProcessingElementSpec(fmt=BENCH_FP_FORMAT, num_inputs=2, counter_width=8)
    result = run_pe_flow(
        build_pe_design(spec).circuit,
        parameterized=True,
        do_par=True,
        channel_width=12,
        placement_effort=0.3,
        router_iterations=15,
        seed=0,
    )
    return spec, SpecializedConfigurationGenerator(result.network, result.par)


def test_paper_reconfiguration_estimate(benchmark):
    """Reproduce the 251 ms per-PE estimate from the cost model."""
    model = ReconfigurationCostModel(HWICAP)
    estimate = benchmark(model.estimate_time_ms, PAPER_TLUTS, PAPER_TCONS)
    micap = ReconfigurationCostModel(MICAP).estimate_time_ms(PAPER_TLUTS, PAPER_TCONS)
    amortized = model.amortized_overhead(estimate, items_per_configuration=1000,
                                         time_per_item_ms=5.0)

    lines = [
        "E3 -- Reconfiguration time estimate (Section V)",
        "",
        f"paper estimate:                 {PAPER_ESTIMATE_MS:7.1f} ms per PE "
        f"({PAPER_TLUTS} TLUTs + {PAPER_TCONS} TCONs, HWICAP)",
        f"measured model (HWICAP):        {estimate:7.1f} ms per PE",
        f"measured model (MiCAP):         {micap:7.1f} ms per PE",
        "",
        "amortization over 1000 images (paper's example):",
        f"  per-image overhead:           {amortized['per_item_overhead_ms']:7.3f} ms",
        f"  overhead fraction:            {amortized['overhead_fraction']:7.2%}",
    ]
    write_report("reconfiguration_time", lines)

    assert estimate == pytest.approx(PAPER_ESTIMATE_MS, rel=0.25)
    assert micap < estimate
    assert amortized["per_item_overhead_ms"] < 1.0


def test_scg_specialization_cost(benchmark, scg):
    """Measure the software half of a reconfiguration: PPC evaluation by the SCG."""
    spec, generator = scg
    fmt = spec.fmt
    coeffs = [0.5, -1.25, 0.125, 3.0]
    state = {"i": 0}

    def one_specialization():
        state["i"] += 1
        coeff = coeffs[state["i"] % len(coeffs)]
        return generator.specialize(
            {"coeff": fmt.encode(coeff), "sel_a": 0, "sel_b": 1,
             "op": PEOp.MAC, "count_limit": 16}
        )

    outcome = benchmark(one_specialization)
    summary = generator.summary()
    model = ReconfigurationCostModel(HWICAP)
    hw_time = model.time_from_frames_ms(outcome.num_frames, summary["boolean_functions"])

    lines = [
        "E3b -- SCG specialization on the mapped (reduced-format) PE",
        "",
        f"tunable elements: {summary['tluts']} TLUTs + {summary['tcons']} TCONs "
        f"({summary['boolean_functions']} PPC Boolean functions, {summary['ppc_bits']} PPC bits)",
        f"frames touched by a coefficient change: {outcome.num_frames}",
        f"modelled HWICAP micro-reconfiguration time: {hw_time:.2f} ms",
    ]
    write_report("reconfiguration_scg", lines)
    assert outcome.num_frames > 0
