"""E7 -- ablation: where do the savings of the fully parameterized VCGRA come from?

Section III of the paper distinguishes the earlier *semi-parameterized*
implementation (TLUTs only, [2]) from the fully parameterized one (TLUTs +
TCONs, this paper), and Section V attributes ~31% of the conventional PE's
LUTs to the intra-connect that TCONs eliminate.  This ablation maps the same
PE three ways -- conventional, semi-parameterized (TCON extraction disabled)
and fully parameterized -- across a sweep of datapath precisions, and reports
the LUT counts of each.
"""

from __future__ import annotations

import pytest

from _bench_config import write_report
from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.flopoco.format import FPFormat
from repro.synth.optimize import optimize
from repro.techmap import map_conventional, map_parameterized

SWEEP_FORMATS = [FPFormat(4, 6), FPFormat(5, 10), FPFormat(6, 14)]


@pytest.fixture(scope="module")
def sweep_results():
    rows = []
    for fmt in SWEEP_FORMATS:
        circuit = build_pe_design(ProcessingElementSpec(fmt=fmt)).circuit
        optimized, _ = optimize(circuit)
        conv = map_conventional(optimized)
        semi = map_parameterized(optimized, extract_tcons=False)
        full = map_parameterized(optimized)
        rows.append({
            "fmt": fmt,
            "conventional": conv.num_luts(),
            "semi": semi.num_luts(),
            "semi_tluts": semi.num_tluts(),
            "full": full.num_luts(),
            "full_tluts": full.num_tluts(),
            "full_tcons": full.num_tcons(),
            "depth_conv": conv.depth(),
            "depth_full": full.depth(),
        })
    return rows


def test_ablation_tcon_savings(benchmark, sweep_results):
    """Report the LUT counts of the three mapping styles across precisions."""
    rows = sweep_results

    def derive():
        out = []
        for row in rows:
            out.append({
                "semi_saving": 1 - row["semi"] / row["conventional"],
                "full_saving": 1 - row["full"] / row["conventional"],
                "tcon_contribution": (row["semi"] - row["full"]) / row["conventional"],
            })
        return out

    derived = benchmark(derive)

    lines = [
        "E7 -- Ablation: conventional vs semi-parameterized vs fully parameterized PE",
        "",
        f"{'format':<10}{'conv LUTs':>11}{'semi LUTs':>11}{'full LUTs':>11}"
        f"{'TCONs':>8}{'semi save':>11}{'full save':>11}{'TCON part':>11}",
    ]
    for row, d in zip(rows, derived):
        fmt = row["fmt"]
        lines.append(
            f"{fmt.we}/{fmt.wf:<7}{row['conventional']:>11}{row['semi']:>11}{row['full']:>11}"
            f"{row['full_tcons']:>8}{d['semi_saving']:>11.1%}{d['full_saving']:>11.1%}"
            f"{d['tcon_contribution']:>11.1%}"
        )
    lines += [
        "",
        "paper context: the semi-parameterized VCGRA of [2] saved ~50% of LUTs at the",
        "grid level; adding TCONs removes the remaining intra-connect overhead (~31%",
        "of the PE's LUTs) and is the contribution of this paper.",
    ]
    write_report("ablation_tcon_savings", lines)

    for row, d in zip(rows, derived):
        # Fully parameterized must always beat (or match) the semi-parameterized flow,
        # and both must beat conventional mapping.
        assert row["full"] <= row["semi"] <= row["conventional"]
        assert d["full_saving"] > 0.1
        assert row["depth_full"] <= row["depth_conv"]


def test_benchmark_full_mapping_scaling(benchmark):
    """Time the fully parameterized mapping of the mid-precision PE."""
    circuit = build_pe_design(ProcessingElementSpec(fmt=FPFormat(5, 10))).circuit
    optimized, _ = optimize(circuit)
    network = benchmark(map_parameterized, optimized)
    assert network.num_tcons() > 0
