"""E2 -- Table II: resource utilization of a 4x4 VCGRA grid.

Paper values::

    ====================  =============  ==================
    VCGRA                 Inter-Network  Settings register
    ====================  =============  ==================
    Conventional          41             25
    Fully Parameterized   0              0
    ====================  =============  ==================

The 41 inter-network elements are the 9 virtual switch blocks plus 32 virtual
connection blocks; the 25 settings registers are one per PE (16) and one per
VSB (9), each 32 bits wide.  Conventionally they cost LUTs and logic-cell
flip-flops; fully parameterized they move onto physical routing switches and
configuration memory.
"""

from __future__ import annotations

import pytest

from _bench_config import write_report
from repro.core.accounting import grid_resource_details, grid_resource_table
from repro.core.grid import VCGRAArchitecture

PAPER_TABLE2 = {
    "conventional": {"inter_network": 41, "settings_registers": 25},
    "fully_parameterized": {"inter_network": 0, "settings_registers": 0},
}


@pytest.fixture(scope="module")
def grid() -> VCGRAArchitecture:
    return VCGRAArchitecture(rows=4, cols=4)


def test_table2_reproduction(benchmark, grid):
    """Regenerate Table II for the paper's 4x4 grid."""
    table = benchmark(grid_resource_table, grid)
    details = grid_resource_details(grid)

    lines = [
        "E2 / Table II -- Resource utilization of a 4x4 VCGRA grid",
        "",
        f"{'implementation':<24}{'inter-network':>15}{'settings registers':>22}",
        f"{'paper / Conventional':<24}{PAPER_TABLE2['conventional']['inter_network']:>15}"
        f"{PAPER_TABLE2['conventional']['settings_registers']:>22}",
        f"{'measured / Conventional':<24}{table['conventional'].inter_network:>15}"
        f"{table['conventional'].settings_registers:>22}",
        f"{'paper / Fully param.':<24}{PAPER_TABLE2['fully_parameterized']['inter_network']:>15}"
        f"{PAPER_TABLE2['fully_parameterized']['settings_registers']:>22}",
        f"{'measured / Fully param.':<24}{table['fully_parameterized'].inter_network:>15}"
        f"{table['fully_parameterized'].settings_registers:>22}",
        "",
        "breakdown: "
        f"{details['pes']} PEs, {details['vsbs']} VSBs, "
        f"{details['virtual_connection_blocks']} virtual connection blocks, "
        f"{details['settings_register_bits']} settings bits "
        f"(~{details['conventional_ff_estimate']} FFs conventionally, 0 parameterized)",
    ]
    write_report("table2_grid_resources", lines)

    # Exact reproduction of Table II.
    assert table["conventional"].inter_network == PAPER_TABLE2["conventional"]["inter_network"]
    assert table["conventional"].settings_registers == PAPER_TABLE2["conventional"]["settings_registers"]
    assert table["fully_parameterized"].inter_network == 0
    assert table["fully_parameterized"].settings_registers == 0


def test_benchmark_grid_scaling(benchmark):
    """Time the accounting across grid sizes (series behind Table II)."""

    def sweep():
        rows = {}
        for n in (2, 4, 6, 8, 12, 16):
            arch = VCGRAArchitecture(rows=n, cols=n)
            rows[n] = grid_resource_table(arch)["conventional"]
        return rows

    rows = benchmark(sweep)
    assert rows[4].inter_network == 41
    # quadratic growth of the virtual network with grid side
    assert rows[8].inter_network > 4 * rows[2].inter_network
