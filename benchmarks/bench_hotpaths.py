"""Hot-path kernel benchmark: simulation, placement, routing.

Times the three CAD hot paths on fixed seeds, comparing the reworked kernels
against the seed ("reference") implementations that are kept behind the same
APIs, and writes a machine-readable ``BENCH_hotpaths.json`` at the repo root
so future PRs have a perf trajectory.

Run with::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py

The workload is the paper's conventional Processing Element (reduced
FloPoCo format, same scale as the default benchmark harness).  Every
comparison also checks result fidelity: simulation outputs must be
bit-identical and placement/routing quality metrics (HPWL, wirelength,
success) must be unchanged for the fixed seeds.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.flopoco.format import FPFormat
from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.netlist.engine import compile_circuit
from repro.netlist.simulate import (
    random_patterns,
    simulate_patterns,
    simulate_patterns_reference,
)
from repro.par.netlist import from_mapped_network
from repro.par.placement import place
from repro.par.routing import route
from repro.synth.optimize import optimize
from repro.techmap import map_conventional

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

BENCH_FORMAT = FPFormat(we=5, wf=10)
SIM_PATTERNS = 1024
SIM_REPEATS = 20
SIM_REF_REPEATS = 5
PLACE_SEED = 0
PLACE_EFFORT = 0.25
ROUTE_SEED = 0
CHANNEL_WIDTH = 12


def _build_workload():
    spec = ProcessingElementSpec(fmt=BENCH_FORMAT, num_inputs=2, counter_width=4)
    circuit, _ = optimize(build_pe_design(spec).circuit)
    network = map_conventional(circuit)
    netlist = from_mapped_network(network)
    arch = auto_size(
        netlist.num_logic_blocks() + netlist.num_ff_blocks(),
        netlist.num_io_blocks(),
        channel_width=CHANNEL_WIDTH,
    )
    return circuit, netlist, arch


def bench_simulation(circuit):
    patterns = random_patterns(circuit, SIM_PATTERNS)
    compile_circuit(circuit)  # compile outside the timed region (one-time cost)
    simulate_patterns(circuit, patterns, SIM_PATTERNS)  # warm the codegen path

    t0 = time.perf_counter()
    for _ in range(SIM_REPEATS):
        fast = simulate_patterns(circuit, patterns, SIM_PATTERNS)
    fast_s = (time.perf_counter() - t0) / SIM_REPEATS

    t0 = time.perf_counter()
    for _ in range(SIM_REF_REPEATS):
        ref = simulate_patterns_reference(circuit, patterns, SIM_PATTERNS)
    ref_s = (time.perf_counter() - t0) / SIM_REF_REPEATS

    node_evals = len(circuit.ops) * SIM_PATTERNS
    return {
        "workload": f"PE circuit, {len(circuit.ops)} nodes x {SIM_PATTERNS} patterns",
        "reference_seconds": ref_s,
        "fast_seconds": fast_s,
        "speedup": ref_s / fast_s,
        "ops_per_sec_reference": node_evals / ref_s,
        "ops_per_sec_fast": node_evals / fast_s,
        "identical_outputs": ref == fast,
    }


def bench_placement(netlist, arch):
    t0 = time.perf_counter()
    ref = place(netlist, arch, seed=PLACE_SEED, effort=PLACE_EFFORT, kernel="reference")
    ref_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = place(netlist, arch, seed=PLACE_SEED, effort=PLACE_EFFORT, kernel="incremental")
    fast_s = time.perf_counter() - t0

    identical = (
        fast.cost == ref.cost
        and fast.moves_attempted == ref.moves_attempted
        and fast.moves_accepted == ref.moves_accepted
        and all(
            fast.placement.block_site[b].as_tuple() == s.as_tuple()
            for b, s in ref.placement.block_site.items()
        )
    )
    return {
        "workload": (
            f"{len(netlist.blocks)} blocks / {len(netlist.nets)} nets on "
            f"{arch.width}x{arch.height}, seed={PLACE_SEED}, effort={PLACE_EFFORT}"
        ),
        "reference_seconds": ref_s,
        "fast_seconds": fast_s,
        "speedup": ref_s / fast_s,
        "ops_per_sec_reference": ref.moves_attempted / ref_s,
        "ops_per_sec_fast": fast.moves_attempted / fast_s,
        "hpwl_reference": ref.cost,
        "hpwl_fast": fast.cost,
        "identical_outputs": identical,
    }, fast.placement


def bench_routing(netlist, arch, placement):
    device = build_device(arch)

    t0 = time.perf_counter()
    ref = route(netlist, placement, device, kernel="reference")
    ref_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = route(netlist, placement, device, kernel="fast")
    fast_s = time.perf_counter() - t0

    identical = (
        fast.success == ref.success
        and fast.wirelength == ref.wirelength
        and fast.iterations == ref.iterations
        and all(fast.routes[k].nodes == r.nodes for k, r in ref.routes.items())
    )
    return {
        "workload": (
            f"{len(netlist.nets)} nets, W={CHANNEL_WIDTH}, "
            f"{device.rr_graph.num_nodes} RR nodes"
        ),
        "reference_seconds": ref_s,
        "fast_seconds": fast_s,
        "speedup": ref_s / fast_s,
        "ops_per_sec_reference": len(netlist.nets) * ref.iterations / ref_s,
        "ops_per_sec_fast": len(netlist.nets) * fast.iterations / fast_s,
        "wirelength_reference": ref.wirelength,
        "wirelength_fast": fast.wirelength,
        "success_reference": ref.success,
        "success_fast": fast.success,
        "identical_outputs": identical,
    }


def main() -> int:
    circuit, netlist, arch = _build_workload()

    print("benchmarking simulation kernel ...")
    sim = bench_simulation(circuit)
    print("benchmarking placement kernel ...")
    placement_result, placement = bench_placement(netlist, arch)
    print("benchmarking routing kernel ...")
    routing_result = bench_routing(netlist, arch, placement)

    report = {
        "config": {
            "fp_format": {"we": BENCH_FORMAT.we, "wf": BENCH_FORMAT.wf},
            "sim_patterns": SIM_PATTERNS,
            "place_seed": PLACE_SEED,
            "place_effort": PLACE_EFFORT,
            "channel_width": CHANNEL_WIDTH,
            "python": platform.python_version(),
        },
        "kernels": {
            "simulation": sim,
            "placement": placement_result,
            "routing": routing_result,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    ok = True
    for name, entry in report["kernels"].items():
        flag = "OK " if entry["identical_outputs"] else "MISMATCH"
        ok = ok and entry["identical_outputs"]
        print(
            f"{name:11s} {flag} speedup={entry['speedup']:6.2f}x  "
            f"ref={entry['reference_seconds'] * 1000:8.1f}ms  "
            f"fast={entry['fast_seconds'] * 1000:8.1f}ms"
        )
    print(f"wrote {RESULT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
