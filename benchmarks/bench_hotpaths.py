"""Hot-path kernel benchmark: simulation, placement, routing.

Times the CAD hot paths on fixed seeds, comparing the reworked kernels
against the seed ("reference") implementations that are kept behind the same
APIs, and writes a machine-readable ``BENCH_hotpaths.json`` at the repo root
so future PRs have a perf trajectory.

Run with::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py

The workload is the paper's conventional Processing Element (reduced FloPoCo
format by default; ``REPRO_FULL=1`` switches to the paper's 6/26 format and
skips the slowest reference baselines so the nightly run stays bounded).

Three comparisons are made:

* **simulation** -- compiled engine vs legacy interpreter, bit-identical;
* **placement** -- ``incremental`` vs ``reference`` (trajectory-identical)
  and ``batched`` (PCG64 block randomness + O(1) window moves) vs
  ``incremental`` at *matched quality*: the batched effort is chosen so its
  mean HPWL across the seed sweep is within the quality band, and the
  speedup is reported at that iso-quality point;
* **routing** -- the vectorized delta-stepping ``wavefront`` kernel (PR 3;
  opt-in since the crossover data below) and the directed incremental
  ``astar`` kernel (PR 2, the ``auto`` default) vs the PR 1
  ``fast`` kernel, all at the same routable channel width.  The benchmark
  first finds the minimum routable width for the placement (the W=12
  default of the reduced format is *not* routable -- routing it only
  measured non-convergence), records it as ``channel_width_used``, and
  checks both re-baselined kernels' route quality against the reference
  route (``wavefront`` carries the tighter 1.02x band from its issue);
* **timing** -- the PR 4 criticality-driven objective at the same minimum
  routable width: routed ``critical_path_ns`` + ``logic_depth`` of the
  default (wirelength) flow vs ``objective="timing"`` both route-only (same
  placement) and flow-level (timing-driven placement), plus the measured
  cost of one criticality update per PathFinder iteration.  Since PR 5 the
  flow-level placement is the *incremental-STA* placer (per-connection
  criticality re-timed inside the annealing loop); the PR 4 candidate-
  anneal recipe is timed next to it and the critical-path ratio is gated
  (the incremental placer must match or beat it).  Gated by
  ``check_quality.py``: the timing run must converge, must not regress
  delay, and must stay inside the wirelength band of the reference route on
  its own placement;
* **retime** -- the PR 5 flat route forest vs the PR 4 per-net dict walk:
  routed-delay extraction and the per-PathFinder-iteration criticality
  update, measured dict vs flat both in the steady state (no nets
  re-routed since the last update; the fragment cache serves every net)
  and with 5% of the nets freshly re-routed.  Bit-identity of the
  extracted delays and criticality vectors is asserted and gated;
* **auto_crossover** -- re-measures the ``kernel="auto"`` astar/wavefront
  crossover on synthetic large RR graphs (k tiled copies of the bench PE,
  quick-annealed, routed by both kernels).  PR 5's measurement found no
  crossover (astar ahead at every size), which retired the guessed
  ``WAVEFRONT_AUTO_MIN_NODES`` promotion: ``auto`` is now a fixed alias
  for astar (``AUTO_KERNEL``) and this section keeps backing that with
  data, now including the native-astar column;
* **native** -- the PR 7 compiled-C kernels (astar expansion loop, batched
  annealer move loop; see ``src/repro/native/``) vs their pure-Python
  twins, warm, same seeds.  Bit-identity of routes and annealing
  trajectories is asserted and gated -- the native backend must be a pure
  accelerator, never a different algorithm;
* **reconfig** -- the PR 8 multi-context scheduler (``src/repro/reconfig``;
  see RECONFIGURATION.md): a seeded synthetic context library over the
  bench grid's configuration layout is replayed against a Zipf-skewed
  request trace under a 30% residency budget, and *every* switch's
  diff-applied active plane is checked bit-identical to a full
  reconfiguration of the target -- the identity ``check_quality.py`` gates
  -- alongside contexts/sec, amortized switch cost, hit rate and the
  full-vs-diff frame savings;
* **obs** -- the PR 9 observability layer (``src/repro/obs``; see
  OBSERVABILITY.md): the disabled ``span()`` per-call cost, the traced
  slowdown of the place+route workload (both gated by
  ``check_quality.py``), bit-identity of traced vs untraced results, and a
  Chrome-trace artifact (``BENCH_trace.json``) from the traced run.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_config import BENCH_FP_FORMAT, FULL_MODE

import numpy as np

from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.netlist.engine import compile_circuit
from repro.netlist.simulate import (
    random_patterns,
    simulate_patterns,
    simulate_patterns_reference,
)
from repro.par.cache import PaRCache
from repro.par.flow import timing_driven_placement
from repro.par.metrics import minimum_channel_width
from repro.par.netlist import PhysicalNetlist, from_mapped_network
from repro.par.placement import place
from repro.par.routing import NetRoute, route
from repro.synth.optimize import optimize
from repro.techmap import map_conventional
from repro.timing import analyze, routed_edge_delays
from repro.timing.sta import CriticalityTracker

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

SIM_PATTERNS = 1024
SIM_REPEATS = 20
SIM_REF_REPEATS = 5
PLACE_SEEDS = [0, 1, 2, 3, 4]
PLACE_EFFORT = 0.25          #: effort of the reference/incremental kernels
BATCHED_EFFORT = 0.1         #: iso-quality effort of the batched kernel
PLACE_QUALITY_BAND = 1.02    #: batched mean HPWL must be <= band * incremental
ROUTE_QUALITY_BAND = 1.05    #: astar wirelength must be <= band * reference
WAVEFRONT_QUALITY_BAND = 1.02  #: wavefront wirelength must be <= band * reference
ROUTE_SPEEDUP_FLOOR = 2.5    #: recorded astar-vs-fast floor (typical 2.5-3.4x)
WAVEFRONT_SPEEDUP_FLOOR = 2.0  #: recorded wavefront-vs-astar target (see issue 3)
PLACE_SPEEDUP_FLOOR = 1.5    #: recorded batched-vs-incremental iso-quality floor
CHANNEL_WIDTH = 12           #: starting point of the routable-width search
TIMING_DELAY_TARGET = 0.90   #: recorded flow-level delay-ratio target (>=10% better)
TIMING_WL_BAND = 1.02        #: timing route wirelength vs reference, same placement
RETIME_SPEEDUP_FLOOR = 3.0   #: flat-vs-dict steady-state retime target (issue 5)
RETIME_REROUTED_FRACTION = 20  #: 1-in-N nets re-routed in the perturbed retime case
CROSSOVER_TILES = [1, 2] if not FULL_MODE else [1, 2, 4]
CROSSOVER_CHANNEL_WIDTH = 18  #: roomy enough that every tiling converges fast
NATIVE_ASTAR_SPEEDUP_FLOOR = 3.0   #: recorded native-vs-python astar target (issue 7)
NATIVE_ANNEAL_SPEEDUP_FLOOR = 5.0  #: recorded native-vs-python move-loop target (22.8x measured)
RECONFIG_CONTEXTS = 24       #: synthetic contexts in the scheduler bench
RECONFIG_TRACE_LENGTH = 2000  #: requests replayed against the scheduler
RECONFIG_BUDGET_FRACTION = 0.3  #: context-memory budget / library footprint
OBS_DISABLED_NS_CEILING = 2000.0  #: disabled span() cost bound, ns/call
OBS_SLOWDOWN_CEILING = 1.05  #: traced route+place wall-time ratio bound
TRACE_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"


def _build_workload():
    spec = ProcessingElementSpec(fmt=BENCH_FP_FORMAT, num_inputs=2, counter_width=4)
    circuit, _ = optimize(build_pe_design(spec).circuit)
    network = map_conventional(circuit)
    netlist = from_mapped_network(network)
    arch = auto_size(
        netlist.num_logic_blocks() + netlist.num_ff_blocks(),
        netlist.num_io_blocks(),
        channel_width=CHANNEL_WIDTH,
    )
    return circuit, network, netlist, arch


def _timed(fn, repeats=1):
    """Best-of-N wall time (interleaved noise on shared CI boxes is real)."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


@contextmanager
def _python_kernels():
    """Force the pure-Python twins (``REPRO_NATIVE=0``) inside the block."""
    prev = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = "0"
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_NATIVE"]
        else:
            os.environ["REPRO_NATIVE"] = prev


def bench_simulation(circuit):
    patterns = random_patterns(circuit, SIM_PATTERNS)
    compile_circuit(circuit)  # compile outside the timed region (one-time cost)
    simulate_patterns(circuit, patterns, SIM_PATTERNS)  # warm the codegen path

    t0 = time.perf_counter()
    for _ in range(SIM_REPEATS):
        fast = simulate_patterns(circuit, patterns, SIM_PATTERNS)
    fast_s = (time.perf_counter() - t0) / SIM_REPEATS

    t0 = time.perf_counter()
    for _ in range(SIM_REF_REPEATS):
        ref = simulate_patterns_reference(circuit, patterns, SIM_PATTERNS)
    ref_s = (time.perf_counter() - t0) / SIM_REF_REPEATS

    node_evals = len(circuit.ops) * SIM_PATTERNS
    return {
        "workload": f"PE circuit, {len(circuit.ops)} nodes x {SIM_PATTERNS} patterns",
        "reference_seconds": ref_s,
        "fast_seconds": fast_s,
        "speedup": ref_s / fast_s,
        "ops_per_sec_reference": node_evals / ref_s,
        "ops_per_sec_fast": node_evals / fast_s,
        "identical_outputs": ref == fast,
        "ok": ref == fast,
    }


def bench_placement(netlist, arch):
    seed0 = PLACE_SEEDS[0]
    ref, ref_s = _timed(
        lambda: place(netlist, arch, seed=seed0, effort=PLACE_EFFORT, kernel="reference")
    )

    inc_results, inc_times = [], []
    bat_results, bat_times = [], []
    for seed in PLACE_SEEDS:
        r, dt = _timed(
            lambda s=seed: place(netlist, arch, seed=s, effort=PLACE_EFFORT,
                                 kernel="incremental")
        )
        inc_results.append(r)
        inc_times.append(dt)
        r, dt = _timed(
            lambda s=seed: place(netlist, arch, seed=s, effort=BATCHED_EFFORT,
                                 kernel="batched")
        )
        bat_results.append(r)
        bat_times.append(dt)

    fast = inc_results[0]
    identical = (
        fast.cost == ref.cost
        and fast.moves_attempted == ref.moves_attempted
        and fast.moves_accepted == ref.moves_accepted
        and all(
            fast.placement.block_site[b].as_tuple() == s.as_tuple()
            for b, s in ref.placement.block_site.items()
        )
    )
    exact_ints = all(
        isinstance(r.cost, int) for r in [ref, *inc_results, *bat_results]
    )
    inc_hpwl = [r.cost for r in inc_results]
    bat_hpwl = [r.cost for r in bat_results]
    hpwl_ratio = statistics.mean(bat_hpwl) / statistics.mean(inc_hpwl)
    batched_speedup = sum(inc_times) / sum(bat_times)
    quality_ok = hpwl_ratio <= PLACE_QUALITY_BAND

    return {
        "workload": (
            f"{len(netlist.blocks)} blocks / {len(netlist.nets)} nets on "
            f"{arch.width}x{arch.height}, seeds={PLACE_SEEDS}, "
            f"effort={PLACE_EFFORT} (batched iso-quality at {BATCHED_EFFORT})"
        ),
        "reference_seconds": ref_s,
        "fast_seconds": inc_times[0],
        "speedup": ref_s / inc_times[0],
        "hpwl_reference": ref.cost,
        "hpwl_fast": fast.cost,
        "identical_outputs": identical,
        "exact_int_hpwl": exact_ints,
        "batched": {
            "effort": BATCHED_EFFORT,
            "seconds_per_seed": bat_times,
            "incremental_seconds_per_seed": inc_times,
            "speedup_vs_incremental": batched_speedup,
            "hpwl_per_seed": bat_hpwl,
            "incremental_hpwl_per_seed": inc_hpwl,
            "mean_hpwl_ratio": hpwl_ratio,
            "quality_band": PLACE_QUALITY_BAND,
            "quality_ok": quality_ok,
        },
        # The exit-code gate is correctness/quality only; wall-clock floors
        # are recorded but machine-load dependent (see check_quality.py).
        "speedup_floor_met": batched_speedup >= PLACE_SPEEDUP_FLOOR,
        "ok": identical and exact_ints and quality_ok,
    }, fast.placement


def bench_routing(netlist, arch, placement):
    # The default benchmark width is not necessarily routable (at the reduced
    # format's W=12 every kernel ends congested); find the minimum routable
    # width for this placement and benchmark every kernel there.  The search
    # probes with the scalar astar kernel (see minimum_channel_width: probes
    # below the minimum are non-convergent by construction, which is the
    # scalar kernel's fast case and the vectorized kernel's slow one); the
    # wavefront kernel's convergence at the found width is gated below.
    workers = os.cpu_count() or 1
    min_cw = minimum_channel_width(
        netlist, placement, arch,
        low=max(2, CHANNEL_WIDTH - 4), high=CHANNEL_WIDTH * 2,
        max_router_iterations=15,
        route_kernel="astar",
        workers=min(workers, 4),
        cache=PaRCache.from_env(),
    )
    width = min_cw.min_channel_width
    device = build_device(arch.with_channel_width(width))
    route(netlist, placement, device, kernel="astar", max_iterations=1)  # warm view

    if FULL_MODE:
        ref = None
        ref_s = None
    else:
        ref, ref_s = _timed(lambda: route(netlist, placement, device, kernel="reference"))
    # Interleave the fast/astar/wavefront measurements so drifting machine
    # load hits all kernels alike; keep the best of each.
    fast = astar = wave = None
    fast_s = astar_s = wave_s = None
    for _ in range(3):
        fast_i, dt_f = _timed(lambda: route(netlist, placement, device, kernel="fast"))
        astar_i, dt_a = _timed(lambda: route(netlist, placement, device, kernel="astar"))
        wave_i, dt_w = _timed(
            lambda: route(netlist, placement, device, kernel="wavefront")
        )
        if fast_s is None or dt_f < fast_s:
            fast, fast_s = fast_i, dt_f
        if astar_s is None or dt_a < astar_s:
            astar, astar_s = astar_i, dt_a
        if wave_s is None or dt_w < wave_s:
            wave, wave_s = wave_i, dt_w

    if ref is not None:
        identical = (
            fast.success == ref.success
            and fast.wirelength == ref.wirelength
            and fast.iterations == ref.iterations
            and all(fast.routes[k].nodes == r.nodes for k, r in ref.routes.items())
        )
        wl_baseline = ref.wirelength
    else:
        identical = True  # fast == reference is asserted in the default run
        wl_baseline = fast.wirelength

    wl_ratio = astar.wirelength / wl_baseline
    wave_ratio = wave.wirelength / wl_baseline
    astar_speedup = fast_s / astar_s
    wave_speedup = astar_s / wave_s
    baselines_converged = fast.success and (ref is None or ref.success)
    quality_ok = (
        astar.success and wl_ratio <= ROUTE_QUALITY_BAND
        and wave.success and wave_ratio <= WAVEFRONT_QUALITY_BAND
    )

    entry = {
        "workload": (
            f"{len(netlist.nets)} nets, W={width} (min routable; "
            f"W={CHANNEL_WIDTH} was congested), {device.rr_graph.num_nodes} RR nodes"
        ),
        "channel_width_used": width,
        "min_cw_attempts": {str(w): ok for w, ok in sorted(min_cw.attempts.items())},
        "fast_seconds": fast_s,
        "astar_seconds": astar_s,
        "wavefront_seconds": wave_s,
        "speedup_astar_vs_fast": astar_speedup,
        "speedup_wavefront_vs_astar": wave_speedup,
        "wirelength_fast": fast.wirelength,
        "wirelength_astar": astar.wirelength,
        "wirelength_wavefront": wave.wirelength,
        "astar_wirelength_ratio": wl_ratio,
        "wavefront_wirelength_ratio": wave_ratio,
        "iterations_fast": fast.iterations,
        "iterations_astar": astar.iterations,
        "iterations_wavefront": wave.iterations,
        "success_fast": fast.success,
        "success_astar": astar.success,
        "success_wavefront": wave.success,
        "identical_outputs": identical,
        "quality_band": ROUTE_QUALITY_BAND,
        "wavefront_quality_band": WAVEFRONT_QUALITY_BAND,
        "quality_ok": quality_ok,
        "baselines_converged": baselines_converged,
        "speedup_floor_met": astar_speedup >= ROUTE_SPEEDUP_FLOOR,
        "wavefront_speedup_floor_met": wave_speedup >= WAVEFRONT_SPEEDUP_FLOOR,
        "ok": identical and quality_ok and baselines_converged,
    }
    if ref is not None:
        entry.update(
            {
                "reference_seconds": ref_s,
                "speedup": ref_s / astar_s,
                "wirelength_reference": ref.wirelength,
                "success_reference": ref.success,
            }
        )
    return entry, width


def bench_timing(network, netlist, arch, placement, width):
    """Criticality-driven PAR vs the default flow at the min routable width.

    Measurements at the same channel width:

    * the default flow's route (wirelength objective on the bench
      placement) -- the delay baseline;
    * ``objective="timing"`` route-only on the *same* placement, isolating
      the router's contribution;
    * the full timing flow: the PR 5 *incremental-STA* placer (default
      ``timing_driven_placement`` mode) + timing route -- the headline
      delay-ratio number gated by ``check_quality.py``;
    * PR 4's candidate-anneal placer, timed and routed next to it: the
      incremental placer must reach (or beat) its routed critical path --
      deterministic for the fixed seed, so ``check_quality.py`` gates the
      ratio -- and the wall-time ratio documents the ~x0.4 placement cost
      (recorded, not gated: wall clock is machine-load dependent).

    The timing route's wirelength is banded against the reference-kernel
    route *on the incremental placement* (the router-quality claim), and
    one criticality update is timed to document the per-PathFinder-
    iteration cost of the feedback loop.
    """
    device = build_device(arch.with_channel_width(width))

    base = route(netlist, placement, device, kernel="wavefront")
    a_base = analyze(netlist, base, device, placement=placement)

    t0 = time.perf_counter()
    timed_route = route(
        netlist, placement, device, kernel="wavefront",
        objective="timing", criticality_exponent=2.0,
    )
    route_timing_s = time.perf_counter() - t0
    a_route = analyze(netlist, timed_route, device, placement=placement)

    flow_result, place_timing_s = _timed(
        lambda: timing_driven_placement(
            netlist, arch, seed=PLACE_SEEDS[0], effort=PLACE_EFFORT
        ),
        repeats=2,
    )
    flow_placement = flow_result.placement
    flow_route = route(
        netlist, flow_placement, device, kernel="wavefront",
        objective="timing", criticality_exponent=2.0,
    )
    a_flow = analyze(netlist, flow_route, device, placement=flow_placement)
    ref_on_flow = route(netlist, flow_placement, device, kernel="reference")

    # PR 4's candidate-anneal placer on the same seed: the comparison
    # baseline for the incremental-STA placer's quality/time claims.
    # Both placers are timed best-of-2 (they are deterministic, so only
    # the wall time varies): the time *ratio* is the recorded claim and a
    # single loaded sample on either side would skew it.
    cand_result, place_cand_s = _timed(
        lambda: timing_driven_placement(
            netlist, arch, seed=PLACE_SEEDS[0], effort=PLACE_EFFORT,
            mode="candidates",
        ),
        repeats=2,
    )
    cand_placement = cand_result.placement
    cand_route = route(
        netlist, cand_placement, device, kernel="wavefront",
        objective="timing", criticality_exponent=2.0,
    )
    a_cand = analyze(netlist, cand_route, device, placement=cand_placement)

    # Cost of one criticality update (route-tree walk + two STA scans),
    # paid once per PathFinder iteration in timing mode (the dict-walk
    # baseline; the flat-forest path is benchmarked in bench_retime).
    tracker = CriticalityTracker(netlist, flow_placement, device)
    t0 = time.perf_counter()
    tracker.update(flow_route.routes)
    crit_update_s = time.perf_counter() - t0

    delay_ratio_route = a_route.critical_path_ns / a_base.critical_path_ns
    delay_ratio_flow = a_flow.critical_path_ns / a_base.critical_path_ns
    placer_cp_ratio = a_flow.critical_path_ns / a_cand.critical_path_ns
    placer_time_ratio = place_timing_s / place_cand_s
    wl_band_ratio = flow_route.wirelength / ref_on_flow.wirelength
    converged = (
        base.success and timed_route.success and flow_route.success
        and cand_route.success
    )
    depth_ok = a_base.logic_depth == network.depth()
    ok = (
        converged
        and depth_ok
        and delay_ratio_flow <= 1.0
        and wl_band_ratio <= TIMING_WL_BAND
        and placer_cp_ratio <= 1.0 + 1e-9
    )
    return {
        "workload": (
            f"{len(netlist.nets)} nets at W={width} (min routable), "
            f"STA over {len(netlist.blocks)} blocks"
        ),
        "channel_width_used": width,
        "logic_depth": a_base.logic_depth,
        "logic_depth_matches_network": depth_ok,
        "critical_path_ns_wirelength": a_base.critical_path_ns,
        "critical_path_ns_timing_route": a_route.critical_path_ns,
        "critical_path_ns_timing_flow": a_flow.critical_path_ns,
        "critical_path_ns_candidates_placer": a_cand.critical_path_ns,
        "delay_ratio_route": delay_ratio_route,
        "delay_ratio_flow": delay_ratio_flow,
        "delay_target": TIMING_DELAY_TARGET,
        "delay_target_met": delay_ratio_flow <= TIMING_DELAY_TARGET,
        "placer_cp_ratio": placer_cp_ratio,
        "placer_time_ratio": placer_time_ratio,
        "placer_time_target_met": placer_time_ratio <= 0.5,
        "wirelength_wirelength": base.wirelength,
        "wirelength_timing_route": timed_route.wirelength,
        "wirelength_timing_flow": flow_route.wirelength,
        "wirelength_reference_on_flow_placement": ref_on_flow.wirelength,
        "timing_wl_band": TIMING_WL_BAND,
        "timing_wl_band_ratio": wl_band_ratio,
        "success_wirelength": base.success,
        "success_timing_route": timed_route.success,
        "success_timing_flow": flow_route.success,
        "success_candidates_placer": cand_route.success,
        "iterations_timing_route": timed_route.iterations,
        "iterations_timing_flow": flow_route.iterations,
        "route_timing_seconds": route_timing_s,
        "timing_placement_seconds": place_timing_s,
        "candidates_placement_seconds": place_cand_s,
        "criticality_update_seconds": crit_update_s,
        "ok": ok,
    }, flow_placement, flow_route


def bench_retime(netlist, arch, placement, width):
    """Flat route forest vs the PR 4 dict walk: extraction + retime cost.

    Both sides do the same semantic work -- exact routed delays out of the
    route trees, two STA scans, criticalities folded per connection -- and
    are asserted bit-identical first.  The flat path is measured in the
    steady state (no nets re-routed since the last update: the per-net
    fragment cache serves everything and the assembled forest is reused)
    and with 1-in-``RETIME_REROUTED_FRACTION`` nets freshly re-routed
    (fragments re-flattened + full reassembly), which brackets what a real
    PathFinder iteration pays.  Interleaved best-of-N like the routing
    benches: drifting machine load hits both sides alike.
    """
    device = build_device(arch.with_channel_width(width))
    routing = route(netlist, placement, device, kernel="wavefront")
    tracker = CriticalityTracker(netlist, placement, device, exponent=2.0)

    # -- bit-identity first: flat vs dict must agree to the last bit ------
    flat = tracker.update_flat(routing.routes).copy()
    legacy = tracker.update(routing.routes)
    crit_identical = all(
        flat[tracker.conn_index[key]] == value for key, value in legacy.items()
    ) and all(
        flat[cid] == 0.0
        for key, cid in tracker.conn_index.items()
        if key not in legacy
    )
    graph = tracker.graph
    fallback = tracker._estimate
    d_dict, w_dict, p_dict = routed_edge_delays(
        graph, routing.routes, placement, device, fallback=fallback
    )
    d_flat, w_flat, p_flat = routed_edge_delays(
        graph, routing.routes, placement, device, fallback=fallback,
        forest=routing.forest,
    )
    delays_identical = (
        np.array_equal(d_dict, d_flat)
        and np.array_equal(w_dict, w_flat)
        and np.array_equal(p_dict, p_flat)
    )

    # Perturbed route sets: every call re-flattens a different 5% slice.
    net_ids = sorted(routing.routes)
    rerouted_sets = []
    for k in range(RETIME_REROUTED_FRACTION):
        routes = dict(routing.routes)
        for nid in net_ids[k::RETIME_REROUTED_FRACTION]:
            old = routes[nid]
            routes[nid] = NetRoute(old.net_id, old.nodes, connections=old.connections)
        rerouted_sets.append(routes)

    repeats = 15
    t_dict = t_steady = t_rerouted = None
    t_ext_dict = t_ext_flat = None
    for i in range(repeats):
        _, dt = _timed(lambda: tracker.update(routing.routes))
        t_dict = dt if t_dict is None else min(t_dict, dt)
        _, dt = _timed(lambda: tracker.update_flat(routing.routes))
        t_steady = dt if t_steady is None else min(t_steady, dt)
        routes = rerouted_sets[i % len(rerouted_sets)]
        _, dt = _timed(lambda r=routes: tracker.update_flat(r))
        t_rerouted = dt if t_rerouted is None else min(t_rerouted, dt)
        # The perturbed call left the fragment cache keyed on the perturbed
        # NetRoute objects; re-warm it (untimed) so the next iteration's
        # steady-state sample measures the truly-steady path.
        tracker.update_flat(routing.routes)
        _, dt = _timed(
            lambda: routed_edge_delays(
                graph, routing.routes, placement, device, fallback=fallback
            )
        )
        t_ext_dict = dt if t_ext_dict is None else min(t_ext_dict, dt)
        _, dt = _timed(
            lambda: routed_edge_delays(
                graph, routing.routes, placement, device, fallback=fallback,
                forest=routing.forest,
            )
        )
        t_ext_flat = dt if t_ext_flat is None else min(t_ext_flat, dt)

    steady_speedup = t_dict / t_steady
    rerouted_speedup = t_dict / t_rerouted
    extraction_speedup = t_ext_dict / t_ext_flat
    identical = crit_identical and delays_identical
    return {
        "workload": (
            f"{len(netlist.nets)} nets / {routing.wirelength} wires routed at "
            f"W={width}; {tracker.num_connections} connections, "
            f"{graph.num_edges} timing edges"
        ),
        "extraction_dict_seconds": t_ext_dict,
        "extraction_flat_seconds": t_ext_flat,
        "extraction_speedup": extraction_speedup,
        "retime_dict_seconds": t_dict,
        "retime_flat_steady_seconds": t_steady,
        "retime_flat_rerouted_seconds": t_rerouted,
        "retime_speedup": steady_speedup,
        "retime_speedup_rerouted": rerouted_speedup,
        "rerouted_fraction": 1.0 / RETIME_REROUTED_FRACTION,
        "speedup_floor": RETIME_SPEEDUP_FLOOR,
        "speedup_floor_met": steady_speedup >= RETIME_SPEEDUP_FLOOR,
        "criticality_identical": crit_identical,
        "delays_identical": delays_identical,
        "ok": identical and steady_speedup >= RETIME_SPEEDUP_FLOOR,
    }


def bench_resilience(netlist, arch, placement, width):
    """The resilient execution path must be free when nothing fails.

    Two claims are measured and gated (see RESILIENCE.md):

    * a fault-free ``route_resilient`` call returns the *bit-identical*
      result of a plain ``route`` call -- same wirelength, same iteration
      count, same per-net node lists -- with an empty recovery-event log
      (``check_quality.py`` fails the build on any degradation event);
    * the disabled injection hook ``repro.util.inject`` is cheap enough
      for hot loops: one module-global load + a ``None`` compare, measured
      here in ns/call next to a dict-lookup baseline for scale.

    The section runs under ``fault_plan(None)`` so a stray ambient
    ``REPRO_FAULT_PLAN`` in the environment cannot turn the fault-free
    measurement into a chaos run.
    """
    from repro.par.routing import route_resilient
    from repro.util import count_events, fault_plan, inject

    with fault_plan(None):
        device = build_device(arch.with_channel_width(width))
        base, base_s = _timed(
            lambda: route(netlist, placement, device, kernel="wavefront")
        )
        events = []
        res, res_s = _timed(
            lambda: route_resilient(
                netlist, placement, device, kernel="wavefront", events=events
            )
        )
        identical = (
            res.success == base.success
            and res.wirelength == base.wirelength
            and res.iterations == base.iterations
            and all(res.routes[k].nodes == r.nodes for k, r in base.routes.items())
        )
        zero_events = len(events) == 0
        degradations = count_events(events, "degraded-kernel")

        # ns/call of the disabled hook, best of 3 sweeps.
        calls = 200_000
        inject_ns = None
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(calls):
                inject("bench.site")
            dt = (time.perf_counter() - t0) / calls * 1e9
            inject_ns = dt if inject_ns is None else min(inject_ns, dt)

    return {
        "workload": (
            f"{len(netlist.nets)} nets at W={width}: route_resilient vs route, "
            f"disabled inject() x{calls}"
        ),
        "route_seconds": base_s,
        "route_resilient_seconds": res_s,
        "overhead_ratio": res_s / base_s if base_s else 1.0,
        "inject_disabled_ns_per_call": inject_ns,
        "identical_outputs": identical,
        "recovery_events": len(events),
        "degradation_events": degradations,
        "ok": identical and zero_events,
    }


def _tiled_netlist(base, k):
    """k disjoint copies of ``base`` as one netlist (synthetic scale-up)."""
    nl = PhysicalNetlist(f"{base.name}x{k}")
    for i in range(k):
        remap = {}
        for b in base.blocks:
            remap[b.id] = nl.add_block(f"{b.name}@{i}", b.kind)
        for net in base.nets:
            nl.add_net(f"{net.name}@{i}", remap[net.driver], [remap[s] for s in net.sinks])
    nl.validate()
    return nl


def bench_auto_crossover(netlist):
    """Re-measure the ``kernel="auto"`` astar/wavefront (non-)crossover.

    PR 4 guessed ``WAVEFRONT_AUTO_MIN_NODES = 120_000``; PR 5 measured it
    and found no crossover (astar ahead at every size), which retired the
    constant -- ``auto`` is now a fixed alias for astar (``AUTO_KERNEL``).
    This section keeps backing that with data: k tiled copies of the bench
    PE netlist (realistically local nets -- a random placement would starve
    the wavefront kernel's disjoint-box admission and measure the wrong
    thing) are quick-annealed and routed by both directed kernels on the
    growing RR graphs, the pure-Python astar next to the native-astar
    column (the shipped default, which only widens astar's lead), and the
    crossover is fitted from the measured python-astar time ratios
    (log-log linear).  ``crossed_in_range`` going True would mean the
    fixed alias is wrong -- ``auto_kernel_consistent`` flips and
    ``check_quality.py`` fails.
    """
    points = []
    for k in CROSSOVER_TILES:
        nl = _tiled_netlist(netlist, k) if k > 1 else netlist
        arch = auto_size(
            nl.num_logic_blocks() + nl.num_ff_blocks(), nl.num_io_blocks(),
            channel_width=CROSSOVER_CHANNEL_WIDTH,
        )
        device = build_device(arch)
        placement = place(nl, arch, seed=0, effort=0.1, kernel="batched").placement
        device.rr_graph.search_view()  # build the view outside the timed region
        with _python_kernels():
            astar_r, astar_s = _timed(
                lambda: route(nl, placement, device, kernel="astar")
            )
        nat_r, nat_s = _timed(lambda: route(nl, placement, device, kernel="astar"))
        wave_r, wave_s = _timed(lambda: route(nl, placement, device, kernel="wavefront"))
        points.append(
            {
                "tiles": k,
                "num_nodes": device.rr_graph.num_nodes,
                "num_nets": len(nl.nets),
                "astar_seconds": astar_s,
                "native_astar_seconds": nat_s,
                "wavefront_seconds": wave_s,
                "astar_over_wavefront": astar_s / wave_s,
                "native_over_wavefront": nat_s / wave_s,
                "success_astar": astar_r.success,
                "success_native": nat_r.success,
                "success_wavefront": wave_r.success,
                "native_matches_astar": (
                    nat_r.wirelength == astar_r.wirelength
                    and nat_r.iterations == astar_r.iterations
                ),
            }
        )

    fitted = None
    crossed = False
    usable = [p for p in points if p["success_astar"] and p["success_wavefront"]]
    if len(usable) >= 2:
        x = np.log([p["num_nodes"] for p in usable])
        y = np.log([p["astar_over_wavefront"] for p in usable])
        slope, intercept = np.polyfit(x, y, 1)
        crossed = any(p["astar_over_wavefront"] >= 1.0 for p in usable)
        if slope > 1e-9:
            fitted = float(np.exp(-intercept / slope))
    from repro.par.routing import AUTO_KERNEL

    return {
        "workload": (
            f"tiled bench PE x{CROSSOVER_TILES} at W={CROSSOVER_CHANNEL_WIDTH}, "
            "python-astar / native-astar vs wavefront route time"
        ),
        "points": points,
        "crossed_in_range": crossed,
        "fitted_crossover_nodes": fitted,
        "auto_kernel": AUTO_KERNEL,
        # The fixed alias is right as long as astar actually wins (ratio
        # < 1) at every usable point; the native backend only widens it.
        "auto_kernel_consistent": (
            AUTO_KERNEL == "astar"
            and all(p["astar_over_wavefront"] < 1.0 for p in usable)
        ),
        "ok": all(
            p["success_astar"] and p["success_wavefront"] and p["success_native"]
            and p["native_matches_astar"]
            for p in points
        ),
    }


def bench_native(netlist, arch, placement, width):
    """Native C kernels vs their pure-Python twins: warm speed + bit-identity.

    Both backends run warm (the search view and the compiled ``.so`` exist
    before the timed region) on the routing section's placement and channel
    width; the annealer comparison re-runs the batched placement kernel
    across the bench seeds.  Identity is literal: same route node lists,
    same placements, same exact-int costs and counters -- the compiled
    kernels are twins, not approximations.
    """
    from repro.native import status as native_status

    st = native_status()
    available = bool(st.get("astar")) and bool(st.get("annealer"))
    if not available:
        # No compiler on PATH or REPRO_NATIVE=0: the Python kernels are the
        # backend and there is nothing to compare.  Graceful absence is
        # covered by tests/test_native.py, not gated here.
        return {
            "workload": "native backend unavailable",
            "available": False,
            "build": st,
            "ok": True,
        }

    device = build_device(arch.with_channel_width(width))
    route(netlist, placement, device, kernel="astar", max_iterations=1)  # warm

    nat_route = py_route = None
    nat_s = py_s = None
    for _ in range(3):
        nat_i, dt_n = _timed(lambda: route(netlist, placement, device, kernel="astar"))
        with _python_kernels():
            py_i, dt_p = _timed(
                lambda: route(netlist, placement, device, kernel="astar")
            )
        if nat_s is None or dt_n < nat_s:
            nat_route, nat_s = nat_i, dt_n
        if py_s is None or dt_p < py_s:
            py_route, py_s = py_i, dt_p

    astar_identical = (
        nat_route.success == py_route.success
        and nat_route.wirelength == py_route.wirelength
        and nat_route.iterations == py_route.iterations
        and all(
            nat_route.routes[k].nodes == r.nodes
            for k, r in py_route.routes.items()
        )
    )
    # The timing objective exercises the lookahead's delay term; identity
    # must hold there too (not separately timed -- the expansion loop is
    # the same code path).
    t_nat = route(netlist, placement, device, kernel="astar", objective="timing")
    with _python_kernels():
        t_py = route(netlist, placement, device, kernel="astar", objective="timing")
    astar_timing_identical = (
        t_nat.wirelength == t_py.wirelength
        and all(t_nat.routes[k].nodes == r.nodes for k, r in t_py.routes.items())
    )

    def _place_all():
        return [
            place(netlist, arch, seed=s, effort=PLACE_EFFORT, kernel="batched")
            for s in PLACE_SEEDS
        ]

    _place_all()  # warm (first call pays the one-time ctypes binding setup)
    nat_places, anneal_nat_s = _timed(_place_all)
    with _python_kernels():
        py_places, anneal_py_s = _timed(_place_all)
    anneal_identical = all(
        a.cost == b.cost
        and a.moves_attempted == b.moves_attempted
        and a.moves_accepted == b.moves_accepted
        and a.temperature_steps == b.temperature_steps
        and {k: v.as_tuple() for k, v in a.placement.block_site.items()}
        == {k: v.as_tuple() for k, v in b.placement.block_site.items()}
        for a, b in zip(nat_places, py_places)
    )

    astar_speedup = py_s / nat_s
    anneal_speedup = anneal_py_s / anneal_nat_s
    identical = astar_identical and astar_timing_identical and anneal_identical
    return {
        "workload": (
            f"{len(netlist.nets)} nets, W={width}, "
            f"{device.rr_graph.num_nodes} RR nodes; anneal seeds {PLACE_SEEDS} "
            f"at effort {PLACE_EFFORT}"
        ),
        "available": True,
        "build": st,
        "astar_python_seconds": py_s,
        "astar_native_seconds": nat_s,
        "astar_speedup": astar_speedup,
        "astar_identical": astar_identical,
        "astar_timing_identical": astar_timing_identical,
        "anneal_python_seconds": anneal_py_s,
        "anneal_native_seconds": anneal_nat_s,
        "anneal_speedup": anneal_speedup,
        "anneal_identical": anneal_identical,
        "astar_speedup_floor": NATIVE_ASTAR_SPEEDUP_FLOOR,
        "anneal_speedup_floor": NATIVE_ANNEAL_SPEEDUP_FLOOR,
        "astar_speedup_floor_met": astar_speedup >= NATIVE_ASTAR_SPEEDUP_FLOOR,
        "anneal_speedup_floor_met": anneal_speedup >= NATIVE_ANNEAL_SPEEDUP_FLOOR,
        "ok": identical and astar_speedup >= 1.0 and anneal_speedup >= 1.0,
    }


def bench_reconfig(arch):
    """Multi-context scheduler: diff-switch identity + serving throughput.

    A seeded synthetic library over the bench grid's configuration layout
    (a shared base configuration, each context re-programming a random
    quarter of the logic tiles -- the structure micro-reconfiguration
    exploits) is replayed against a Zipf-skewed trace under a
    ``RECONFIG_BUDGET_FRACTION`` residency budget.  The gated invariant is
    bit-identity: after *every* diff switch the active plane must equal the
    target's full frame image.  Throughput numbers (contexts/sec, amortized
    switch cost) come from the modelled MiCAP frame costs; the scheduler's
    own Python overhead is recorded as wall time per request.
    """
    from repro.fpga.bitstream import Bitstream
    from repro.reconfig import (
        ContextLibrary,
        ReconfigScheduler,
        popularity_weights,
        replay,
        synthetic_trace,
    )

    device = build_device(arch)
    layout = device.config_layout
    clbs = [
        (x, y)
        for x in range(arch.width)
        for y in range(arch.height)
        if arch.contains_clb(x, y)
    ]
    rng = np.random.Generator(np.random.PCG64(2024))
    lut_mask = (1 << layout.lut_bits) - 1
    base = {site: int(rng.integers(1, lut_mask + 1)) for site in clbs}

    library = ContextLibrary(layout)
    weights = popularity_weights(RECONFIG_CONTEXTS, skew=1.2)
    for i in range(RECONFIG_CONTEXTS):
        bitstream = Bitstream(layout)
        for (x, y), bits in base.items():
            bitstream.set_lut_config(x, y, bits)
        for idx in rng.choice(len(clbs), size=max(1, len(clbs) // 4), replace=False):
            x, y = clbs[int(idx)]
            bitstream.set_lut_config(x, y, int(rng.integers(1, lut_mask + 1)))
        library.add_bitstream(f"ctx{i}", bitstream, criticality=float(weights[i]))

    total = library.total_frames()
    budget = max(1, int(total * RECONFIG_BUDGET_FRACTION))
    trace = synthetic_trace(
        library.names(), RECONFIG_TRACE_LENGTH, seed=1, skew=1.2, repeat=0.25
    )

    # Identity pass: every diff-applied switch must land bit-identical to a
    # full reconfiguration of the target.  This is the gated claim.
    scheduler = ReconfigScheduler(library, budget_frames=budget)
    diff_identical = all(
        scheduler.switch_to(name) is not None
        and scheduler.active_image == library[name].image
        for name in trace
    )

    report, wall_s = _timed(
        lambda: replay(ReconfigScheduler(library, budget_frames=budget), trace),
        repeats=3,
    )

    return {
        "workload": (
            f"{RECONFIG_CONTEXTS} contexts x {total} frames on "
            f"{arch.width}x{arch.height} ({len(clbs)} logic tiles), "
            f"{RECONFIG_TRACE_LENGTH}-request Zipf trace, budget {budget} frames"
        ),
        "num_contexts": RECONFIG_CONTEXTS,
        "library_frames": total,
        "budget_frames": budget,
        "requests": report.requests,
        "hit_rate": report.hit_rate,
        "contexts_per_sec": report.contexts_per_sec,
        "amortized_switch_ms": report.amortized_switch_ms,
        "frame_savings": report.frame_savings,
        "evictions": report.evictions,
        "rejected_admissions": report.rejected_admissions,
        "scheduler_wall_seconds": wall_s,
        "wall_us_per_request": wall_s / report.requests * 1e6,
        "diff_identical": diff_identical,
        "ok": diff_identical and report.hit_rate > 0.0 and report.frame_savings > 0.0,
    }


def bench_obs(netlist, arch, placement, width):
    """Observability overhead: disabled span cost + traced-run slowdown.

    Two gated claims (see OBSERVABILITY.md): with tracing *disabled* a
    ``span()`` call is one global load plus a ``None`` compare, measured
    here in ns/call; with tracing *enabled* the same place+route workload
    slows down by at most ``OBS_SLOWDOWN_CEILING`` (min-of-N on both sides,
    interleaved so machine-load drift hits them alike), produces
    bit-identical results, and leaves a valid Chrome ``trace_event`` file
    at ``BENCH_trace.json`` (loadable in chrome://tracing / Perfetto;
    uploaded as a CI artifact).
    """
    from repro.obs.trace import clear as obs_clear
    from repro.obs.trace import span, tracing

    device = build_device(arch.with_channel_width(width))
    route(netlist, placement, device, kernel="astar", max_iterations=1)  # warm view

    obs_clear()  # measure the disabled fast path, not an inherited tracer
    n = 200_000
    t0 = time.perf_counter_ns()
    for _ in range(n):
        with span("bench.obs"):
            pass
    disabled_ns = (time.perf_counter_ns() - t0) / n

    def workload():
        placed = place(netlist, arch, seed=0, effort=PLACE_EFFORT)
        routed = route(netlist, placement, device, kernel="astar")
        return placed, routed

    off = on = None
    off_s = on_s = None
    for _ in range(3):
        off_i, dt_off = _timed(workload)
        with tracing(str(TRACE_PATH)):
            on_i, dt_on = _timed(workload)
        if off_s is None or dt_off < off_s:
            off, off_s = off_i, dt_off
        if on_s is None or dt_on < on_s:
            on, on_s = on_i, dt_on

    slowdown = on_s / off_s
    identical = (
        on[0].cost == off[0].cost
        and on[0].placement.block_site == off[0].placement.block_site
        and on[1].wirelength == off[1].wirelength
        and all(on[1].routes[k].nodes == r.nodes for k, r in off[1].routes.items())
    )

    trace_events = []
    try:
        trace_events = json.loads(TRACE_PATH.read_text())
        trace_valid = isinstance(trace_events, list)
    except (OSError, json.JSONDecodeError):
        trace_valid = False
    names = {e.get("name") for e in trace_events} if trace_valid else set()
    trace_complete = {"par.place", "par.route", "route.overuse", "place.cost"} <= names

    telemetry = on[1].telemetry or {}
    return {
        "workload": (
            f"place(effort={PLACE_EFFORT}) + astar route of {len(netlist.nets)} "
            f"nets at W={width}, traced vs untraced, min-of-3 interleaved"
        ),
        "disabled_ns_per_call": disabled_ns,
        "disabled_ns_ceiling": OBS_DISABLED_NS_CEILING,
        "untraced_seconds": off_s,
        "traced_seconds": on_s,
        "traced_slowdown": slowdown,
        "slowdown_ceiling": OBS_SLOWDOWN_CEILING,
        "identical_outputs": identical,
        "trace_path": str(TRACE_PATH),
        "trace_events": len(trace_events),
        "chrome_trace_valid": trace_valid,
        "trace_complete": trace_complete,
        "route_iterations_in_telemetry": len(
            telemetry.get("overuse_per_iteration", ())
        ),
        "ok": (
            disabled_ns <= OBS_DISABLED_NS_CEILING
            and slowdown <= OBS_SLOWDOWN_CEILING
            and identical
            and trace_valid
            and trace_complete
        ),
    }


def main() -> int:
    circuit, network, netlist, arch = _build_workload()

    print("benchmarking simulation kernel ...")
    sim = bench_simulation(circuit)
    print("benchmarking placement kernels ...")
    placement_result, placement = bench_placement(netlist, arch)
    print("benchmarking routing kernels ...")
    routing_result, width = bench_routing(netlist, arch, placement)
    print("benchmarking timing-driven PAR ...")
    timing_result, flow_placement, _flow_route = bench_timing(
        network, netlist, arch, placement, width
    )
    print("benchmarking flat-forest retime ...")
    retime_result = bench_retime(netlist, arch, flow_placement, width)
    print("benchmarking resilient execution path ...")
    resilience_result = bench_resilience(netlist, arch, placement, width)
    print("benchmarking auto-kernel crossover ...")
    crossover_result = bench_auto_crossover(netlist)
    print("benchmarking native kernels ...")
    native_result = bench_native(netlist, arch, placement, width)
    print("benchmarking multi-context reconfiguration ...")
    reconfig_result = bench_reconfig(arch)
    print("benchmarking observability overhead ...")
    obs_result = bench_obs(netlist, arch, placement, width)

    report = {
        "config": {
            "fp_format": {"we": BENCH_FP_FORMAT.we, "wf": BENCH_FP_FORMAT.wf},
            "full_mode": FULL_MODE,
            "sim_patterns": SIM_PATTERNS,
            "place_seeds": PLACE_SEEDS,
            "place_effort": PLACE_EFFORT,
            "batched_effort": BATCHED_EFFORT,
            "channel_width_start": CHANNEL_WIDTH,
            "python": platform.python_version(),
        },
        "kernels": {
            "simulation": sim,
            "placement": placement_result,
            "routing": routing_result,
            "timing": timing_result,
            "retime": retime_result,
            "resilience": resilience_result,
            "auto_crossover": crossover_result,
            "native": native_result,
            "reconfig": reconfig_result,
            "obs": obs_result,
        },
    }
    # Sections owned by satellite benches (e.g. bench_service_throughput's
    # kernels.service) are carried over, so re-running this bench never
    # erases a gate another bench wrote.
    carried = set()
    if RESULT_PATH.exists():
        try:
            previous = json.loads(RESULT_PATH.read_text()).get("kernels", {})
        except ValueError:
            previous = {}
        for name, section in previous.items():
            if name not in report["kernels"]:
                report["kernels"][name] = section
                carried.add(name)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    ok = True
    for name, entry in report["kernels"].items():
        if name in carried:
            print(f"{name:11s} ...  carried over (re-run its own bench to refresh)")
            continue
        flag = "OK " if entry["ok"] else "FAIL"
        ok = ok and entry["ok"]
        if name == "routing":
            print(
                f"{name:11s} {flag} wavefront={entry['wavefront_seconds'] * 1000:8.1f}ms "
                f"astar={entry['astar_seconds'] * 1000:8.1f}ms "
                f"fast={entry['fast_seconds'] * 1000:8.1f}ms "
                f"wf_vs_astar={entry['speedup_wavefront_vs_astar']:5.2f}x "
                f"wf_wl_ratio={entry['wavefront_wirelength_ratio']:.4f} "
                f"W={entry['channel_width_used']}"
            )
        elif name == "timing":
            print(
                f"{name:11s} {flag} cp {entry['critical_path_ns_wirelength']:6.1f}ns -> "
                f"route {entry['critical_path_ns_timing_route']:6.1f}ns / "
                f"flow {entry['critical_path_ns_timing_flow']:6.1f}ns "
                f"(ratio {entry['delay_ratio_flow']:.3f}, "
                f"wl_band {entry['timing_wl_band_ratio']:.4f}; placer vs "
                f"candidates cp {entry['placer_cp_ratio']:.3f}x at "
                f"{entry['placer_time_ratio']:.2f}x time)"
            )
        elif name == "retime":
            print(
                f"{name:11s} {flag} dict {entry['retime_dict_seconds'] * 1000:6.2f}ms -> "
                f"flat {entry['retime_flat_steady_seconds'] * 1000:5.2f}ms steady / "
                f"{entry['retime_flat_rerouted_seconds'] * 1000:5.2f}ms rerouted "
                f"({entry['retime_speedup']:.2f}x / {entry['retime_speedup_rerouted']:.2f}x, "
                f"extract {entry['extraction_speedup']:.2f}x, "
                f"identical={entry['criticality_identical'] and entry['delays_identical']})"
            )
        elif name == "resilience":
            print(
                f"{name:11s} {flag} route {entry['route_seconds'] * 1000:7.1f}ms vs "
                f"resilient {entry['route_resilient_seconds'] * 1000:7.1f}ms "
                f"(x{entry['overhead_ratio']:.3f}), disabled inject "
                f"{entry['inject_disabled_ns_per_call']:.0f}ns/call, "
                f"events={entry['recovery_events']}"
            )
        elif name == "auto_crossover":
            pts = " ".join(
                f"{p['num_nodes'] // 1000}k:{p['astar_over_wavefront']:.2f}"
                f"/{p['native_over_wavefront']:.2f}"
                for p in entry["points"]
            )
            print(
                f"{name:11s} {flag} py/native-astar over wavefront [{pts}] "
                f"crossed={entry['crossed_in_range']} "
                f"auto={entry['auto_kernel']}"
            )
        elif name == "native":
            if not entry.get("available"):
                print(f"{name:11s} {flag} {entry['workload']}")
            else:
                print(
                    f"{name:11s} {flag} astar py "
                    f"{entry['astar_python_seconds'] * 1000:7.1f}ms -> native "
                    f"{entry['astar_native_seconds'] * 1000:6.1f}ms "
                    f"({entry['astar_speedup']:.2f}x); anneal py "
                    f"{entry['anneal_python_seconds'] * 1000:7.1f}ms -> native "
                    f"{entry['anneal_native_seconds'] * 1000:6.1f}ms "
                    f"({entry['anneal_speedup']:.2f}x); identical="
                    f"{entry['astar_identical'] and entry['anneal_identical']}"
                )
        elif name == "reconfig":
            print(
                f"{name:11s} {flag} {entry['contexts_per_sec']:6.0f} ctx/s "
                f"({entry['amortized_switch_ms']:.3f}ms/switch modelled, "
                f"{entry['wall_us_per_request']:.0f}us/req wall), "
                f"hit_rate={entry['hit_rate']:.2f} "
                f"frame_savings={entry['frame_savings']:.2f} "
                f"identical={entry['diff_identical']}"
            )
        elif name == "obs":
            print(
                f"{name:11s} {flag} disabled span "
                f"{entry['disabled_ns_per_call']:.0f}ns/call, traced slowdown "
                f"x{entry['traced_slowdown']:.3f} "
                f"(untraced {entry['untraced_seconds'] * 1000:.1f}ms), "
                f"identical={entry['identical_outputs']} "
                f"trace={entry['trace_events']}ev valid={entry['chrome_trace_valid']}"
            )
        elif name == "placement":
            b = entry["batched"]
            print(
                f"{name:11s} {flag} incremental speedup={entry['speedup']:5.2f}x; "
                f"batched {b['speedup_vs_incremental']:5.2f}x at "
                f"hpwl_ratio={b['mean_hpwl_ratio']:.4f}"
            )
        else:
            print(
                f"{name:11s} {flag} speedup={entry['speedup']:6.2f}x  "
                f"ref={entry['reference_seconds'] * 1000:8.1f}ms  "
                f"fast={entry['fast_seconds'] * 1000:8.1f}ms"
            )
    print(f"wrote {RESULT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
