"""Hot-path kernel benchmark: simulation, placement, routing.

Times the CAD hot paths on fixed seeds, comparing the reworked kernels
against the seed ("reference") implementations that are kept behind the same
APIs, and writes a machine-readable ``BENCH_hotpaths.json`` at the repo root
so future PRs have a perf trajectory.

Run with::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py

The workload is the paper's conventional Processing Element (reduced FloPoCo
format by default; ``REPRO_FULL=1`` switches to the paper's 6/26 format and
skips the slowest reference baselines so the nightly run stays bounded).

Three comparisons are made:

* **simulation** -- compiled engine vs legacy interpreter, bit-identical;
* **placement** -- ``incremental`` vs ``reference`` (trajectory-identical)
  and ``batched`` (PCG64 block randomness + O(1) window moves) vs
  ``incremental`` at *matched quality*: the batched effort is chosen so its
  mean HPWL across the seed sweep is within the quality band, and the
  speedup is reported at that iso-quality point;
* **routing** -- the vectorized delta-stepping ``wavefront`` kernel (PR 3
  default) and the directed incremental ``astar`` kernel (PR 2) vs the PR 1
  ``fast`` kernel, all at the same routable channel width.  The benchmark
  first finds the minimum routable width for the placement (the W=12
  default of the reduced format is *not* routable -- routing it only
  measured non-convergence), records it as ``channel_width_used``, and
  checks both re-baselined kernels' route quality against the reference
  route (``wavefront`` carries the tighter 1.02x band from its issue);
* **timing** -- the PR 4 criticality-driven objective at the same minimum
  routable width: routed ``critical_path_ns`` + ``logic_depth`` of the
  default (wirelength) flow vs ``objective="timing"`` both route-only (same
  placement) and flow-level (timing-driven placement), plus the measured
  cost of one criticality update per PathFinder iteration.  Gated by
  ``check_quality.py``: the timing run must converge, must not regress
  delay, and must stay inside the wirelength band of the reference route on
  its own placement.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_config import BENCH_FP_FORMAT, FULL_MODE

from repro.core.pe import ProcessingElementSpec, build_pe_design
from repro.fpga.architecture import auto_size
from repro.fpga.device import build_device
from repro.netlist.engine import compile_circuit
from repro.netlist.simulate import (
    random_patterns,
    simulate_patterns,
    simulate_patterns_reference,
)
from repro.par.cache import PaRCache
from repro.par.flow import timing_driven_placement
from repro.par.metrics import minimum_channel_width
from repro.par.netlist import from_mapped_network
from repro.par.placement import place
from repro.par.routing import route
from repro.synth.optimize import optimize
from repro.techmap import map_conventional
from repro.timing import analyze
from repro.timing.sta import CriticalityTracker

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

SIM_PATTERNS = 1024
SIM_REPEATS = 20
SIM_REF_REPEATS = 5
PLACE_SEEDS = [0, 1, 2, 3, 4]
PLACE_EFFORT = 0.25          #: effort of the reference/incremental kernels
BATCHED_EFFORT = 0.1         #: iso-quality effort of the batched kernel
PLACE_QUALITY_BAND = 1.02    #: batched mean HPWL must be <= band * incremental
ROUTE_QUALITY_BAND = 1.05    #: astar wirelength must be <= band * reference
WAVEFRONT_QUALITY_BAND = 1.02  #: wavefront wirelength must be <= band * reference
ROUTE_SPEEDUP_FLOOR = 2.5    #: recorded astar-vs-fast floor (typical 2.5-3.4x)
WAVEFRONT_SPEEDUP_FLOOR = 2.0  #: recorded wavefront-vs-astar target (see issue 3)
PLACE_SPEEDUP_FLOOR = 1.5    #: recorded batched-vs-incremental iso-quality floor
CHANNEL_WIDTH = 12           #: starting point of the routable-width search
TIMING_DELAY_TARGET = 0.90   #: recorded flow-level delay-ratio target (>=10% better)
TIMING_WL_BAND = 1.02        #: timing route wirelength vs reference, same placement


def _build_workload():
    spec = ProcessingElementSpec(fmt=BENCH_FP_FORMAT, num_inputs=2, counter_width=4)
    circuit, _ = optimize(build_pe_design(spec).circuit)
    network = map_conventional(circuit)
    netlist = from_mapped_network(network)
    arch = auto_size(
        netlist.num_logic_blocks() + netlist.num_ff_blocks(),
        netlist.num_io_blocks(),
        channel_width=CHANNEL_WIDTH,
    )
    return circuit, network, netlist, arch


def _timed(fn, repeats=1):
    """Best-of-N wall time (interleaved noise on shared CI boxes is real)."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


def bench_simulation(circuit):
    patterns = random_patterns(circuit, SIM_PATTERNS)
    compile_circuit(circuit)  # compile outside the timed region (one-time cost)
    simulate_patterns(circuit, patterns, SIM_PATTERNS)  # warm the codegen path

    t0 = time.perf_counter()
    for _ in range(SIM_REPEATS):
        fast = simulate_patterns(circuit, patterns, SIM_PATTERNS)
    fast_s = (time.perf_counter() - t0) / SIM_REPEATS

    t0 = time.perf_counter()
    for _ in range(SIM_REF_REPEATS):
        ref = simulate_patterns_reference(circuit, patterns, SIM_PATTERNS)
    ref_s = (time.perf_counter() - t0) / SIM_REF_REPEATS

    node_evals = len(circuit.ops) * SIM_PATTERNS
    return {
        "workload": f"PE circuit, {len(circuit.ops)} nodes x {SIM_PATTERNS} patterns",
        "reference_seconds": ref_s,
        "fast_seconds": fast_s,
        "speedup": ref_s / fast_s,
        "ops_per_sec_reference": node_evals / ref_s,
        "ops_per_sec_fast": node_evals / fast_s,
        "identical_outputs": ref == fast,
        "ok": ref == fast,
    }


def bench_placement(netlist, arch):
    seed0 = PLACE_SEEDS[0]
    ref, ref_s = _timed(
        lambda: place(netlist, arch, seed=seed0, effort=PLACE_EFFORT, kernel="reference")
    )

    inc_results, inc_times = [], []
    bat_results, bat_times = [], []
    for seed in PLACE_SEEDS:
        r, dt = _timed(
            lambda s=seed: place(netlist, arch, seed=s, effort=PLACE_EFFORT,
                                 kernel="incremental")
        )
        inc_results.append(r)
        inc_times.append(dt)
        r, dt = _timed(
            lambda s=seed: place(netlist, arch, seed=s, effort=BATCHED_EFFORT,
                                 kernel="batched")
        )
        bat_results.append(r)
        bat_times.append(dt)

    fast = inc_results[0]
    identical = (
        fast.cost == ref.cost
        and fast.moves_attempted == ref.moves_attempted
        and fast.moves_accepted == ref.moves_accepted
        and all(
            fast.placement.block_site[b].as_tuple() == s.as_tuple()
            for b, s in ref.placement.block_site.items()
        )
    )
    exact_ints = all(
        isinstance(r.cost, int) for r in [ref, *inc_results, *bat_results]
    )
    inc_hpwl = [r.cost for r in inc_results]
    bat_hpwl = [r.cost for r in bat_results]
    hpwl_ratio = statistics.mean(bat_hpwl) / statistics.mean(inc_hpwl)
    batched_speedup = sum(inc_times) / sum(bat_times)
    quality_ok = hpwl_ratio <= PLACE_QUALITY_BAND

    return {
        "workload": (
            f"{len(netlist.blocks)} blocks / {len(netlist.nets)} nets on "
            f"{arch.width}x{arch.height}, seeds={PLACE_SEEDS}, "
            f"effort={PLACE_EFFORT} (batched iso-quality at {BATCHED_EFFORT})"
        ),
        "reference_seconds": ref_s,
        "fast_seconds": inc_times[0],
        "speedup": ref_s / inc_times[0],
        "hpwl_reference": ref.cost,
        "hpwl_fast": fast.cost,
        "identical_outputs": identical,
        "exact_int_hpwl": exact_ints,
        "batched": {
            "effort": BATCHED_EFFORT,
            "seconds_per_seed": bat_times,
            "incremental_seconds_per_seed": inc_times,
            "speedup_vs_incremental": batched_speedup,
            "hpwl_per_seed": bat_hpwl,
            "incremental_hpwl_per_seed": inc_hpwl,
            "mean_hpwl_ratio": hpwl_ratio,
            "quality_band": PLACE_QUALITY_BAND,
            "quality_ok": quality_ok,
        },
        # The exit-code gate is correctness/quality only; wall-clock floors
        # are recorded but machine-load dependent (see check_quality.py).
        "speedup_floor_met": batched_speedup >= PLACE_SPEEDUP_FLOOR,
        "ok": identical and exact_ints and quality_ok,
    }, fast.placement


def bench_routing(netlist, arch, placement):
    # The default benchmark width is not necessarily routable (at the reduced
    # format's W=12 every kernel ends congested); find the minimum routable
    # width for this placement and benchmark every kernel there.  The search
    # probes with the scalar astar kernel (see minimum_channel_width: probes
    # below the minimum are non-convergent by construction, which is the
    # scalar kernel's fast case and the vectorized kernel's slow one); the
    # wavefront kernel's convergence at the found width is gated below.
    workers = os.cpu_count() or 1
    min_cw = minimum_channel_width(
        netlist, placement, arch,
        low=max(2, CHANNEL_WIDTH - 4), high=CHANNEL_WIDTH * 2,
        max_router_iterations=15,
        route_kernel="astar",
        workers=min(workers, 4),
        cache=PaRCache.from_env(),
    )
    width = min_cw.min_channel_width
    device = build_device(arch.with_channel_width(width))
    route(netlist, placement, device, kernel="astar", max_iterations=1)  # warm view

    if FULL_MODE:
        ref = None
        ref_s = None
    else:
        ref, ref_s = _timed(lambda: route(netlist, placement, device, kernel="reference"))
    # Interleave the fast/astar/wavefront measurements so drifting machine
    # load hits all kernels alike; keep the best of each.
    fast = astar = wave = None
    fast_s = astar_s = wave_s = None
    for _ in range(3):
        fast_i, dt_f = _timed(lambda: route(netlist, placement, device, kernel="fast"))
        astar_i, dt_a = _timed(lambda: route(netlist, placement, device, kernel="astar"))
        wave_i, dt_w = _timed(
            lambda: route(netlist, placement, device, kernel="wavefront")
        )
        if fast_s is None or dt_f < fast_s:
            fast, fast_s = fast_i, dt_f
        if astar_s is None or dt_a < astar_s:
            astar, astar_s = astar_i, dt_a
        if wave_s is None or dt_w < wave_s:
            wave, wave_s = wave_i, dt_w

    if ref is not None:
        identical = (
            fast.success == ref.success
            and fast.wirelength == ref.wirelength
            and fast.iterations == ref.iterations
            and all(fast.routes[k].nodes == r.nodes for k, r in ref.routes.items())
        )
        wl_baseline = ref.wirelength
    else:
        identical = True  # fast == reference is asserted in the default run
        wl_baseline = fast.wirelength

    wl_ratio = astar.wirelength / wl_baseline
    wave_ratio = wave.wirelength / wl_baseline
    astar_speedup = fast_s / astar_s
    wave_speedup = astar_s / wave_s
    baselines_converged = fast.success and (ref is None or ref.success)
    quality_ok = (
        astar.success and wl_ratio <= ROUTE_QUALITY_BAND
        and wave.success and wave_ratio <= WAVEFRONT_QUALITY_BAND
    )

    entry = {
        "workload": (
            f"{len(netlist.nets)} nets, W={width} (min routable; "
            f"W={CHANNEL_WIDTH} was congested), {device.rr_graph.num_nodes} RR nodes"
        ),
        "channel_width_used": width,
        "min_cw_attempts": {str(w): ok for w, ok in sorted(min_cw.attempts.items())},
        "fast_seconds": fast_s,
        "astar_seconds": astar_s,
        "wavefront_seconds": wave_s,
        "speedup_astar_vs_fast": astar_speedup,
        "speedup_wavefront_vs_astar": wave_speedup,
        "wirelength_fast": fast.wirelength,
        "wirelength_astar": astar.wirelength,
        "wirelength_wavefront": wave.wirelength,
        "astar_wirelength_ratio": wl_ratio,
        "wavefront_wirelength_ratio": wave_ratio,
        "iterations_fast": fast.iterations,
        "iterations_astar": astar.iterations,
        "iterations_wavefront": wave.iterations,
        "success_fast": fast.success,
        "success_astar": astar.success,
        "success_wavefront": wave.success,
        "identical_outputs": identical,
        "quality_band": ROUTE_QUALITY_BAND,
        "wavefront_quality_band": WAVEFRONT_QUALITY_BAND,
        "quality_ok": quality_ok,
        "baselines_converged": baselines_converged,
        "speedup_floor_met": astar_speedup >= ROUTE_SPEEDUP_FLOOR,
        "wavefront_speedup_floor_met": wave_speedup >= WAVEFRONT_SPEEDUP_FLOOR,
        "ok": identical and quality_ok and baselines_converged,
    }
    if ref is not None:
        entry.update(
            {
                "reference_seconds": ref_s,
                "speedup": ref_s / astar_s,
                "wirelength_reference": ref.wirelength,
                "success_reference": ref.success,
            }
        )
    return entry, width


def bench_timing(network, netlist, arch, placement, width):
    """Criticality-driven PAR vs the default flow at the min routable width.

    Three measurements at the same channel width:

    * the default flow's route (wirelength objective on the bench
      placement) -- the delay baseline;
    * ``objective="timing"`` route-only on the *same* placement, isolating
      the router's contribution;
    * the full timing flow (``timing_driven_placement`` + timing route) --
      the headline delay-ratio number gated by ``check_quality.py``.

    The timing route's wirelength is banded against the reference-kernel
    route *on the timing placement* (the router-quality claim), and one
    criticality update is timed to document the per-PathFinder-iteration
    cost of the feedback loop.
    """
    device = build_device(arch.with_channel_width(width))

    base = route(netlist, placement, device, kernel="wavefront")
    a_base = analyze(netlist, base, device, placement=placement)

    t0 = time.perf_counter()
    timed_route = route(
        netlist, placement, device, kernel="wavefront",
        objective="timing", criticality_exponent=2.0,
    )
    route_timing_s = time.perf_counter() - t0
    a_route = analyze(netlist, timed_route, device, placement=placement)

    t0 = time.perf_counter()
    flow_placement = timing_driven_placement(
        netlist, arch, seed=PLACE_SEEDS[0], effort=PLACE_EFFORT
    ).placement
    place_timing_s = time.perf_counter() - t0
    flow_route = route(
        netlist, flow_placement, device, kernel="wavefront",
        objective="timing", criticality_exponent=2.0,
    )
    a_flow = analyze(netlist, flow_route, device, placement=flow_placement)
    ref_on_flow = route(netlist, flow_placement, device, kernel="reference")

    # Cost of one criticality update (route-tree walk + two STA scans),
    # paid once per PathFinder iteration in timing mode.
    tracker = CriticalityTracker(netlist, flow_placement, device)
    t0 = time.perf_counter()
    tracker.update(flow_route.routes)
    crit_update_s = time.perf_counter() - t0

    delay_ratio_route = a_route.critical_path_ns / a_base.critical_path_ns
    delay_ratio_flow = a_flow.critical_path_ns / a_base.critical_path_ns
    wl_band_ratio = flow_route.wirelength / ref_on_flow.wirelength
    converged = base.success and timed_route.success and flow_route.success
    depth_ok = a_base.logic_depth == network.depth()
    ok = (
        converged
        and depth_ok
        and delay_ratio_flow <= 1.0
        and wl_band_ratio <= TIMING_WL_BAND
    )
    return {
        "workload": (
            f"{len(netlist.nets)} nets at W={width} (min routable), "
            f"STA over {len(netlist.blocks)} blocks"
        ),
        "channel_width_used": width,
        "logic_depth": a_base.logic_depth,
        "logic_depth_matches_network": depth_ok,
        "critical_path_ns_wirelength": a_base.critical_path_ns,
        "critical_path_ns_timing_route": a_route.critical_path_ns,
        "critical_path_ns_timing_flow": a_flow.critical_path_ns,
        "delay_ratio_route": delay_ratio_route,
        "delay_ratio_flow": delay_ratio_flow,
        "delay_target": TIMING_DELAY_TARGET,
        "delay_target_met": delay_ratio_flow <= TIMING_DELAY_TARGET,
        "wirelength_wirelength": base.wirelength,
        "wirelength_timing_route": timed_route.wirelength,
        "wirelength_timing_flow": flow_route.wirelength,
        "wirelength_reference_on_flow_placement": ref_on_flow.wirelength,
        "timing_wl_band": TIMING_WL_BAND,
        "timing_wl_band_ratio": wl_band_ratio,
        "success_wirelength": base.success,
        "success_timing_route": timed_route.success,
        "success_timing_flow": flow_route.success,
        "iterations_timing_route": timed_route.iterations,
        "iterations_timing_flow": flow_route.iterations,
        "route_timing_seconds": route_timing_s,
        "timing_placement_seconds": place_timing_s,
        "criticality_update_seconds": crit_update_s,
        "ok": ok,
    }


def main() -> int:
    circuit, network, netlist, arch = _build_workload()

    print("benchmarking simulation kernel ...")
    sim = bench_simulation(circuit)
    print("benchmarking placement kernels ...")
    placement_result, placement = bench_placement(netlist, arch)
    print("benchmarking routing kernels ...")
    routing_result, width = bench_routing(netlist, arch, placement)
    print("benchmarking timing-driven PAR ...")
    timing_result = bench_timing(network, netlist, arch, placement, width)

    report = {
        "config": {
            "fp_format": {"we": BENCH_FP_FORMAT.we, "wf": BENCH_FP_FORMAT.wf},
            "full_mode": FULL_MODE,
            "sim_patterns": SIM_PATTERNS,
            "place_seeds": PLACE_SEEDS,
            "place_effort": PLACE_EFFORT,
            "batched_effort": BATCHED_EFFORT,
            "channel_width_start": CHANNEL_WIDTH,
            "python": platform.python_version(),
        },
        "kernels": {
            "simulation": sim,
            "placement": placement_result,
            "routing": routing_result,
            "timing": timing_result,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    ok = True
    for name, entry in report["kernels"].items():
        flag = "OK " if entry["ok"] else "FAIL"
        ok = ok and entry["ok"]
        if name == "routing":
            print(
                f"{name:11s} {flag} wavefront={entry['wavefront_seconds'] * 1000:8.1f}ms "
                f"astar={entry['astar_seconds'] * 1000:8.1f}ms "
                f"fast={entry['fast_seconds'] * 1000:8.1f}ms "
                f"wf_vs_astar={entry['speedup_wavefront_vs_astar']:5.2f}x "
                f"wf_wl_ratio={entry['wavefront_wirelength_ratio']:.4f} "
                f"W={entry['channel_width_used']}"
            )
        elif name == "timing":
            print(
                f"{name:11s} {flag} cp {entry['critical_path_ns_wirelength']:6.1f}ns -> "
                f"route {entry['critical_path_ns_timing_route']:6.1f}ns / "
                f"flow {entry['critical_path_ns_timing_flow']:6.1f}ns "
                f"(ratio {entry['delay_ratio_flow']:.3f}, "
                f"wl_band {entry['timing_wl_band_ratio']:.4f}, "
                f"crit_update {entry['criticality_update_seconds'] * 1000:.1f}ms)"
            )
        elif name == "placement":
            b = entry["batched"]
            print(
                f"{name:11s} {flag} incremental speedup={entry['speedup']:5.2f}x; "
                f"batched {b['speedup_vs_incremental']:5.2f}x at "
                f"hpwl_ratio={b['mean_hpwl_ratio']:.4f}"
            )
        else:
            print(
                f"{name:11s} {flag} speedup={entry['speedup']:6.2f}x  "
                f"ref={entry['reference_seconds'] * 1000:8.1f}ms  "
                f"fast={entry['fast_seconds'] * 1000:8.1f}ms"
            )
    print(f"wrote {RESULT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
