"""Service-daemon throughput and crash-recovery benchmark.

Drives an in-process :class:`repro.service.daemon.ServiceDaemon` through
the three temperature tiers a long-running PAR service actually sees:

* **cold miss** -- a job class (circuit family) no worker has built yet:
  pays synthesis + technology mapping + the full physical flow;
* **near hit** -- a known class with new flow knobs (seed): the worker's
  memoized front end skips straight to place-and-route;
* **hit** -- an exact duplicate spec: coalesced onto the in-flight run or
  served from the result table, never recomputed.

Measured: unique-job throughput (jobs/sec), p50/p99 completion latency
(from the ``service.latency_ms`` histogram), and the coalescing hit count
for the duplicate tier.  Contract checks ride along:

* **bit identity** -- every service-produced digest equals a direct
  in-process :func:`~repro.service.spec.execute_job` of the same spec;
* **fault-free hygiene** -- the mixed workload must finish with zero
  recovery events, zero worker restarts and zero journal drops (the
  fault-free contract of RESILIENCE.md, service edition);
* **crash recovery** -- a separate scenario kills a worker mid-job
  (``service.exec=crash:1:@worker``) and requires the job to complete
  with a bit-identical digest anyway.

Results merge into ``BENCH_hotpaths.json`` as ``kernels.service`` (the
section ``benchmarks/check_quality.py`` gates); existing sections from
``bench_hotpaths.py`` are preserved.

Run with::

    python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.service import JobSpec, ServiceConfig, ServiceDaemon, execute_job
from repro.util import FaultPlan, fault_plan

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

#: Gate floors/ceilings (mirrored loosely in check_quality.py).
JOBS_PER_SEC_FLOOR = 0.2
P99_LATENCY_CEILING_MS = 30_000.0

#: The bench circuit family: the smallest PEs that run the full flow.
_BASE = dict(
    we=3, wf=4, num_inputs=2, channel_width=12,
    placement_effort=0.3, router_iterations=20,
)

#: Mixed workload -- two job classes (counter widths), several seeds each,
#: plus exact duplicates of both classes.
COLD = [
    JobSpec(**_BASE, counter_width=4, seed=1),
    JobSpec(**_BASE, counter_width=5, seed=1),
]
NEAR = [
    JobSpec(**_BASE, counter_width=4, seed=2),
    JobSpec(**_BASE, counter_width=4, seed=3),
    JobSpec(**_BASE, counter_width=5, seed=2),
]
DUPLICATES = [COLD[0], COLD[1], NEAR[0]]
UNIQUE = COLD + NEAR


def _config(journal_dir, **overrides):
    defaults = dict(
        workers=2, queue_depth=64, deadline_s=120.0,
        retry_attempts=3, retry_backoff_s=0.05,
        journal_dir=journal_dir,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _mixed_workload(direct_digests):
    daemon = ServiceDaemon(_config(tempfile.mkdtemp(prefix="svc-bench-")))
    await daemon.start()
    try:
        started = time.perf_counter()
        keys = []
        for spec in UNIQUE:
            response = await daemon.submit(spec.to_payload())
            assert response["ok"], response
            keys.append(response["job"])
        # Duplicate tier: submitted while the originals are in flight (or
        # already finished -- both paths must coalesce, never recompute).
        for spec in DUPLICATES:
            response = await daemon.submit(spec.to_payload())
            assert response["ok"] and response.get("coalesced"), response
        for key in keys:
            assert await daemon.wait(key, timeout=600)
        wall = time.perf_counter() - started

        bit_identical = True
        for spec, key in zip(UNIQUE, keys):
            digest = daemon.result(key)["result"]["digest"]
            if digest != direct_digests[spec.job_key()]:
                bit_identical = False
        recovery_events = len(daemon.events) + sum(
            len(daemon.status(key).get("events", [])) for key in keys
        )
        snapshot = obs_metrics.registry().snapshot()
        latency = snapshot["histograms"].get("service.latency_ms", {})
        stats = daemon.stats()
        return {
            "wall_seconds": wall,
            "unique_jobs": len(keys),
            "duplicate_submissions": len(DUPLICATES),
            "jobs_per_sec": len(keys) / wall,
            "p50_latency_ms": latency.get("p50"),
            "p99_latency_ms": latency.get("p99"),
            "coalesced_hits": stats["counts"]["coalesced"],
            "completed": stats["counts"]["completed"],
            "failed": stats["counts"]["failed"],
            "bit_identical": bit_identical,
            "recovery_events": recovery_events,
            "worker_restarts": daemon.pool.restarts,
            "journal_dropped_writes": stats["journal"]["dropped_writes"],
            "journal_corrupt_entries": stats["journal"]["corrupt_entries"],
        }
    finally:
        await daemon.stop()


async def _crash_scenario(direct_digests):
    daemon = ServiceDaemon(_config(tempfile.mkdtemp(prefix="svc-crash-")))
    await daemon.start()
    try:
        spec = COLD[0]
        with fault_plan(FaultPlan.from_spec("service.exec=crash:1:@worker")):
            response = await daemon.submit(spec.to_payload())
            assert response["ok"], response
            finished = await daemon.wait(response["job"], timeout=600)
        status = daemon.status(response["job"])
        recovered = bool(finished) and status["state"] == "completed"
        digest = (
            daemon.result(response["job"])["result"]["digest"]
            if recovered else None
        )
        return {
            "crash_recovered": recovered,
            "crash_bit_identical": digest == direct_digests[spec.job_key()],
            "crash_restarts": daemon.pool.restarts,
            "crash_events": [e["event"] for e in status.get("events", [])],
        }
    finally:
        await daemon.stop()


def bench_service() -> dict:
    # Ground truth first: direct in-process execution of every unique spec.
    with fault_plan(None):
        direct_digests = {
            spec.job_key(): execute_job(spec.to_payload())["digest"]
            for spec in UNIQUE
        }
        obs_metrics.registry().reset()
        mixed = asyncio.run(_mixed_workload(direct_digests))
        crash = asyncio.run(_crash_scenario(direct_digests))

    result = {**mixed, **crash}
    result["ok"] = (
        result["bit_identical"]
        and result["recovery_events"] == 0
        and result["worker_restarts"] == 0
        and result["coalesced_hits"] >= len(DUPLICATES)
        and result["failed"] == 0
        and result["jobs_per_sec"] >= JOBS_PER_SEC_FLOOR
        and (result["p99_latency_ms"] or 0) <= P99_LATENCY_CEILING_MS
        and result["crash_recovered"]
        and result["crash_bit_identical"]
    )
    result["workload"] = (
        f"{len(COLD)} cold + {len(NEAR)} near-hit + "
        f"{len(DUPLICATES)} duplicate submissions of tiny-PE jobs, "
        "2 workers; separate worker-crash scenario"
    )
    return result


def main() -> int:
    print("benchmarking PAR service throughput ...")
    section = bench_service()

    report = {"kernels": {}}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except ValueError:
            pass
    report.setdefault("kernels", {})["service"] = section
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    flag = "OK " if section["ok"] else "FAIL"
    print(
        f"service     {flag} {section['jobs_per_sec']:.2f} jobs/s "
        f"(p50 {section['p50_latency_ms']:.0f}ms / "
        f"p99 {section['p99_latency_ms']:.0f}ms), "
        f"coalesced={section['coalesced_hits']}, "
        f"bit_identical={section['bit_identical']}, "
        f"faultfree_events={section['recovery_events']}, "
        f"crash_recovered={section['crash_recovered']} "
        f"(restarts={section['crash_restarts']})"
    )
    print(f"wrote {RESULT_PATH}")
    return 0 if section["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
