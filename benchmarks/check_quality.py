"""Quality gate over ``BENCH_hotpaths.json`` for CI.

Runs in the PR-time ``hotpath-bench`` job and in the nightly REPRO_FULL
workflow (same gate, different benchmark scale).  Fails (exit 1) when the
benchmark shows

* routing non-convergence (the ``astar`` kernel -- the ``auto`` default --
  or the opt-in ``wavefront`` kernel did not reach ``success``),
* a quality regression beyond 10% -- wavefront or astar wirelength vs the
  reference route, or batched-placement mean HPWL vs the incremental
  kernel,
* a broken bit-identity claim (compiled simulation vs interpreter, or the
  ``fast``/``incremental`` kernels vs their references),
* a timing-subsystem failure: the ``objective="timing"`` runs did not
  converge, the timing flow's critical path regressed more than 10% over
  the default flow's, its wirelength left the 10% band of the reference
  route on its own placement, or the STA logic depth diverged from the
  mapped network's,
* an incremental-STA placer regression: its routed critical path must not
  exceed the PR 4 candidate-anneal placer's (both deterministic for the
  bench seed, so this gate carries no machine noise),
* a flat-forest retime failure: the flat path must stay bit-identical to
  the dict walk, and its steady-state speedup must hold at least 75% of
  the 3x target (>25% cost regression fails),
* a resilience regression: the fault-free ``route_resilient`` path diverged
  from a plain ``route`` call, or logged recovery/degradation events with
  no fault injected (zero events is the fault-free contract, see
  RESILIENCE.md),
* a missing or non-convergent ``auto_crossover`` section, or measured
  astar/wavefront ratios that contradict the fixed ``kernel="auto"``
  alias (``AUTO_KERNEL = "astar"``),
* a native-backend failure: compiled astar routes or annealer trajectories
  diverged from their Python twins (identity is the contract that keeps
  the cached artifacts backend-independent), or a compiled kernel measured
  *slower* than the Python twin it replaces,
* a reconfiguration-scheduler failure: a diff-applied context switch that
  is not bit-identical to a full reconfiguration of the target (the
  ``repro.reconfig`` invariant, see RECONFIGURATION.md), a missing
  section, or a skewed-trace replay with no residency hits or no frame
  savings at all (the scheduler stopped buying anything),
* an observability regression: the disabled ``span()`` fast path costs
  more than ``OBS_DISABLED_NS`` per call, a traced place+route run is
  more than 5% slower than the untraced twin, tracing perturbed the
  results (the trajectory-neutrality contract, see OBSERVABILITY.md),
  or the emitted Chrome trace is invalid or missing expected spans,
* a service regression (``kernels.service``, written by
  ``bench_service_throughput.py``): a service-produced job result that is
  not bit-identical to a direct ``place_and_route`` call, recovery or
  restart events on a fault-free run, duplicate submissions that were not
  coalesced, a failed crash-recovery scenario, throughput below the
  ``SERVICE_JOBS_PER_SEC`` floor, or p99 completion latency above the
  ``SERVICE_P99_MS`` ceiling.

The thresholds here are looser than the in-benchmark ``ok`` flags on
purpose: this gate is about catching real regressions, not about
re-asserting the tight quality bands or the speedup floors measured on
quiet machines (the benchmark's own exit code carries those).

Run with::

    python benchmarks/check_quality.py [path/to/BENCH_hotpaths.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REGRESSION_BAND = 1.10  # >10% quality loss fails the nightly
RETIME_TARGET = 3.0     # issue 5: flat retime speedup target ...
RETIME_SLACK = 1.25     # ... enforced with 25% headroom for machine load
OBS_DISABLED_NS = 2000.0  # issue 9: disabled span() per-call ceiling (ns)
OBS_SLOWDOWN = 1.05       # issue 9: traced place+route wall-time ratio ceiling
SERVICE_JOBS_PER_SEC = 0.2   # issue 10: unique-job throughput floor
SERVICE_P99_MS = 30_000.0    # issue 10: p99 completion latency ceiling


def check(report: dict) -> list:
    problems = []
    kernels = report.get("kernels", {})

    sim = kernels.get("simulation", {})
    if not sim.get("identical_outputs", False):
        problems.append("simulation: compiled engine no longer bit-identical")

    placement = kernels.get("placement", {})
    if not placement.get("identical_outputs", False):
        problems.append("placement: incremental kernel diverged from reference")
    if not placement.get("exact_int_hpwl", False):
        problems.append("placement: HPWL accounting is no longer exact-int")
    batched = placement.get("batched", {})
    ratio = batched.get("mean_hpwl_ratio")
    if ratio is None:
        problems.append("placement: batched quality baseline missing")
    elif ratio > REGRESSION_BAND:
        problems.append(
            f"placement: batched mean HPWL {ratio:.3f}x of incremental "
            f"(> {REGRESSION_BAND}x)"
        )

    routing = kernels.get("routing", {})
    if not routing.get("success_wavefront", False):
        problems.append(
            "routing: wavefront kernel did not converge (success_wavefront false)"
        )
    if not routing.get("success_astar", False):
        problems.append("routing: astar kernel did not converge (success_astar false)")
    if not routing.get("success_fast", False):
        problems.append("routing: fast kernel did not converge at the chosen width")
    if not routing.get("identical_outputs", False):
        problems.append("routing: fast kernel diverged from reference")
    for key, label in (
        ("astar_wirelength_ratio", "astar"),
        ("wavefront_wirelength_ratio", "wavefront"),
    ):
        wl_ratio = routing.get(key)
        if wl_ratio is None:
            problems.append(f"routing: {label} wirelength ratio missing")
        elif wl_ratio > REGRESSION_BAND:
            problems.append(
                f"routing: {label} wirelength {wl_ratio:.3f}x of baseline "
                f"(> {REGRESSION_BAND}x)"
            )

    timing = kernels.get("timing", {})
    if not timing:
        problems.append("timing: benchmark section missing")
    else:
        for key, label in (
            ("success_timing_route", "timing-driven route"),
            ("success_timing_flow", "timing-driven flow"),
        ):
            if not timing.get(key, False):
                problems.append(f"timing: {label} did not converge")
        if not timing.get("logic_depth_matches_network", False):
            problems.append("timing: STA logic depth diverged from the mapped network")
        delay_ratio = timing.get("delay_ratio_flow")
        if delay_ratio is None:
            problems.append("timing: flow delay ratio missing")
        elif delay_ratio > REGRESSION_BAND:
            problems.append(
                f"timing: flow critical path {delay_ratio:.3f}x of the default "
                f"flow (> {REGRESSION_BAND}x)"
            )
        band = timing.get("timing_wl_band_ratio")
        if band is None:
            problems.append("timing: wirelength band ratio missing")
        elif band > REGRESSION_BAND:
            problems.append(
                f"timing: timing-route wirelength {band:.3f}x of the reference "
                f"route (> {REGRESSION_BAND}x)"
            )
        placer_ratio = timing.get("placer_cp_ratio")
        if placer_ratio is None:
            problems.append("timing: incremental-vs-candidates placer ratio missing")
        elif placer_ratio > 1.0 + 1e-9:
            problems.append(
                f"timing: incremental-STA placer critical path {placer_ratio:.3f}x "
                "of the candidate-anneal placer (must match or beat it)"
            )

    retime = kernels.get("retime", {})
    if not retime:
        problems.append("retime: benchmark section missing")
    else:
        if not retime.get("criticality_identical", False):
            problems.append("retime: flat criticality vector diverged from the dict walk")
        if not retime.get("delays_identical", False):
            problems.append("retime: flat routed delays diverged from the dict walk")
        speedup = retime.get("retime_speedup")
        floor = RETIME_TARGET / RETIME_SLACK
        if speedup is None:
            problems.append("retime: flat-vs-dict speedup missing")
        elif speedup < floor:
            problems.append(
                f"retime: flat retime only {speedup:.2f}x over the dict walk "
                f"(> 25% regression from the {RETIME_TARGET}x target)"
            )

    resilience = kernels.get("resilience", {})
    if not resilience:
        problems.append("resilience: benchmark section missing")
    else:
        if not resilience.get("identical_outputs", False):
            problems.append(
                "resilience: fault-free route_resilient diverged from plain route"
            )
        # The fault-free bench run must not take any recovery path at all:
        # a degradation event here means a kernel failed or timed out with
        # no fault injected, which is a real regression, not chaos.
        if resilience.get("recovery_events", 1) != 0:
            problems.append(
                f"resilience: {resilience.get('recovery_events')} recovery "
                "event(s) on a fault-free benchmark run (expected zero)"
            )
        if resilience.get("degradation_events", 1) != 0:
            problems.append(
                "resilience: kernel degradation on a fault-free benchmark run"
            )

    crossover = kernels.get("auto_crossover", {})
    if not crossover:
        problems.append("auto_crossover: benchmark section missing")
    else:
        points = crossover.get("points", [])
        if not points:
            problems.append("auto_crossover: no measured points")
        for p in points:
            if not (p.get("success_astar") and p.get("success_wavefront")):
                problems.append(
                    f"auto_crossover: non-convergent route at {p.get('num_nodes')} nodes"
                )
        if not crossover.get("auto_kernel_consistent", False):
            problems.append(
                'auto_crossover: the fixed kernel="auto" alias contradicts the '
                "measured astar/wavefront ratios (wavefront won somewhere)"
            )

    native = kernels.get("native", {})
    if not native:
        problems.append("native: benchmark section missing")
    elif native.get("available"):
        for key, label in (
            ("astar_identical", "astar routes"),
            ("astar_timing_identical", "timing-objective astar routes"),
            ("anneal_identical", "annealer trajectories"),
        ):
            if not native.get(key, False):
                problems.append(
                    f"native: {label} diverged between the C and Python backends"
                )
        for key, label in (("astar_speedup", "astar"), ("anneal_speedup", "annealer")):
            speedup = native.get(key)
            if speedup is None:
                problems.append(f"native: {label} speedup missing")
            elif speedup < 1.0:
                problems.append(
                    f"native: compiled {label} kernel measured slower than its "
                    f"Python twin ({speedup:.2f}x)"
                )

    reconfig = kernels.get("reconfig", {})
    if not reconfig:
        problems.append("reconfig: benchmark section missing")
    else:
        if not reconfig.get("diff_identical", False):
            problems.append(
                "reconfig: a diff-applied context switch is not bit-identical "
                "to a full reconfiguration of the target"
            )
        if not reconfig.get("hit_rate", 0.0) > 0.0:
            problems.append(
                "reconfig: zero residency hits on the skewed trace (the "
                "context memory stopped buying anything)"
            )
        if not reconfig.get("frame_savings", 0.0) > 0.0:
            problems.append(
                "reconfig: diff switches saved no frames over full "
                "reconfigurations on the skewed trace"
            )

    obs = kernels.get("obs", {})
    if not obs:
        problems.append("obs: benchmark section missing")
    else:
        disabled_ns = obs.get("disabled_ns_per_call")
        if disabled_ns is None:
            problems.append("obs: disabled span() cost missing")
        elif disabled_ns > OBS_DISABLED_NS:
            problems.append(
                f"obs: disabled span() costs {disabled_ns:.0f} ns/call "
                f"(> {OBS_DISABLED_NS:.0f} ns -- the zero-overhead "
                "contract of OBSERVABILITY.md)"
            )
        slowdown = obs.get("traced_slowdown")
        if slowdown is None:
            problems.append("obs: traced-run slowdown missing")
        elif slowdown > OBS_SLOWDOWN:
            problems.append(
                f"obs: traced place+route run {slowdown:.3f}x of the "
                f"untraced twin (> {OBS_SLOWDOWN}x)"
            )
        if not obs.get("identical_outputs", False):
            problems.append(
                "obs: tracing perturbed the place/route results "
                "(trajectory neutrality broken)"
            )
        if not obs.get("chrome_trace_valid", False):
            problems.append("obs: emitted Chrome trace is not valid JSON")
        if not obs.get("trace_complete", False):
            problems.append(
                "obs: Chrome trace is missing expected span/series names"
            )

    service = kernels.get("service", {})
    if not service:
        problems.append("service: benchmark section missing")
    else:
        if not service.get("bit_identical", False):
            problems.append(
                "service: a daemon-produced job result is not bit-identical "
                "to the direct place_and_route call (the service contract)"
            )
        # The mixed workload runs with no faults injected; any recovery
        # event, worker restart or journal drop there is a real failure
        # being absorbed, not chaos.
        if service.get("recovery_events", 1) != 0:
            problems.append(
                f"service: {service.get('recovery_events')} recovery "
                "event(s) on the fault-free workload (expected zero)"
            )
        if service.get("worker_restarts", 1) != 0:
            problems.append(
                "service: worker restarts on the fault-free workload"
            )
        if not service.get("coalesced_hits", 0) > 0:
            problems.append(
                "service: duplicate submissions were not coalesced"
            )
        jobs_per_sec = service.get("jobs_per_sec")
        if jobs_per_sec is None:
            problems.append("service: throughput measurement missing")
        elif jobs_per_sec < SERVICE_JOBS_PER_SEC:
            problems.append(
                f"service: {jobs_per_sec:.3f} unique jobs/sec "
                f"(< {SERVICE_JOBS_PER_SEC} floor)"
            )
        p99 = service.get("p99_latency_ms")
        if p99 is None:
            problems.append("service: p99 latency missing")
        elif p99 > SERVICE_P99_MS:
            problems.append(
                f"service: p99 completion latency {p99:.0f}ms "
                f"(> {SERVICE_P99_MS:.0f}ms ceiling)"
            )
        if not service.get("crash_recovered", False):
            problems.append(
                "service: the worker-crash scenario did not complete its job"
            )
        if not service.get("crash_bit_identical", False):
            problems.append(
                "service: the crash-recovered result is not bit-identical "
                "to the direct computation"
            )
    return problems


def main(argv) -> int:
    path = Path(argv[1]) if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"
    )
    report = json.loads(path.read_text())
    problems = check(report)
    if problems:
        for p in problems:
            print(f"QUALITY REGRESSION: {p}")
        return 1
    print(f"{path.name}: no quality regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
