"""Quality gate over ``BENCH_hotpaths.json`` for CI.

Runs in the PR-time ``hotpath-bench`` job and in the nightly REPRO_FULL
workflow (same gate, different benchmark scale).  Fails (exit 1) when the
benchmark shows

* routing non-convergence (the default ``wavefront`` kernel or the
  ``astar`` kernel did not reach ``success``),
* a quality regression beyond 10% -- wavefront or astar wirelength vs the
  reference route, or batched-placement mean HPWL vs the incremental
  kernel,
* a broken bit-identity claim (compiled simulation vs interpreter, or the
  ``fast``/``incremental`` kernels vs their references),
* a timing-subsystem failure: the ``objective="timing"`` runs did not
  converge, the timing flow's critical path regressed more than 10% over
  the default flow's, its wirelength left the 10% band of the reference
  route on its own placement, or the STA logic depth diverged from the
  mapped network's.

The thresholds here are looser than the in-benchmark ``ok`` flags on
purpose: this gate is about catching real regressions, not about
re-asserting the tight quality bands or the speedup floors measured on
quiet machines (the benchmark's own exit code carries those).

Run with::

    python benchmarks/check_quality.py [path/to/BENCH_hotpaths.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REGRESSION_BAND = 1.10  # >10% quality loss fails the nightly


def check(report: dict) -> list:
    problems = []
    kernels = report.get("kernels", {})

    sim = kernels.get("simulation", {})
    if not sim.get("identical_outputs", False):
        problems.append("simulation: compiled engine no longer bit-identical")

    placement = kernels.get("placement", {})
    if not placement.get("identical_outputs", False):
        problems.append("placement: incremental kernel diverged from reference")
    if not placement.get("exact_int_hpwl", False):
        problems.append("placement: HPWL accounting is no longer exact-int")
    batched = placement.get("batched", {})
    ratio = batched.get("mean_hpwl_ratio")
    if ratio is None:
        problems.append("placement: batched quality baseline missing")
    elif ratio > REGRESSION_BAND:
        problems.append(
            f"placement: batched mean HPWL {ratio:.3f}x of incremental "
            f"(> {REGRESSION_BAND}x)"
        )

    routing = kernels.get("routing", {})
    if not routing.get("success_wavefront", False):
        problems.append(
            "routing: wavefront kernel did not converge (success_wavefront false)"
        )
    if not routing.get("success_astar", False):
        problems.append("routing: astar kernel did not converge (success_astar false)")
    if not routing.get("success_fast", False):
        problems.append("routing: fast kernel did not converge at the chosen width")
    if not routing.get("identical_outputs", False):
        problems.append("routing: fast kernel diverged from reference")
    for key, label in (
        ("astar_wirelength_ratio", "astar"),
        ("wavefront_wirelength_ratio", "wavefront"),
    ):
        wl_ratio = routing.get(key)
        if wl_ratio is None:
            problems.append(f"routing: {label} wirelength ratio missing")
        elif wl_ratio > REGRESSION_BAND:
            problems.append(
                f"routing: {label} wirelength {wl_ratio:.3f}x of baseline "
                f"(> {REGRESSION_BAND}x)"
            )

    timing = kernels.get("timing", {})
    if not timing:
        problems.append("timing: benchmark section missing")
    else:
        for key, label in (
            ("success_timing_route", "timing-driven route"),
            ("success_timing_flow", "timing-driven flow"),
        ):
            if not timing.get(key, False):
                problems.append(f"timing: {label} did not converge")
        if not timing.get("logic_depth_matches_network", False):
            problems.append("timing: STA logic depth diverged from the mapped network")
        delay_ratio = timing.get("delay_ratio_flow")
        if delay_ratio is None:
            problems.append("timing: flow delay ratio missing")
        elif delay_ratio > REGRESSION_BAND:
            problems.append(
                f"timing: flow critical path {delay_ratio:.3f}x of the default "
                f"flow (> {REGRESSION_BAND}x)"
            )
        band = timing.get("timing_wl_band_ratio")
        if band is None:
            problems.append("timing: wirelength band ratio missing")
        elif band > REGRESSION_BAND:
            problems.append(
                f"timing: timing-route wirelength {band:.3f}x of the reference "
                f"route (> {REGRESSION_BAND}x)"
            )
    return problems


def main(argv) -> int:
    path = Path(argv[1]) if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"
    )
    report = json.loads(path.read_text())
    problems = check(report)
    if problems:
        for p in problems:
            print(f"QUALITY REGRESSION: {p}")
        return 1
    print(f"{path.name}: no quality regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
