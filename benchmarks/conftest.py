"""Pytest configuration for the benchmark harness.

The shared knobs and helpers live in ``_bench_config`` so the benchmark
modules can import them directly; see that module's docstring for the
``REPRO_FULL`` environment switch.
"""

import pytest

from _bench_config import BENCH_FP_FORMAT


@pytest.fixture(scope="session")
def bench_format():
    return BENCH_FP_FORMAT
