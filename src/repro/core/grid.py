"""VCGRA grid architecture: Processing Elements, Virtual Switch Blocks and
Virtual Connection Blocks.

Figure 1 of the paper shows the overlay: a grid of PEs whose inputs and
outputs are connected through Virtual Switch Blocks (VSBs) and Virtual
Connection Blocks (VCBs), each with a settings register.  The evaluation uses
a 4x4 grid: 16 PEs, 9 VSBs (one per interior crossing) and 32 virtual
connection blocks, for a total of 25 32-bit settings registers (Table II).

The grid here is a feed-forward mesh (the natural topology for the streaming
filter kernels of the retina application): data enters at the top row, each
PE can read from the VSBs above it and writes to the VSB fabric below it, and
results leave at the bottom row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from .pe import ProcessingElementSpec

__all__ = ["VCGRAArchitecture", "VirtualSwitchBlock", "VirtualConnectionBlock", "GridPosition"]


GridPosition = Tuple[int, int]  #: (row, column), 0-based


@dataclass(frozen=True)
class VirtualSwitchBlock:
    """A virtual switch block at an interior crossing of the PE grid.

    A VSB at crossing (r, c) sits between PE rows ``r`` and ``r+1`` and
    between PE columns ``c`` and ``c+1``; it can route any of its upstream PE
    outputs to any of its downstream PE inputs, controlled by its settings
    register.
    """

    row: int
    col: int

    @property
    def name(self) -> str:
        return f"vsb_r{self.row}c{self.col}"

    def upstream_pes(self, cols: int) -> List[GridPosition]:
        """PEs (row r) whose outputs this VSB can select from."""
        return [(self.row, self.col), (self.row, self.col + 1)]

    def downstream_pes(self, cols: int) -> List[GridPosition]:
        """PEs (row r+1) whose inputs this VSB can drive."""
        return [(self.row + 1, self.col), (self.row + 1, self.col + 1)]


@dataclass(frozen=True)
class VirtualConnectionBlock:
    """A virtual connection block attaching one PE's ports to the VSB fabric.

    Every PE has one input-side and one output-side connection block (hence
    the 32 VCBs of the 4x4 grid in Table II).
    """

    row: int
    col: int
    side: str  # "in" or "out"

    @property
    def name(self) -> str:
        return f"vcb_{self.side}_r{self.row}c{self.col}"


@dataclass(frozen=True)
class VCGRAArchitecture:
    """A rows x cols VCGRA overlay built from identical PEs."""

    rows: int = 4
    cols: int = 4
    pe_spec: ProcessingElementSpec = field(default_factory=ProcessingElementSpec)
    settings_register_width: int = 32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("VCGRA grid must be at least 1x1")

    # -- structural counts (the quantities of Table II) --------------------------

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def num_vsbs(self) -> int:
        """Virtual switch blocks: one per interior crossing of the grid."""
        return max(0, (self.rows - 1) * (self.cols - 1))

    @property
    def num_virtual_connection_blocks(self) -> int:
        """Two virtual connection blocks (input side + output side) per PE."""
        return 2 * self.num_pes

    @property
    def num_virtual_routing_switches(self) -> int:
        """All virtual routing switches: VSBs plus VCBs (Table II, 'Inter-Network')."""
        return self.num_vsbs + self.num_virtual_connection_blocks

    @property
    def num_settings_registers(self) -> int:
        """Settings registers: one per PE and one per VSB (Table II)."""
        return self.num_pes + self.num_vsbs

    @property
    def settings_bits_total(self) -> int:
        return self.num_settings_registers * self.settings_register_width

    # -- enumeration ----------------------------------------------------------------

    def pe_positions(self) -> Iterator[GridPosition]:
        for r in range(self.rows):
            for c in range(self.cols):
                yield (r, c)

    def vsbs(self) -> Iterator[VirtualSwitchBlock]:
        for r in range(self.rows - 1):
            for c in range(self.cols - 1):
                yield VirtualSwitchBlock(r, c)

    def connection_blocks(self) -> Iterator[VirtualConnectionBlock]:
        for r, c in self.pe_positions():
            yield VirtualConnectionBlock(r, c, "in")
            yield VirtualConnectionBlock(r, c, "out")

    def pe_name(self, pos: GridPosition) -> str:
        return f"pe_r{pos[0]}c{pos[1]}"

    # -- inter-PE connectivity ---------------------------------------------------------

    def downstream_of(self, pos: GridPosition) -> List[GridPosition]:
        """PEs reachable from ``pos`` through the VSB fabric (next row,
        same / adjacent column)."""
        r, c = pos
        if r + 1 >= self.rows:
            return []
        return [
            (r + 1, cc)
            for cc in (c - 1, c, c + 1)
            if 0 <= cc < self.cols
        ]

    def upstream_of(self, pos: GridPosition) -> List[GridPosition]:
        """PEs whose outputs ``pos`` can select as inputs."""
        r, c = pos
        if r == 0:
            return []
        return [
            (r - 1, cc)
            for cc in (c - 1, c, c + 1)
            if 0 <= cc < self.cols
        ]

    def is_entry_row(self, pos: GridPosition) -> bool:
        return pos[0] == 0

    def is_exit_row(self, pos: GridPosition) -> bool:
        return pos[0] == self.rows - 1

    def describe(self) -> str:
        return (
            f"{self.rows}x{self.cols} VCGRA: {self.num_pes} PEs, {self.num_vsbs} VSBs, "
            f"{self.num_virtual_connection_blocks} VCBs, "
            f"{self.num_settings_registers} x {self.settings_register_width}-bit settings registers"
        )
