"""Parameterized configuration: Template Configuration, PPC and the SCG.

The generic stage of the DCS tool flow (Figure 3 of the paper) produces two
artifacts:

* the **Template Configuration (TC)** -- the static configuration bits of the
  design: LUTs whose truth tables never change with the parameters;
* the **Partial Parameterized Configuration (PPC)** -- for every tunable bit
  of configuration memory, a Boolean function of the parameter inputs.

At run time the **Specialized Configuration Generator (SCG)** -- software on
an embedded processor in the real system -- evaluates the PPC's Boolean
functions for the current parameter values and produces the specialized
bits, which are written into the FPGA through HWICAP/MiCAP
(micro-reconfiguration).

Here the PPC is represented directly by the tunable nodes of the mapped
network (their truth tables over data + parameter variables), which is
functionally equivalent to a bit-level PPC and lets the SCG reuse the
network's specialization machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..fpga.bitstream import Bitstream, ConfigurationLayout
from ..techmap.mapping import MappedNetwork, NodeKind, SpecializedNetwork
from ..par.flow import PaRResult

__all__ = [
    "TemplateConfiguration",
    "PartialParameterizedConfiguration",
    "SpecializedConfigurationGenerator",
    "SpecializationOutcome",
]


@dataclass
class TemplateConfiguration:
    """Static part of the configuration: LUTs that never change."""

    lut_configs: Dict[int, int] = field(default_factory=dict)  #: mapped node -> truth bits

    @property
    def num_static_luts(self) -> int:
        return len(self.lut_configs)


@dataclass
class PartialParameterizedConfiguration:
    """Boolean functions of the parameters, one set per tunable element."""

    network: MappedNetwork
    tlut_nodes: List[int] = field(default_factory=list)
    tcon_nodes: List[int] = field(default_factory=list)

    @property
    def num_tluts(self) -> int:
        return len(self.tlut_nodes)

    @property
    def num_tcons(self) -> int:
        return len(self.tcon_nodes)

    @property
    def num_boolean_functions(self) -> int:
        """Number of single-output Boolean functions the SCG must evaluate.

        Every configuration bit of a TLUT (2^k bits for a k-input LUT) and the
        selection of every TCON is one Boolean function of the parameters.
        """
        k = self.network.k
        return self.num_tluts * (1 << k) + self.num_tcons

    @property
    def memory_footprint_bits(self) -> int:
        """Rough PPC storage estimate (truth tables of the tunable functions)."""
        total = 0
        for nid in self.tlut_nodes + self.tcon_nodes:
            node = self.network.nodes[nid]
            total += 1 << node.function.num_vars
        return total


@dataclass
class SpecializationOutcome:
    """One run of the SCG: specialized bits plus cost bookkeeping."""

    specialized: SpecializedNetwork
    bitstream: Optional[Bitstream]
    frames_touched: Set[int]
    evaluation_seconds: float

    @property
    def num_frames(self) -> int:
        return len(self.frames_touched)


class SpecializedConfigurationGenerator:
    """The SCG: evaluates the PPC for concrete parameter values.

    Parameters
    ----------
    network:
        A parameterized mapped network (output of TCONMAP).
    par_result:
        Optional place-and-route result; when provided, specializations are
        rendered into :class:`~repro.fpga.bitstream.Bitstream` objects and the
        set of touched configuration frames is computed from the actual LUT
        placements, which feeds the reconfiguration-time model.
    """

    def __init__(
        self,
        network: MappedNetwork,
        par_result: Optional[PaRResult] = None,
    ) -> None:
        self.network = network
        self.par = par_result
        self.template = TemplateConfiguration()
        self.ppc = PartialParameterizedConfiguration(network)
        for nid, node in enumerate(network.nodes):
            if node.kind == NodeKind.LUT:
                self.template.lut_configs[nid] = node.function.bits
            elif node.kind == NodeKind.TLUT:
                self.ppc.tlut_nodes.append(nid)
            elif node.kind == NodeKind.TCON:
                self.ppc.tcon_nodes.append(nid)
        self._node_site: Dict[int, Tuple[int, int]] = {}
        self._layout: Optional[ConfigurationLayout] = None
        if par_result is not None:
            self._layout = par_result.device.config_layout
            for block in par_result.netlist.blocks:
                if block.mapped_node is None or not block.needs_logic_site:
                    continue
                site = par_result.placement.placement.block_site[block.id]
                self._node_site[block.mapped_node] = (site.x, site.y)
        self._previous: Optional[Bitstream] = None

    # -- specialization -----------------------------------------------------------

    def specialize(self, param_words: Mapping[str, int]) -> SpecializationOutcome:
        """Evaluate the PPC for the given parameter values (word-level, by bus name)."""
        t0 = time.perf_counter()
        spec = self.network.specialize_words(dict(param_words))
        elapsed = time.perf_counter() - t0

        bitstream = None
        frames: Set[int] = set()
        if self._layout is not None:
            bitstream = Bitstream(self._layout)
            tcon_slots: Dict[Tuple[int, int], int] = {}
            for nid in self.ppc.tlut_nodes:
                site = self._node_site.get(nid)
                if site is None:
                    continue
                bitstream.set_lut_config(site[0], site[1], spec.lut_configs[nid].bits)
            for nid in self.ppc.tcon_nodes:
                # A TCON's switches live next to the LUT(s) it feeds; attribute
                # its bits to the tile of its first placed consumer.
                site = self._consumer_site(nid)
                if site is None:
                    continue
                kind, var = spec.tcon_routes[nid]
                sel = 0 if kind != "var" else (var + 1)
                slot = tcon_slots.get(site, 0)
                prev = bitstream.routing_configs.get(site, 0)
                width_limit = self._layout.routing_bits - 4
                shift = min(2 * slot, max(0, width_limit))
                bitstream.set_routing_config(site[0], site[1], prev | (sel << shift))
                tcon_slots[site] = slot + 1
            if self._previous is not None:
                frames = bitstream.diff_frames(self._previous)
            else:
                tiles = bitstream.configured_tiles()
                frames = self._layout.frames_for_tiles(tiles)
            self._previous = bitstream
        return SpecializationOutcome(
            specialized=spec,
            bitstream=bitstream,
            frames_touched=frames,
            evaluation_seconds=elapsed,
        )

    def _consumer_site(self, tcon_node: int) -> Optional[Tuple[int, int]]:
        """Tile of the first placed LUT that consumes a TCON's output."""
        for nid, node in enumerate(self.network.nodes):
            if node.kind in (NodeKind.LUT, NodeKind.TLUT) and tcon_node in node.inputs:
                site = self._node_site.get(nid)
                if site is not None:
                    return site
        return None

    # -- summary --------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        return {
            "static_luts": self.template.num_static_luts,
            "tluts": self.ppc.num_tluts,
            "tcons": self.ppc.num_tcons,
            "boolean_functions": self.ppc.num_boolean_functions,
            "ppc_bits": self.ppc.memory_footprint_bits,
        }
