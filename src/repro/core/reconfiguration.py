"""Micro-reconfiguration cost model (HWICAP / MiCAP).

The paper reports an *estimated* reconfiguration time of 251 ms per PE for a
parameter change, derived from the number of TLUTs and TCONs of the PE and
the read-modify-write cost of configuration frames through the HWICAP
interface (their earlier DCS papers measure roughly 230 microseconds per
reconfigured frame with HWICAP; MiCAP and placement-constrained variants are
faster).

The model here makes that estimate explicit and testable:

``time = frames_touched * (frame_read + frame_modify + frame_write)
         + boolean_functions * evaluation_time``

In *estimate mode* (no placement available) each tunable element is assumed
to live in its own frame -- the worst case the paper's estimate corresponds
to.  When a placed-and-routed design is available, the actual number of
distinct frames touched (from the configuration layout) is used instead,
which is how placement constraints speed up DCS in the authors' follow-up
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["ReconfigurationInterface", "HWICAP", "MICAP", "ReconfigurationCostModel"]


@dataclass(frozen=True)
class ReconfigurationInterface:
    """Timing characteristics of a configuration interface."""

    name: str
    frame_read_us: float
    frame_write_us: float
    frame_modify_us: float = 5.0
    #: SCG Boolean-function evaluation on the embedded processor (per function)
    eval_us_per_function: float = 0.35

    @property
    def frame_rmw_us(self) -> float:
        """Full read-modify-write cost of one frame through the port."""
        return self.frame_read_us + self.frame_modify_us + self.frame_write_us

    @property
    def frame_restore_us(self) -> float:
        """Write-only cost of one frame whose specialized content is already
        staged in context memory (a resident partial configuration): the
        read and modify legs of the RMW cycle are skipped."""
        return self.frame_write_us


#: HWICAP: the slow, standard Xilinx configuration access port driver.
HWICAP = ReconfigurationInterface("HWICAP", frame_read_us=112.0, frame_write_us=112.0)

#: MiCAP: the custom reconfiguration controller of Kulkarni et al. (ReConFig 2015),
#: roughly 3x faster on the read path.
MICAP = ReconfigurationInterface("MiCAP", frame_read_us=30.0, frame_write_us=82.0)


class ReconfigurationCostModel:
    """Estimate micro-reconfiguration time for parameter changes."""

    def __init__(self, interface: ReconfigurationInterface = HWICAP) -> None:
        self.interface = interface

    # -- estimate mode (matches the paper's 251 ms figure) ---------------------------

    def estimate_frames(self, num_tluts: int, num_tcons: int) -> int:
        """Worst-case frame count: every tunable element sits in its own frame."""
        return num_tluts + num_tcons

    def estimate_time_ms(
        self,
        num_tluts: int,
        num_tcons: int,
        boolean_functions: Optional[int] = None,
    ) -> float:
        """Reconfiguration time estimate from tunable-element counts."""
        frames = self.estimate_frames(num_tluts, num_tcons)
        if boolean_functions is None:
            boolean_functions = num_tluts * 16 + num_tcons
        micro = frames * self.interface.frame_rmw_us
        eval_time = boolean_functions * self.interface.eval_us_per_function
        return (micro + eval_time) / 1000.0

    # -- measured mode (uses actual frame counts from a placed design) ----------------

    def time_from_frames_ms(self, frames_touched: int, boolean_functions: int = 0) -> float:
        """Reconfiguration time from an actual frame count (placed design)."""
        micro = frames_touched * self.interface.frame_rmw_us
        eval_time = boolean_functions * self.interface.eval_us_per_function
        return (micro + eval_time) / 1000.0

    # -- multi-context switching (frame-level delta encoding) --------------------------

    def diff_switch_time_ms(self, frames_changed: int, resident: bool = False) -> float:
        """Cost of a context switch that writes only the *changed* frames.

        ``resident=True`` models a switch to a partial configuration that is
        already staged in context memory (see
        :class:`repro.reconfig.scheduler.ReconfigScheduler`): each changed
        frame is a plain write (:attr:`ReconfigurationInterface.frame_restore_us`).
        A non-resident switch streams every changed frame through the full
        read-modify-write cycle of the configuration port, the same cost a
        full reconfiguration pays per frame -- the saving of a cold diff
        switch is purely the smaller frame count.
        """
        per_frame = (
            self.interface.frame_restore_us if resident else self.interface.frame_rmw_us
        )
        return frames_changed * per_frame / 1000.0

    # -- application-level amortization -----------------------------------------------

    def amortized_overhead(
        self,
        reconfig_time_ms: float,
        items_per_configuration: int,
        time_per_item_ms: float,
    ) -> Dict[str, float]:
        """Overhead of reconfiguration amortized over a batch of work items.

        The paper's example: the denoise and texture filters keep their
        coefficients for 1000 images, so the 251 ms reconfiguration is paid
        once per 1000 images.
        """
        if items_per_configuration <= 0:
            raise ValueError("items_per_configuration must be positive")
        compute_ms = items_per_configuration * time_per_item_ms
        total = compute_ms + reconfig_time_ms
        return {
            "reconfig_ms": reconfig_time_ms,
            "compute_ms": compute_ms,
            "total_ms": total,
            "overhead_fraction": reconfig_time_ms / total if total else 0.0,
            "per_item_overhead_ms": reconfig_time_ms / items_per_configuration,
        }

    def describe(self) -> str:
        i = self.interface
        return (
            f"{i.name}: {i.frame_rmw_us:.0f} us per frame read-modify-write, "
            f"{i.eval_us_per_function:.2f} us per PPC Boolean function"
        )
