"""Processing Element (PE) of the VCGRA.

Figure 4 of the paper shows a fully parameterized PE: a group of BLEs
(implemented as TLUTs) carrying the functional datapath, surrounded by an
*intra-connect* -- virtual routing switches (connection multiplexers with
configuration memory) that steer operands between the BLEs -- plus a settings
register that selects the PE's function.

For the retinal-vessel-segmentation application the functional datapath is a
FloPoCo floating-point multiply-accumulate (MAC) operator whose coefficient
comes from the settings register, and the settings register additionally
holds an iteration-count limit for the MAC loop.

This module builds the PE as a gate-level circuit with the settings register
fields declared as ``--PARAM`` inputs:

* **conventional flow**: the parameters are ordinary inputs (the settings
  register is built from flip-flops) and the intra-connect multiplexers cost
  LUTs -- the overhead quantified in Section V of the paper;
* **fully parameterized flow**: TCONMAP turns the intra-connect into TCONs
  and the coefficient-dependent logic into TLUTs, and the settings register
  moves into configuration memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..flopoco.circuits import build_fp_adder, build_fp_multiplier
from ..flopoco.format import FPFormat, PAPER_FORMAT
from ..netlist.hdl import Bus, Design

__all__ = ["PEOp", "ProcessingElementSpec", "build_pe_design", "PE_SETTINGS_FIELDS"]


class PEOp:
    """Function-select encodings of the PE output multiplexer."""

    MAC = 0       #: out = acc_in + sample * coeff   (filter inner loop)
    MUL = 1       #: out = sample * coeff            (pointwise scaling)
    BYPASS = 2    #: out = sample                    (route-through)
    BYPASS_B = 3  #: out = acc_in                    (route-through, second port)

    ALL = (MAC, MUL, BYPASS, BYPASS_B)
    NAMES = {MAC: "mac", MUL: "mul", BYPASS: "bypass", BYPASS_B: "bypass_b"}


@dataclass(frozen=True)
class ProcessingElementSpec:
    """Parameters of a PE instance.

    Attributes
    ----------
    fmt:
        Floating-point format of the datapath (the paper uses ``we=6, wf=26``).
    num_inputs:
        Number of data input ports the intra-connect can steer to the
        datapath operands.
    counter_width:
        Width of the iteration counter / count-limit settings field.
    include_intra_connect:
        Build the operand-select and output-select multiplexer network
        (the virtual intra-connect).  Disabling it yields the bare MAC
        datapath used for ablation studies.
    include_counter:
        Build the iteration-counter compare logic driven by the settings
        register's count-limit field.
    """

    fmt: FPFormat = PAPER_FORMAT
    num_inputs: int = 4
    counter_width: int = 16
    include_intra_connect: bool = True
    include_counter: bool = True

    @property
    def sel_width(self) -> int:
        """Width of one operand-select settings field."""
        return max(1, math.ceil(math.log2(self.num_inputs)))

    @property
    def settings_bits(self) -> int:
        """Total number of settings-register bits of this PE."""
        bits = self.fmt.width                     # coefficient
        if self.include_intra_connect:
            bits += 2 * self.sel_width + 2        # two operand selects + op select
        if self.include_counter:
            bits += self.counter_width            # count limit
        return bits

    @property
    def num_settings_registers(self) -> int:
        """Number of 32-bit settings registers needed to hold the settings."""
        return max(1, math.ceil(self.settings_bits / 32))


#: Names and descriptions of the PE settings fields (documentation + vsim).
PE_SETTINGS_FIELDS = {
    "coeff": "FloPoCo-encoded filter coefficient (multiplier operand)",
    "sel_a": "intra-connect select: which input port feeds the multiplier",
    "sel_b": "intra-connect select: which input port feeds the accumulator adder",
    "op": "function select (0=MAC, 1=MUL, 2=BYPASS, 3=BYPASS_B)",
    "count_limit": "number of MAC iterations before the done flag raises",
}


def build_pe_design(spec: ProcessingElementSpec, name: str = "pe") -> Design:
    """Elaborate a Processing Element into a gate-level design.

    Ports
    -----
    inputs
        ``in0 .. in{N-1}`` (FloPoCo words), ``count`` (iteration counter value
        from the sequencer).
    parameters (``--PARAM``)
        ``coeff``, ``sel_a``, ``sel_b``, ``op``, ``count_limit``.
    outputs
        ``out`` (FloPoCo word), ``done`` (counter compare flag).
    """
    fmt = spec.fmt
    d = Design(name)

    inputs: List[Bus] = [d.input_bus(f"in{i}", fmt.width) for i in range(spec.num_inputs)]
    coeff = d.param_bus("coeff", fmt.width)

    if spec.include_intra_connect:
        sel_a = d.param_bus("sel_a", spec.sel_width)
        sel_b = d.param_bus("sel_b", spec.sel_width)
        op = d.param_bus("op", 2)
        # Pad the input list to a power of two for the mux trees.
        padded = list(inputs)
        while len(padded) < (1 << spec.sel_width):
            padded.append(padded[-1])
        operand_a = d.mux_tree(sel_a, padded)   # multiplier operand (sample)
        operand_b = d.mux_tree(sel_b, padded)   # adder operand (accumulator input)
    else:
        operand_a = inputs[0]
        operand_b = inputs[1 % spec.num_inputs]
        op = None

    # Functional BLEs: FloPoCo multiplier and adder.
    product = build_fp_multiplier(d, operand_a, coeff, fmt)
    mac_sum = build_fp_adder(d, operand_b, product, fmt)

    if spec.include_intra_connect:
        out = d.mux_tree(op, [mac_sum, product, operand_a, operand_b])
    else:
        out = mac_sum
    d.output_bus("out", out)

    if spec.include_counter:
        count = d.input_bus("count", spec.counter_width)
        count_limit = d.param_bus("count_limit", spec.counter_width)
        d.output_bit("done", d.equals(count, count_limit))

    return d


def pe_port_summary(spec: ProcessingElementSpec) -> Dict[str, int]:
    """Bit widths of every PE port (used by documentation and the grid model)."""
    ports = {f"in{i}": spec.fmt.width for i in range(spec.num_inputs)}
    ports["out"] = spec.fmt.width
    ports["coeff"] = spec.fmt.width
    if spec.include_intra_connect:
        ports["sel_a"] = spec.sel_width
        ports["sel_b"] = spec.sel_width
        ports["op"] = 2
    if spec.include_counter:
        ports["count"] = spec.counter_width
        ports["count_limit"] = spec.counter_width
        ports["done"] = 1
    return ports
