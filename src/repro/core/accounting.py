"""Resource accounting for the VCGRA grid (Table II of the paper).

Table II compares, for a 4x4 VCGRA grid, the overlay-level resources that the
conventional implementation must realize on the FPGA's functional resources
against the fully parameterized implementation:

* **Inter-Network**: the virtual routing switches (9 VSBs + 32 virtual
  connection blocks = 41) -- LUT-based multiplexers conventionally, physical
  routing switches (TCONs) when parameterized;
* **Settings registers**: 25 32-bit registers (16 PEs + 9 VSBs) -- logic-cell
  flip-flops conventionally, configuration memory when parameterized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .grid import VCGRAArchitecture

__all__ = ["GridResourceRow", "grid_resource_table", "grid_resource_details"]


@dataclass(frozen=True)
class GridResourceRow:
    """One row of Table II."""

    implementation: str
    inter_network: int        #: virtual routing switches realized on functional resources
    settings_registers: int   #: settings registers realized on flip-flops

    def as_dict(self) -> Dict[str, int]:
        return {
            "implementation": self.implementation,
            "inter_network": self.inter_network,
            "settings_registers": self.settings_registers,
        }


def grid_resource_table(arch: VCGRAArchitecture) -> Dict[str, GridResourceRow]:
    """Reproduce Table II for an arbitrary grid size.

    The conventional implementation realizes every virtual routing switch on
    LUTs and every settings register on flip-flops; the fully parameterized
    implementation maps the former onto physical routing switches (TCONs) and
    the latter onto configuration memory, so both counts drop to zero.
    """
    conventional = GridResourceRow(
        implementation="Conventional",
        inter_network=arch.num_virtual_routing_switches,
        settings_registers=arch.num_settings_registers,
    )
    parameterized = GridResourceRow(
        implementation="Fully Parameterized",
        inter_network=0,
        settings_registers=0,
    )
    return {"conventional": conventional, "fully_parameterized": parameterized}


def grid_resource_details(arch: VCGRAArchitecture) -> Dict[str, int]:
    """Detailed breakdown behind Table II plus derived FPGA resource estimates."""
    word = arch.settings_register_width
    # A virtual routing switch steers one FloPoCo word; realized on LUTs it
    # needs roughly one 2:1/3:1 multiplexer LUT per routed bit.
    mux_luts_per_switch = arch.pe_spec.fmt.width
    return {
        "pes": arch.num_pes,
        "vsbs": arch.num_vsbs,
        "virtual_connection_blocks": arch.num_virtual_connection_blocks,
        "virtual_routing_switches": arch.num_virtual_routing_switches,
        "settings_registers": arch.num_settings_registers,
        "settings_register_bits": arch.settings_bits_total,
        "conventional_ff_estimate": arch.num_settings_registers * word,
        "conventional_routing_lut_estimate": (
            arch.num_virtual_routing_switches * mux_luts_per_switch
        ),
        "parameterized_ff": 0,
        "parameterized_routing_luts": 0,
    }
