"""High-level VCGRA tool flow (the right-hand side of Figure 2).

The application designer describes the computation as a dataflow graph of
PE-level operations (MAC, MUL, BYPASS ...).  Because the basic programmable
element is a whole PE rather than a LUT, the flow -- synthesis, technology
mapping onto PEs, placement onto the virtual grid and routing through the
virtual switch blocks -- is orders of magnitude faster than the gate-level
FPGA flow; it produces the VCGRA *settings values* that configure the overlay.

The flow here mirrors the paper's description:

1. **Synthesis**: parse/validate the dataflow description, levelize it.
2. **Technology mapping**: check every operation fits a PE's capabilities and
   derive its settings fields (coefficient, function select, count limit).
3. **Placement**: assign operations to grid PEs level by level, minimizing the
   column offset between producers and consumers.
4. **Routing**: allocate VSB routes for every producer/consumer edge and bind
   external inputs/outputs to entry/exit PEs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..flopoco.format import FPFormat
from .grid import GridPosition, VCGRAArchitecture
from .pe import PEOp
from .settings import VCGRASettings, VSBSettings

__all__ = [
    "PEOperation",
    "ApplicationGraph",
    "ToolflowReport",
    "VCGRAToolflowError",
    "run_vcgra_toolflow",
]


class VCGRAToolflowError(RuntimeError):
    """Raised when an application cannot be mapped onto the VCGRA grid."""


@dataclass
class PEOperation:
    """One node of the application dataflow graph (maps onto one PE).

    ``sample_input`` / ``acc_input`` name either an external input stream or
    another operation; ``acc_input`` may be ``None`` for MUL/BYPASS
    operations.
    """

    name: str
    op: int = PEOp.MAC
    coefficient: float = 1.0
    count_limit: int = 1
    sample_input: Optional[str] = None
    acc_input: Optional[str] = None

    def input_names(self) -> List[str]:
        return [n for n in (self.sample_input, self.acc_input) if n is not None]


@dataclass
class ApplicationGraph:
    """A dataflow application to implement on the VCGRA."""

    name: str
    external_inputs: List[str] = field(default_factory=list)
    operations: Dict[str, PEOperation] = field(default_factory=dict)
    outputs: Dict[str, str] = field(default_factory=dict)  #: output name -> operation name

    def add_operation(self, operation: PEOperation) -> PEOperation:
        if operation.name in self.operations or operation.name in self.external_inputs:
            raise ValueError(f"duplicate node name {operation.name!r}")
        self.operations[operation.name] = operation
        return operation

    def add_output(self, name: str, source_op: str) -> None:
        self.outputs[name] = source_op

    # -- analysis ------------------------------------------------------------------

    def levelize(self) -> Dict[str, int]:
        """ASAP level of every operation (external inputs are level -1)."""
        levels: Dict[str, int] = {}

        def level_of(name: str, stack: Tuple[str, ...] = ()) -> int:
            if name in self.external_inputs:
                return -1
            if name in levels:
                return levels[name]
            if name in stack:
                raise VCGRAToolflowError(f"combinational cycle through {name!r}")
            op = self.operations.get(name)
            if op is None:
                raise VCGRAToolflowError(f"operation {name!r} references unknown node")
            lvl = 1 + max(
                (level_of(i, stack + (name,)) for i in op.input_names()), default=-1
            )
            levels[name] = lvl
            return lvl

        for name in self.operations:
            level_of(name)
        return levels

    def validate(self) -> Dict[str, int]:
        """Check the graph and return its levelization (computed once)."""
        for op in self.operations.values():
            for inp in op.input_names():
                if inp not in self.operations and inp not in self.external_inputs:
                    raise VCGRAToolflowError(
                        f"operation {op.name!r} reads unknown input {inp!r}"
                    )
            if op.op not in PEOp.ALL:
                raise VCGRAToolflowError(f"operation {op.name!r} has invalid op {op.op}")
        for out, src in self.outputs.items():
            if src not in self.operations:
                raise VCGRAToolflowError(f"output {out!r} reads unknown operation {src!r}")
        return self.levelize()


@dataclass
class ToolflowReport:
    """Result of the high-level flow: settings plus compile statistics."""

    settings: VCGRASettings
    placement: Dict[str, GridPosition]
    levels: Dict[str, int]
    synthesis_seconds: float
    placement_seconds: float
    routing_seconds: float
    #: routed critical path of the underlying PE implementation (from the
    #: gate-level flow's STA, :attr:`repro.par.flow.PaRResult.timing`);
    #: ``None`` when the overlay is compiled without a PE timing closure.
    pe_critical_path_ns: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        return self.synthesis_seconds + self.placement_seconds + self.routing_seconds

    @property
    def pes_used(self) -> int:
        return len(self.placement)

    @property
    def pipeline_depth(self) -> int:
        """Number of PE pipeline levels the application occupies."""
        return 1 + max(self.levels.values()) if self.levels else 0

    @property
    def estimated_cycle_ns(self) -> Optional[float]:
        """Overlay cycle-time bound: the PE's routed critical path."""
        return self.pe_critical_path_ns

    @property
    def estimated_latency_ns(self) -> Optional[float]:
        """First-result latency estimate: pipeline depth x cycle time."""
        if self.pe_critical_path_ns is None:
            return None
        return self.pipeline_depth * self.pe_critical_path_ns


def _place_levels(
    app: ApplicationGraph,
    arch: VCGRAArchitecture,
    levels: Dict[str, int],
) -> Dict[str, GridPosition]:
    """Greedy level-by-level placement of operations onto grid rows."""
    if not app.operations:
        return {}
    max_level = max(levels.values())
    if max_level + 1 > arch.rows:
        raise VCGRAToolflowError(
            f"application needs {max_level + 1} pipeline levels but the grid has "
            f"{arch.rows} rows"
        )
    placement: Dict[str, GridPosition] = {}
    for level in range(max_level + 1):
        ops = [name for name, lvl in levels.items() if lvl == level]
        if len(ops) > arch.cols:
            raise VCGRAToolflowError(
                f"level {level} has {len(ops)} operations but the grid has only "
                f"{arch.cols} columns"
            )

        def preferred_column(name: str) -> float:
            op = app.operations[name]
            cols = [
                placement[i][1]
                for i in op.input_names()
                if i in placement
            ]
            return sum(cols) / len(cols) if cols else arch.cols / 2.0

        ops.sort(key=preferred_column)
        used_cols: List[int] = []
        for name in ops:
            target = preferred_column(name)
            candidates = sorted(
                (c for c in range(arch.cols) if c not in used_cols),
                key=lambda c: abs(c - target),
            )
            col = candidates[0]
            used_cols.append(col)
            placement[name] = (level, col)
    return placement


def _route_edges(
    app: ApplicationGraph,
    arch: VCGRAArchitecture,
    placement: Dict[str, GridPosition],
    settings: VCGRASettings,
) -> None:
    """Allocate VSB routes and input/output bindings for every dataflow edge."""
    for name, op in app.operations.items():
        dst = placement[name]
        for port, src_name in enumerate((op.sample_input, op.acc_input)):
            if src_name is None:
                continue
            if src_name in app.external_inputs:
                # External streams may feed several PEs (broadcast through the
                # overlay's dedicated input column): record every binding.
                settings.input_bindings.setdefault(src_name, []).append((dst, port))
                continue
            src = placement[src_name]
            if src not in arch.upstream_of(dst):
                raise VCGRAToolflowError(
                    f"edge {src_name!r} -> {name!r} spans non-adjacent PEs "
                    f"{src} -> {dst}; the VSB fabric cannot route it"
                )
            # The VSB involved sits between the two rows at the shared column edge.
            vsb_col = min(src[1], dst[1], arch.cols - 2) if arch.cols > 1 else 0
            vsb_key = (src[0], max(0, vsb_col))
            vsb = settings.vsb_settings.setdefault(vsb_key, VSBSettings())
            vsb.routes[(dst, port)] = src

    for out_name, src_name in app.outputs.items():
        settings.output_bindings[out_name] = placement[src_name]


def run_vcgra_toolflow(
    app: ApplicationGraph,
    arch: VCGRAArchitecture,
    pe_critical_path_ns: Optional[float] = None,
) -> ToolflowReport:
    """Run synthesis, mapping, placement and routing; return settings + timings.

    ``pe_critical_path_ns`` optionally threads the gate-level flow's routed
    PE critical path into the report, which then exposes overlay cycle-time
    and latency estimates (``estimated_cycle_ns`` / ``estimated_latency_ns``).
    """
    fmt: FPFormat = arch.pe_spec.fmt

    t0 = time.perf_counter()
    levels = app.validate()
    t_synth = time.perf_counter() - t0

    t0 = time.perf_counter()
    placement = _place_levels(app, arch, levels)
    t_place = time.perf_counter() - t0

    t0 = time.perf_counter()
    settings = VCGRASettings(arch=arch)
    for name, op in app.operations.items():
        pos = placement[name]
        pe = settings.pe(pos)
        pe.enabled = True
        pe.op = op.op
        pe.coefficient = fmt.encode(float(op.coefficient))
        pe.count_limit = op.count_limit
        # Operand selects: port 0 carries the sample, port 1 the accumulator.
        pe.sel_a = 0
        pe.sel_b = 1
    _route_edges(app, arch, placement, settings)
    t_route = time.perf_counter() - t0

    return ToolflowReport(
        settings=settings,
        placement=placement,
        levels=levels,
        synthesis_seconds=t_synth,
        placement_seconds=t_place,
        routing_seconds=t_route,
        pe_critical_path_ns=pe_critical_path_ns,
    )
