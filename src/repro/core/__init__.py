"""The VCGRA overlay: grid, PEs, tool flows, specialization and reconfiguration."""

from .accounting import GridResourceRow, grid_resource_details, grid_resource_table
from .flows import FlowComparison, PEFlowResult, compare_pe_flows, run_pe_flow
from .grid import (
    VCGRAArchitecture,
    VirtualConnectionBlock,
    VirtualSwitchBlock,
)
from .pe import PEOp, ProcessingElementSpec, build_pe_design, pe_port_summary
from .reconfiguration import (
    HWICAP,
    MICAP,
    ReconfigurationCostModel,
    ReconfigurationInterface,
)
from .settings import PESettings, VCGRASettings, VSBSettings
from .specialization import (
    PartialParameterizedConfiguration,
    SpecializationOutcome,
    SpecializedConfigurationGenerator,
    TemplateConfiguration,
)
from .toolflow import (
    ApplicationGraph,
    PEOperation,
    ToolflowReport,
    VCGRAToolflowError,
    run_vcgra_toolflow,
)

__all__ = [
    "GridResourceRow",
    "grid_resource_details",
    "grid_resource_table",
    "FlowComparison",
    "PEFlowResult",
    "compare_pe_flows",
    "run_pe_flow",
    "VCGRAArchitecture",
    "VirtualConnectionBlock",
    "VirtualSwitchBlock",
    "PEOp",
    "ProcessingElementSpec",
    "build_pe_design",
    "pe_port_summary",
    "HWICAP",
    "MICAP",
    "ReconfigurationCostModel",
    "ReconfigurationInterface",
    "PESettings",
    "VCGRASettings",
    "VSBSettings",
    "PartialParameterizedConfiguration",
    "SpecializationOutcome",
    "SpecializedConfigurationGenerator",
    "TemplateConfiguration",
    "ApplicationGraph",
    "PEOperation",
    "ToolflowReport",
    "VCGRAToolflowError",
    "run_vcgra_toolflow",
]
