"""Gate-level evaluation flows: conventional vs fully parameterized PE.

These drivers produce the numbers of the paper's Table I: one Processing
Element is pushed through

* the **conventional flow** -- synthesis, ABC-style optimization, conventional
  LUT mapping (parameters as ordinary inputs), TPLACE/TROUTE -- and
* the **fully parameterized flow** -- the same front end followed by TCONMAP
  (TLUTs + TCONs) and TPLACE/TROUTE,

and the LUT / TCON / logic-depth / wirelength / channel-width metrics of the
two runs are compared.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..fpga.architecture import FPGAArchitecture
from ..netlist.circuit import Circuit
from ..obs.trace import span
from ..par.flow import PaRResult, place_and_route
from ..synth.synthesis import SynthesisResult, synthesize
from ..techmap.lutmap import map_conventional
from ..techmap.mapping import MappedNetwork
from ..techmap.tconmap import map_parameterized
from .pe import ProcessingElementSpec, build_pe_design

__all__ = [
    "PEFlowResult",
    "FlowComparison",
    "run_pe_flow",
    "compare_pe_flows",
    "build_context_library",
]


@dataclass
class PEFlowResult:
    """Result of pushing one circuit through one of the two flows."""

    flow: str                        #: "conventional" or "fully_parameterized"
    synthesis: SynthesisResult
    network: MappedNetwork
    par: Optional[PaRResult]
    elapsed_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.elapsed_seconds.values())

    def table1_row(self) -> Dict[str, object]:
        """The metrics of one row of Table I."""
        row: Dict[str, object] = {
            "flow": self.flow,
            "luts": self.network.num_luts(),
            "tluts": self.network.num_tluts(),
            "tcons": self.network.num_tcons(),
            "logic_depth": self.network.depth(),
        }
        if self.par is not None:
            row["wirelength"] = self.par.wirelength
            row["channel_width"] = (
                self.par.min_channel_width.min_channel_width
                if self.par.min_channel_width is not None
                else self.par.device.arch.channel_width
            )
            row["routed"] = self.par.routing.success
            row["critical_path_ns"] = self.par.timing.critical_path_ns
            row["objective"] = self.par.objective
            if self.par.events:
                # Recovery provenance: a row produced through cache
                # fallbacks, pool resubmits or kernel degradation says so.
                row["recovery_events"] = len(self.par.events)
                row["degraded_kernel"] = self.par.degraded
        return row


@dataclass
class FlowComparison:
    """Both rows of Table I plus the derived improvement percentages."""

    conventional: PEFlowResult
    parameterized: PEFlowResult

    def lut_reduction(self) -> float:
        conv = self.conventional.network.num_luts()
        par = self.parameterized.network.num_luts()
        return 1.0 - par / conv if conv else 0.0

    def depth_reduction(self) -> float:
        conv = self.conventional.network.depth()
        par = self.parameterized.network.depth()
        return 1.0 - par / conv if conv else 0.0

    def wirelength_reduction(self) -> Optional[float]:
        if self.conventional.par is None or self.parameterized.par is None:
            return None
        conv = self.conventional.par.wirelength
        par = self.parameterized.par.wirelength
        return 1.0 - par / conv if conv else 0.0

    def intra_network_lut_overhead(self) -> float:
        """Fraction of the parameterized design's LUT count that the
        conventional flow additionally spends -- the paper's ~31% intra-network
        overhead figure (TCON logic realized on LUTs)."""
        conv = self.conventional.network.num_luts()
        par = self.parameterized.network.num_luts()
        return (conv - par) / par if par else 0.0

    def table(self) -> Dict[str, Dict[str, object]]:
        return {
            "conventional": self.conventional.table1_row(),
            "fully_parameterized": self.parameterized.table1_row(),
        }

    def summary(self) -> Dict[str, float]:
        out = {
            "lut_reduction": self.lut_reduction(),
            "depth_reduction": self.depth_reduction(),
            "intra_network_lut_overhead": self.intra_network_lut_overhead(),
        }
        wl = self.wirelength_reduction()
        if wl is not None:
            out["wirelength_reduction"] = wl
        return out


def run_pe_flow(
    circuit: Circuit,
    parameterized: bool,
    do_par: bool = True,
    arch: Optional[FPGAArchitecture] = None,
    channel_width: int = 10,
    placement_effort: float = 1.0,
    router_iterations: int = 25,
    find_min_channel_width: bool = False,
    seed: int = 0,
    workers: Optional[int] = None,
    objective: str = "wirelength",
    route_deadline_s: Optional[float] = None,
) -> PEFlowResult:
    """Push a circuit through one complete flow (synthesis -> mapping -> PaR).

    ``workers`` parallelizes the minimum-channel-width probes of the PaR
    step over a process pool; route/placement results are memoized on disk
    when the ``REPRO_PAR_CACHE`` environment variable names a directory.
    ``objective="timing"`` runs criticality-driven placement and routing
    (see :func:`repro.par.flow.place_and_route`).  ``route_deadline_s``
    bounds each routing kernel's wall time; a kernel that exceeds it
    degrades down the chain from its own position (astar->fast for the
    ``auto`` default; wavefront heads the chain only when explicitly
    requested) with the switch recorded in the result's events.
    """
    elapsed: Dict[str, float] = {}

    t0 = time.perf_counter()
    with span("flow.synthesis"):
        synth = synthesize(circuit)
    elapsed["synthesis"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    with span("flow.techmap", parameterized=parameterized):
        if parameterized:
            network = map_parameterized(synth.circuit)
        else:
            network = map_conventional(synth.circuit)
    elapsed["technology_mapping"] = time.perf_counter() - t0

    par = None
    if do_par:
        t0 = time.perf_counter()
        par = place_and_route(
            network,
            arch=arch,
            channel_width=channel_width,
            placement_effort=placement_effort,
            router_iterations=router_iterations,
            find_min_channel_width=find_min_channel_width,
            seed=seed,
            workers=workers,
            objective=objective,
            route_deadline_s=route_deadline_s,
        )
        elapsed["place_and_route"] = time.perf_counter() - t0

    return PEFlowResult(
        flow="fully_parameterized" if parameterized else "conventional",
        synthesis=synth,
        network=network,
        par=par,
        elapsed_seconds=elapsed,
    )


def compare_pe_flows(
    spec: Optional[ProcessingElementSpec] = None,
    circuit: Optional[Circuit] = None,
    do_par: bool = True,
    channel_width: int = 10,
    placement_effort: float = 1.0,
    router_iterations: int = 25,
    find_min_channel_width: bool = False,
    seed: int = 0,
    workers: Optional[int] = None,
    objective: str = "wirelength",
) -> FlowComparison:
    """Run both flows on the same Processing Element and compare them (Table I).

    Either a :class:`ProcessingElementSpec` (the PE is elaborated internally)
    or an explicit circuit can be supplied.
    """
    if circuit is None:
        spec = spec or ProcessingElementSpec()
        circuit = build_pe_design(spec).circuit
    conventional = run_pe_flow(
        circuit,
        parameterized=False,
        do_par=do_par,
        channel_width=channel_width,
        placement_effort=placement_effort,
        router_iterations=router_iterations,
        find_min_channel_width=find_min_channel_width,
        seed=seed,
        workers=workers,
        objective=objective,
    )
    parameterized = run_pe_flow(
        circuit,
        parameterized=True,
        do_par=do_par,
        channel_width=channel_width,
        placement_effort=placement_effort,
        router_iterations=router_iterations,
        find_min_channel_width=find_min_channel_width,
        seed=seed,
        workers=workers,
        objective=objective,
    )
    return FlowComparison(conventional=conventional, parameterized=parameterized)


def build_context_library(
    circuits: Dict[str, Circuit],
    parameterized: bool = True,
    arch: Optional[FPGAArchitecture] = None,
    channel_width: int = 10,
    placement_effort: float = 0.5,
    router_iterations: int = 20,
    seed: int = 0,
    objective: str = "wirelength",
    cache=None,
    popularity: Optional[Dict[str, float]] = None,
):
    """Compile named circuits into a multi-context library on one shared grid.

    This is the build driver of the reconfiguration scheduler
    (:mod:`repro.reconfig`, see RECONFIGURATION.md): every circuit runs the
    full flow (synthesis -> mapping -> TPaR) against the *same*
    architecture -- auto-sized for the largest member unless ``arch`` is
    given -- so their configurations share one frame space and frame-level
    diffs between any two contexts are meaningful.

    The route of each context is served through
    :func:`repro.par.flow.cached_route` when ``cache`` (or
    ``REPRO_PAR_CACHE``) is set: a warm cache re-hydrates the routed
    forests from disk and the whole library builds without routing
    anything (assert with ``cache.stats()`` -- one hit per context).

    ``popularity`` (name -> weight) sets each context's admission
    criticality; unnamed contexts default to 0.  Each context's metadata
    records its routed ``critical_path_ns`` and ``wirelength``.

    Returns a :class:`repro.reconfig.context.ContextLibrary` whose contexts
    are registered in ``circuits`` iteration order (= popularity order for
    :func:`repro.reconfig.trace.synthetic_trace`); its ``build_stats``
    carries the build cache's counter snapshot plus ``hit_rate`` whenever a
    cache served the build.
    """
    # Imported here: repro.reconfig depends on repro.core.reconfiguration,
    # and a module-level import would make that a package-import cycle.
    from ..reconfig.context import ContextLibrary, render_context_bitstream

    if not circuits:
        raise ValueError("context library needs at least one circuit")
    popularity = popularity or {}
    if cache is None:
        # Resolve the env cache once so the whole build shares one counter
        # set (place_and_route would otherwise make a fresh instance per
        # circuit and the library's build_stats would always read zero).
        from ..par.cache import PaRCache

        cache = PaRCache.from_env()

    networks: Dict[str, MappedNetwork] = {}
    for name, circuit in circuits.items():
        synth = synthesize(circuit)
        networks[name] = (
            map_parameterized(synth.circuit) if parameterized else map_conventional(synth.circuit)
        )

    if arch is None:
        from ..fpga.architecture import auto_size
        from ..par.netlist import from_mapped_network

        max_logic = max_ios = 0
        for network in networks.values():
            netlist = from_mapped_network(network)
            max_logic = max(max_logic, netlist.num_logic_blocks() + netlist.num_ff_blocks())
            max_ios = max(max_ios, netlist.num_io_blocks())
        arch = auto_size(max_logic, max_ios, channel_width=channel_width)

    library: Optional[ContextLibrary] = None
    for name, network in networks.items():
        par = place_and_route(
            network,
            arch=arch,
            channel_width=channel_width,
            placement_effort=placement_effort,
            router_iterations=router_iterations,
            seed=seed,
            cache=cache,
            objective=objective,
        )
        if not par.routing.success:
            raise RuntimeError(
                f"context {name!r} did not route on the shared "
                f"{arch.width}x{arch.height} grid at W={arch.channel_width}"
            )
        if library is None:
            library = ContextLibrary(par.device.config_layout)
        library.add_bitstream(
            name,
            render_context_bitstream(par),
            criticality=popularity.get(name, 0.0),
            metadata={
                "critical_path_ns": par.timing.critical_path_ns,
                "wirelength": float(par.wirelength),
            },
        )
    if cache is not None:
        library.build_stats = dict(cache.stats())
        library.build_stats["hit_rate"] = cache.hit_rate()
    return library
