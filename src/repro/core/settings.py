"""VCGRA settings: the per-PE and per-VSB configuration words.

The output of the high-level VCGRA tool flow (Section II-A of the paper) is a
set of *settings values* -- one settings register per PE and per VSB -- that
configure the overlay to implement the application.  In the conventional
implementation these registers are flip-flops written over a dedicated bus;
in the fully parameterized implementation the same values become parameter
inputs of the DCS flow and are folded into the FPGA's configuration memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .grid import GridPosition, VCGRAArchitecture
from .pe import PEOp, ProcessingElementSpec

__all__ = ["PESettings", "VSBSettings", "VCGRASettings"]


@dataclass
class PESettings:
    """Settings-register contents of one Processing Element."""

    coefficient: int = 0          #: FloPoCo-encoded filter coefficient
    sel_a: int = 0                #: intra-connect select for the multiplier operand
    sel_b: int = 0                #: intra-connect select for the adder operand
    op: int = PEOp.MAC            #: function select
    count_limit: int = 0          #: MAC iteration count
    enabled: bool = False         #: whether this PE is used by the mapped application

    def as_param_words(self, spec: ProcessingElementSpec) -> Dict[str, int]:
        """Parameter-bus assignment for the DCS specialization stage."""
        words = {"coeff": self.coefficient}
        if spec.include_intra_connect:
            words["sel_a"] = self.sel_a
            words["sel_b"] = self.sel_b
            words["op"] = self.op
        if spec.include_counter:
            words["count_limit"] = self.count_limit
        return words

    def register_words(self, spec: ProcessingElementSpec, width: int = 32) -> List[int]:
        """Pack the settings into ``width``-bit register words (LSB-first fields)."""
        bits = 0
        value = 0

        def push(v: int, w: int) -> None:
            nonlocal bits, value
            value |= (int(v) & ((1 << w) - 1)) << bits
            bits += w

        push(self.coefficient, spec.fmt.width)
        if spec.include_intra_connect:
            push(self.sel_a, spec.sel_width)
            push(self.sel_b, spec.sel_width)
            push(self.op, 2)
        if spec.include_counter:
            push(self.count_limit, spec.counter_width)
        words = []
        while bits > 0:
            words.append(value & ((1 << width) - 1))
            value >>= width
            bits -= width
        return words or [0]


@dataclass
class VSBSettings:
    """Settings-register contents of one Virtual Switch Block.

    ``routes`` maps each downstream PE input port (pe position, port index) to
    the upstream PE whose output should be forwarded there.
    """

    routes: Dict[Tuple[GridPosition, int], GridPosition] = field(default_factory=dict)

    def register_word(self, arch: VCGRAArchitecture) -> int:
        """Pack the routing selections into a single settings word."""
        word = 0
        shift = 0
        for (sink, port), src in sorted(self.routes.items()):
            # 2 bits select among the (at most 3) upstream candidates + idle.
            candidates = arch.upstream_of(sink)
            idx = candidates.index(src) + 1 if src in candidates else 0
            word |= (idx & 0x3) << shift
            shift += 2
        return word


@dataclass
class VCGRASettings:
    """Complete configuration of a VCGRA grid for one application."""

    arch: VCGRAArchitecture
    pe_settings: Dict[GridPosition, PESettings] = field(default_factory=dict)
    vsb_settings: Dict[Tuple[int, int], VSBSettings] = field(default_factory=dict)
    #: where each application input stream enters; one stream may be broadcast
    #: to several PE ports (input name -> [(PE position, port), ...])
    input_bindings: Dict[str, List[Tuple[GridPosition, int]]] = field(default_factory=dict)
    #: which PE produces each application output (output name -> PE position)
    output_bindings: Dict[str, GridPosition] = field(default_factory=dict)

    def pe(self, pos: GridPosition) -> PESettings:
        return self.pe_settings.setdefault(pos, PESettings())

    def enabled_pes(self) -> List[GridPosition]:
        return [pos for pos, s in self.pe_settings.items() if s.enabled]

    def num_enabled(self) -> int:
        return len(self.enabled_pes())

    def register_image(self) -> Dict[str, List[int]]:
        """All settings-register words keyed by component name.

        This is what the conventional implementation would shift in over the
        dedicated settings bus, and what the parameterized implementation
        hands to the Specialized Configuration Generator.
        """
        image: Dict[str, List[int]] = {}
        for pos in self.arch.pe_positions():
            settings = self.pe_settings.get(pos, PESettings())
            image[self.arch.pe_name(pos)] = settings.register_words(
                self.arch.pe_spec, self.arch.settings_register_width
            )
        for vsb in self.arch.vsbs():
            settings = self.vsb_settings.get((vsb.row, vsb.col), VSBSettings())
            image[vsb.name] = [settings.register_word(self.arch)]
        return image

    def diff(self, other: "VCGRASettings") -> List[str]:
        """Names of components whose settings differ (drives reconfiguration cost)."""
        mine, theirs = self.register_image(), other.register_image()
        return sorted(name for name in mine if mine[name] != theirs.get(name))
