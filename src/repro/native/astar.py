"""Native (compiled-C) twin of the ``astar`` routing kernel's search loop.

The Python ``_route_astar`` kernel spends its time in the ``_search``
closure: heap ops, CSR neighbor expansion, the admissible Manhattan +
pin-floor lookahead, and the congestion/criticality cost blend.  This
module compiles that exact loop to machine code (see
:mod:`repro.native.build`) and binds it over the same flat arrays the
Python kernel reads -- the search view's CSR adjacency, the per-iteration
congestion cost vector, and per-search ``visited``/``cost_so_far``/
``prev_node`` planes.

Bit-identity contract
---------------------

The C kernel performs the *same IEEE-754 operations in the same order* as
the Python twin (compiled with ``-ffp-contract=off -fno-fast-math`` so the
compiler cannot fuse or re-associate them), and its heap pops replicate
``heapq``'s order: every ``(f, g, node)`` key in flight is distinct (a
re-push requires strictly improving ``g`` past the 1e-12 stale band), so
the keys form a strict total order and any correct binary heap pops them
in exactly the same sequence.  Seeds replicate the lazy sorted seed
stream, the inline chase rule, and the entry-map completion with its
strict ``<`` tie-breaks.  Routes, wirelengths, and iteration counts are
therefore bit-identical to the Python kernel -- verified across the bench
seeds by ``tests/test_native.py`` and gated in CI by
``benchmarks/check_quality.py`` -- so ``ROUTE_ALGO_VERSION`` and every
cached artifact stay valid.

The backtrace happens in C too: the returned path buffer is the
``(sink, ..., attach)`` node run the Python side merges into the route
tree and appends to the net's :class:`~repro.par.forest._NetFragment`
(fragments are emitted during routing now, not rebuilt per re-routed net
at forest-build time).

Observability: ``bind`` takes an ``int64`` *stats* out-param array and the
kernel increments ``stats[0]`` once per expanded node (adjacency scan) --
the same definition the Python twin counts -- feeding the
``route.nodes_expanded`` telemetry (see OBSERVABILITY.md) with integer-only
side effects that cannot perturb the FP trajectory.

Not thread-safe: search scratch (heap, seed list) lives in static storage
inside the shared object, mirroring the single-threaded Python kernel.
Process-pool drivers get one copy per worker, which is the supported
parallelism model.
"""

from __future__ import annotations

import ctypes
from typing import Dict, Optional

import numpy as np

from .build import load_kernel

__all__ = ["astar_kernel", "NativeAstar", "SOURCE"]

SOURCE = r"""
/* Native twin of repro.par.routing._route_astar's _search loop.
 *
 * Bit-identity rules: every float expression below copies the Python
 * source's shape (left-to-right association, same literals, same 1e-12
 * epsilons); compiled with -ffp-contract=off -fno-fast-math so no FMA
 * fusion or re-association can change a single ULP.
 */
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

/* ---- growable scratch, persistent across calls (single-threaded) ---- */

static double  *heap_f = NULL;
static double  *heap_g = NULL;
static int64_t *heap_n = NULL;
static int64_t  heap_cap = 0;
static int64_t  heap_len = 0;

typedef struct { double h; int64_t n; } seed_t;
static seed_t  *seeds = NULL;
static int64_t  seed_cap = 0;

/* ---- state bound once per route call / per PathFinder iteration ---- */

static const int64_t *g_csr_ptr;
static const int32_t *g_csr_dst;
static const int64_t *g_xs;
static const int64_t *g_ys;
static const int8_t  *g_type;
static int64_t        g_ipin_t, g_sink_t;
static const double  *g_cost;   /* congestion cost vector (per iteration) */
static const double  *g_dly;    /* normalized delay vector (timing mode)  */
static int64_t       *g_visited;
static double        *g_csf;
static int64_t       *g_prev;
static int64_t       *g_tree_mark;
static double         g_fac, g_pfb;
static int64_t       *g_stats;  /* out-param counters: [0] = nodes expanded */

void repro_astar_bind(const int64_t *csr_ptr, const int32_t *csr_dst,
                      const int64_t *xs, const int64_t *ys,
                      const int8_t *ntype, int64_t ipin_t, int64_t sink_t,
                      int64_t *visited, double *csf, int64_t *prev,
                      int64_t *tree_mark, double fac, double pin_floor,
                      int64_t *stats)
{
    g_csr_ptr = csr_ptr; g_csr_dst = csr_dst;
    g_xs = xs; g_ys = ys;
    g_type = ntype; g_ipin_t = ipin_t; g_sink_t = sink_t;
    g_visited = visited; g_csf = csf; g_prev = prev;
    g_tree_mark = tree_mark;
    g_fac = fac; g_pfb = pin_floor;
    g_stats = stats;
}

void repro_astar_costs(const double *cost, const double *dly)
{
    g_cost = cost; g_dly = dly;
}

/* ---- binary heap keyed on (f, g, n); all live keys are distinct ---- */

static inline int lt3(double f1, double g1, int64_t n1,
                      double f2, double g2, int64_t n2)
{
    if (f1 != f2) return f1 < f2;
    if (g1 != g2) return g1 < g2;
    return n1 < n2;
}

static void heap_push(double f, double g, int64_t n)
{
    if (heap_len == heap_cap) {
        heap_cap = heap_cap ? heap_cap * 2 : 4096;
        heap_f = (double *)realloc(heap_f, heap_cap * sizeof(double));
        heap_g = (double *)realloc(heap_g, heap_cap * sizeof(double));
        heap_n = (int64_t *)realloc(heap_n, heap_cap * sizeof(int64_t));
    }
    int64_t i = heap_len++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (lt3(f, g, n, heap_f[p], heap_g[p], heap_n[p])) {
            heap_f[i] = heap_f[p]; heap_g[i] = heap_g[p]; heap_n[i] = heap_n[p];
            i = p;
        } else break;
    }
    heap_f[i] = f; heap_g[i] = g; heap_n[i] = n;
}

static void heap_pop(double *f, double *g, int64_t *n)
{
    *f = heap_f[0]; *g = heap_g[0]; *n = heap_n[0];
    heap_len--;
    if (heap_len <= 0) return;
    double lf = heap_f[heap_len], lg = heap_g[heap_len];
    int64_t ln = heap_n[heap_len];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= heap_len) break;
        int64_t r = c + 1;
        if (r < heap_len &&
            lt3(heap_f[r], heap_g[r], heap_n[r],
                heap_f[c], heap_g[c], heap_n[c]))
            c = r;
        if (lt3(heap_f[c], heap_g[c], heap_n[c], lf, lg, ln)) {
            heap_f[i] = heap_f[c]; heap_g[i] = heap_g[c]; heap_n[i] = heap_n[c];
            i = c;
        } else break;
    }
    heap_f[i] = lf; heap_g[i] = lg; heap_n[i] = ln;
}

static int seed_cmp(const void *a, const void *b)
{
    const seed_t *x = (const seed_t *)a, *y = (const seed_t *)b;
    if (x->h != y->h) return x->h < y->h ? -1 : 1;
    return x->n < y->n ? -1 : (x->n > y->n ? 1 : 0);
}

/* ---- per-search completion through the target's entry CSR ---- */

static int64_t        s_gen, s_target;
static const int64_t *s_ew_wire, *s_ew_ptr, *s_ew_ipin;
static int64_t        s_n_ew;
static double         s_crt, s_omc, s_tcost;
static double         s_best;

static void complete(int64_t w, double g_w)
{
    /* binary search the sorted unique entry wires for w */
    int64_t lo = 0, hi = s_n_ew;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (s_ew_wire[mid] < w) lo = mid + 1; else hi = mid;
    }
    if (lo >= s_n_ew || s_ew_wire[lo] != w) return;
    int64_t a = s_ew_ptr[lo], b = s_ew_ptr[lo + 1];
    int64_t ip;
    double c;
    if (s_crt != 0.0) {
        ip = s_ew_ipin[a];
        c = s_omc * g_cost[ip] + s_crt * g_dly[ip];
        for (int64_t j = a + 1; j < b; j++) {
            int64_t q = s_ew_ipin[j];
            double cq = s_omc * g_cost[q] + s_crt * g_dly[q];
            if (cq < c) { ip = q; c = cq; }
        }
    } else {
        ip = s_ew_ipin[a];
        c = g_cost[ip];
        for (int64_t j = a + 1; j < b; j++) {
            int64_t q = s_ew_ipin[j];
            if (g_cost[q] < c) { ip = q; c = g_cost[q]; }
        }
    }
    double total = g_w + c + s_tcost;
    if (total < s_best - 1e-12) {
        s_best = total;
        g_visited[s_target] = s_gen;
        g_csf[s_target] = total;
        g_prev[s_target] = ip;
        g_visited[ip] = s_gen;
        g_csf[ip] = g_w + c;
        g_prev[ip] = w;
    }
}

/* One directed search from the route tree to `target`, plus backtrace.
 * Returns the path length (>0, sink first; out_path[len] holds the attach
 * node), 0 when the target is unreachable within the bounds, -1 on an
 * out_path overflow (cannot happen with a num_nodes+1 buffer). */
int64_t repro_astar_search(int64_t gen, const int64_t *tree, int64_t tree_len,
                           int64_t target,
                           const int64_t *ew_wire, const int64_t *ew_ptr,
                           const int64_t *ew_ipin, int64_t n_ew,
                           int64_t xlo, int64_t xhi, int64_t ylo, int64_t yhi,
                           double crt, int64_t *out_path, int64_t out_cap)
{
    const int64_t *xs = g_xs, *ys = g_ys;
    const double *cost = g_cost, *dly = g_dly;
    int64_t *visited = g_visited, *prev = g_prev;
    double *csf = g_csf;

    double omc = 1.0 - crt;
    double pf = (crt == 0.0) ? g_pfb : omc * g_pfb;
    double fac = g_fac;
    int64_t tx = xs[target], ty = ys[target];
    double t_cost = cost[target];
    if (crt != 0.0) t_cost = omc * t_cost + crt * dly[target];

    s_gen = gen; s_target = target;
    s_ew_wire = ew_wire; s_ew_ptr = ew_ptr; s_ew_ipin = ew_ipin; s_n_ew = n_ew;
    s_crt = crt; s_omc = omc; s_tcost = t_cost;
    s_best = HUGE_VAL;
    heap_len = 0;

    if (tree_len > seed_cap) {
        seed_cap = tree_len * 2;
        seeds = (seed_t *)realloc(seeds, seed_cap * sizeof(seed_t));
    }
    int64_t nseeds = 0;
    for (int64_t i = 0; i < tree_len; i++) {
        int64_t n = tree[i];
        g_tree_mark[n] = gen;
        int64_t tt = g_type[n];
        if (tt == g_ipin_t || tt == g_sink_t) continue;
        int64_t x = xs[n], y = ys[n];
        if (x < xlo || x > xhi || y < ylo || y > yhi) continue;
        int64_t dx = x - tx; if (dx < 0) dx = -dx;
        int64_t dy = y - ty; if (dy < 0) dy = -dy;
        if (dx + dy <= 1) complete(n, 0.0);
        seeds[nseeds].h = (double)(dx + dy) * fac;
        seeds[nseeds].n = n;
        nseeds++;
    }
    qsort(seeds, nseeds, sizeof(seed_t), seed_cmp);

    int64_t si = 0;
    int found = 0;
    for (;;) {
        double f, g;
        int64_t n;
        if (si < nseeds && (heap_len == 0 || seeds[si].h <= heap_f[0])) {
            f = seeds[si].h; n = seeds[si].n; si++;
            g = 0.0;
            visited[n] = gen; csf[n] = 0.0; prev[n] = -1;
        } else if (heap_len) {
            heap_pop(&f, &g, &n);
            if (g > csf[n] + 1e-12) continue;  /* stale heap entry */
        } else break;
        for (;;) {
            if (f >= s_best) { found = 1; goto backtrace; }
            g_stats[0]++;  /* node expanded: its adjacency is scanned */
            double chase_f = HUGE_VAL, chase_g = 0.0;
            int64_t chase_m = -1;
            int64_t e_end = g_csr_ptr[n + 1];
            for (int64_t e = g_csr_ptr[n]; e < e_end; e++) {
                int64_t m = g_csr_dst[e];
                double cm = cost[m];
                if (crt != 0.0) cm = omc * cm + crt * dly[m];
                double new_cost = g + cm;
                if (visited[m] == gen && new_cost >= csf[m] - 1e-12)
                    continue;  /* already reached at least as cheaply */
                int64_t x = xs[m];
                if (x < xlo || x > xhi) continue;
                int64_t y = ys[m];
                if (y < ylo || y > yhi) continue;
                int64_t dx = x - tx; if (dx < 0) dx = -dx;
                int64_t dy = y - ty; if (dy < 0) dy = -dy;
                int64_t d = dx + dy;
                double f_m;
                if (d <= 1) {
                    visited[m] = gen; csf[m] = new_cost; prev[m] = n;
                    complete(m, new_cost);
                    f_m = new_cost + (double)d * fac;
                    if (new_cost + (double)d + pf >= s_best || f_m >= s_best)
                        continue;
                } else {
                    f_m = new_cost + (double)d * fac;
                    if (f_m >= s_best || new_cost + (double)d + pf >= s_best)
                        continue;  /* cannot beat the known completion */
                    visited[m] = gen; csf[m] = new_cost; prev[m] = n;
                }
                if (f_m < chase_f) {
                    if (chase_m >= 0) heap_push(chase_f, chase_g, chase_m);
                    chase_f = f_m; chase_g = new_cost; chase_m = m;
                } else {
                    heap_push(f_m, new_cost, m);
                }
            }
            if (chase_m < 0) break;
            if ((heap_len && heap_f[0] < chase_f) ||
                (si < nseeds && seeds[si].h < chase_f)) {
                heap_push(chase_f, chase_g, chase_m);
                break;
            }
            f = chase_f; g = chase_g; n = chase_m;
        }
    }
    found = s_best < HUGE_VAL;

backtrace:
    if (!found) return 0;
    int64_t np = 0;
    int64_t node = target;
    while (g_tree_mark[node] != gen) {
        if (np >= out_cap - 1) return -1;
        out_path[np++] = node;
        node = g_prev[node];
    }
    out_path[np] = node;  /* attach */
    return np;
}
"""

_i64 = ctypes.c_int64
_f64 = ctypes.c_double
_p = ctypes.c_void_p


class NativeAstar:
    """ctypes binding of the compiled search over one route call's arrays."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self._bind = lib.repro_astar_bind
        self._bind.argtypes = [_p, _p, _p, _p, _p, _i64, _i64, _p, _p, _p, _p,
                               _f64, _f64, _p]
        self._bind.restype = None
        self._costs = lib.repro_astar_costs
        self._costs.argtypes = [_p, _p]
        self._costs.restype = None
        self._search = lib.repro_astar_search
        self._search.argtypes = [_i64, _p, _i64, _i64, _p, _p, _p, _i64,
                                 _i64, _i64, _i64, _i64, _f64, _p, _i64]
        self._search.restype = _i64
        #: bound-array refs: everything the C side holds raw pointers into
        #: must stay alive for the duration of the route call.
        self._refs: tuple = ()

    def bind(self, csr_ptr, csr_dst, xs_arr, ys_arr, ntype, ipin_t, sink_t,
             visited, csf, prev, tree_mark, fac, pin_floor, stats) -> None:
        """Bind one route call's arrays; ``stats`` is an int64 out-param
        counter array (``stats[0]`` accumulates nodes expanded) read by the
        observability layer -- counting is integer-only, so it cannot
        perturb the bit-identical FP trajectory."""
        self._refs = (csr_ptr, csr_dst, xs_arr, ys_arr, ntype,
                      visited, csf, prev, tree_mark, stats)
        self._bind(csr_ptr.ctypes.data, csr_dst.ctypes.data,
                   xs_arr.ctypes.data, ys_arr.ctypes.data,
                   ntype.ctypes.data, ipin_t, sink_t,
                   visited.ctypes.data, csf.ctypes.data, prev.ctypes.data,
                   tree_mark.ctypes.data, fac, pin_floor, stats.ctypes.data)

    def set_costs(self, cost: np.ndarray, dly: np.ndarray) -> None:
        self._refs = self._refs + (cost, dly)
        self._costs(cost.ctypes.data, dly.ctypes.data)

    def search(self, gen: int, tree_arr: np.ndarray, target: int,
               ew_wire: np.ndarray, ew_ptr: np.ndarray, ew_ipin: np.ndarray,
               bounds, crt: float, out_path: np.ndarray) -> int:
        xlo, xhi, ylo, yhi = bounds
        return self._search(
            gen, tree_arr.ctypes.data, len(tree_arr), target,
            ew_wire.ctypes.data, ew_ptr.ctypes.data, ew_ipin.ctypes.data,
            len(ew_wire), xlo, xhi, ylo, yhi, crt,
            out_path.ctypes.data, len(out_path),
        )


_instances: Dict[int, NativeAstar] = {}


def astar_kernel() -> Optional[NativeAstar]:
    """The compiled astar search, or ``None`` when the backend is off."""
    lib = load_kernel("astar", SOURCE)
    if lib is None:
        return None
    inst = _instances.get(id(lib))
    if inst is None:
        inst = NativeAstar(lib)
        _instances[id(lib)] = inst
    return inst
