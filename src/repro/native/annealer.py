"""Native (compiled-C) twin of the batched annealer's accept/reject loop.

``repro.par.placement._place_batched`` spends its time in the per-move
loop: block/site draws, incremental bbox/HPWL deltas, the quantized-int
timing re-pricing, and the Metropolis accept test.  This module compiles
one *temperature step* of that loop (see :mod:`repro.native.build`); the
cooling schedule, range-limit adaptation, and exit tests stay in Python,
as does every random draw.

Bit-identity contract
---------------------

Trajectories must match the Python kernel move for move:

* **Randomness stays in Python.**  The C loop consumes the same
  ``int64``/``float64`` blocks (``gen.integers`` / ``gen.random``,
  one PCG64 stream) from shared buffers and invokes a ctypes callback to
  refill them *at exactly the Python kernel's refill points* (the
  ``ipos + 10 > RBUF`` pre-check at move start, the ``upos >= RBUF``
  check right before an acceptance draw) -- the two draw kinds interleave
  on one stream, so refill order is part of the trajectory.
* **Costs are exact integers** (quantized weights), so accumulation order
  cannot drift; the single float expression, the Metropolis test
  ``u < exp(-delta / tmax)``, calls the same libm ``exp`` CPython's
  ``math.exp`` wraps and divides the same exactly-converted integer.
* **Re-timing stays in Python** (criticality callbacks may run arbitrary
  user code): the C loop calls back out at the same accepted-move cadence
  and re-prices from the refreshed integer weights exactly like the twin.

Verified across the bench seeds by ``tests/test_native.py`` and gated by
``benchmarks/check_quality.py``.

Not thread-safe (static bound state in the shared object), mirroring the
single-threaded Python kernel; process pools get one copy per worker.
"""

from __future__ import annotations

import ctypes
from typing import Dict, Optional

import numpy as np

from .build import load_kernel

__all__ = [
    "annealer_kernel", "NativeAnnealer", "SOURCE", "ISTATE", "istate_counters",
]

#: istate slot layout shared with the C side.
ISTATE = {
    "ipos": 0, "upos": 1, "attempted": 2, "accepted": 3,
    "accepted_this_temp": 4, "accepted_since_retime": 5,
    "total_cost": 6, "timing_cost": 7, "mvid": 8, "abort": 9,
}
ISTATE_LEN = 10


def istate_counters(istate: np.ndarray) -> Dict[str, int]:
    """Named snapshot of the istate array, the annealer's counter out-param.

    The C kernel has no other channel back to Python: every counter it
    maintains (moves attempted/accepted, running costs, RNG cursors) lives
    in one int64 slot of ``istate``, so telemetry reads are plain array
    loads that cannot perturb the anneal trajectory.
    """
    return {name: int(istate[idx]) for name, idx in ISTATE.items()}

SOURCE = r"""
/* Native twin of repro.par.placement._place_batched's move loop.
 *
 * All cost arithmetic is int64 (exact, like Python's ints at these
 * magnitudes); the only float op is the Metropolis test, kept to the
 * same expression shape as the Python twin.  Compiled with
 * -ffp-contract=off -fno-fast-math (see repro.native.build).
 */
#include <stdint.h>
#include <math.h>

typedef void (*cb_fn_t)(int64_t);

/* istate slots (shared with Python; keep in sync with annealer.py) */
#define IPOS 0
#define UPOS 1
#define ATT 2
#define ACC 3
#define ACC_TEMP 4
#define ACC_RETIME 5
#define TOTAL 6
#define TIMING 7
#define MVID 8
#define ABORT 9

static int64_t *g_bgsite, *g_bx, *g_by, *g_occ;
static const int64_t *g_sx, *g_sy;
static const int64_t *g_pins_ptr, *g_pins, *g_nb_ptr, *g_nb;
static int64_t *g_bb, *g_ncost;
static const int64_t *g_wq;
static const int64_t *g_gblocks[2], *g_gsites[2];
static int64_t g_nblk[2], g_nsit[2];
static int64_t g_num_groups, g_logic_group, g_width, g_height;
static int64_t *g_ibuf;
static double *g_ubuf;
static int64_t g_rbuf;
static int64_t g_has_timing;
static const int64_t *g_tsrc, *g_tdst, *g_cb_ptr, *g_cb;
static int64_t *g_cdist, *g_cwq;
static int64_t g_nconn, g_retime_every;
static int64_t *g_net_mark;
static int64_t *g_upd_nid, *g_upd_bb, *g_upd_cost;
static int64_t *g_tsc_ci, *g_tsc_nd;
static cb_fn_t g_cb_fn;
static int64_t *g_istate;

void repro_anneal_bind(
    int64_t *block_gsite, int64_t *block_x, int64_t *block_y,
    int64_t *occupant, const int64_t *site_x, const int64_t *site_y,
    const int64_t *pins_ptr, const int64_t *pins,
    const int64_t *nb_ptr, const int64_t *nb,
    int64_t *bb, int64_t *net_cost, const int64_t *wq,
    const int64_t *gblocks0, int64_t nblk0,
    const int64_t *gsites0, int64_t nsit0,
    const int64_t *gblocks1, int64_t nblk1,
    const int64_t *gsites1, int64_t nsit1,
    int64_t num_groups, int64_t logic_group, int64_t width, int64_t height,
    int64_t *ibuf, double *ubuf, int64_t rbuf,
    int64_t has_timing, const int64_t *t_src, const int64_t *t_dst,
    const int64_t *cb_ptr, const int64_t *cb_conns,
    int64_t *c_dist, int64_t *cwq, int64_t nconn, int64_t retime_every,
    int64_t *net_mark,
    int64_t *upd_nid, int64_t *upd_bb, int64_t *upd_cost,
    int64_t *tsc_ci, int64_t *tsc_nd,
    cb_fn_t cb_fn, int64_t *istate)
{
    g_bgsite = block_gsite; g_bx = block_x; g_by = block_y;
    g_occ = occupant; g_sx = site_x; g_sy = site_y;
    g_pins_ptr = pins_ptr; g_pins = pins; g_nb_ptr = nb_ptr; g_nb = nb;
    g_bb = bb; g_ncost = net_cost; g_wq = wq;
    g_gblocks[0] = gblocks0; g_nblk[0] = nblk0;
    g_gsites[0] = gsites0; g_nsit[0] = nsit0;
    g_gblocks[1] = gblocks1; g_nblk[1] = nblk1;
    g_gsites[1] = gsites1; g_nsit[1] = nsit1;
    g_num_groups = num_groups; g_logic_group = logic_group;
    g_width = width; g_height = height;
    g_ibuf = ibuf; g_ubuf = ubuf; g_rbuf = rbuf;
    g_has_timing = has_timing; g_tsrc = t_src; g_tdst = t_dst;
    g_cb_ptr = cb_ptr; g_cb = cb_conns;
    g_cdist = c_dist; g_cwq = cwq; g_nconn = nconn;
    g_retime_every = retime_every;
    g_net_mark = net_mark;
    g_upd_nid = upd_nid; g_upd_bb = upd_bb; g_upd_cost = upd_cost;
    g_tsc_ci = tsc_ci; g_tsc_nd = tsc_nd;
    g_cb_fn = cb_fn; g_istate = istate;
}

/* Recompute one axis-or-both bbox after moving (ox,oy) -> (nx,ny); exact
 * translation of _bbox_after_move (the empty-site inline in the Python
 * kernel performs the identical updates). */
static void bbox_after_move(int64_t nid, int64_t ox, int64_t oy,
                            int64_t nx, int64_t ny, int64_t *o)
{
    const int64_t *c = g_bb + nid * 8;
    int64_t xmin = c[0], xmax = c[1], ymin = c[2], ymax = c[3];
    int64_t cxmin = c[4], cxmax = c[5], cymin = c[6], cymax = c[7];
    int64_t a = g_pins_ptr[nid], b = g_pins_ptr[nid + 1];
    if (nx != ox) {
        if ((ox == xmin && cxmin == 1 && nx > xmin) ||
            (ox == xmax && cxmax == 1 && nx < xmax)) {
            xmin = INT64_MAX; xmax = INT64_MIN;
            for (int64_t j = a; j < b; j++) {
                int64_t v = g_bx[g_pins[j]];
                if (v < xmin) xmin = v;
                if (v > xmax) xmax = v;
            }
            cxmin = 0; cxmax = 0;
            for (int64_t j = a; j < b; j++) {
                int64_t v = g_bx[g_pins[j]];
                if (v == xmin) cxmin++;
                if (v == xmax) cxmax++;
            }
        } else {
            if (ox == xmin) cxmin--;
            if (ox == xmax) cxmax--;
            if (nx < xmin) { xmin = nx; cxmin = 1; }
            else if (nx == xmin) cxmin++;
            if (nx > xmax) { xmax = nx; cxmax = 1; }
            else if (nx == xmax) cxmax++;
        }
    }
    if (ny != oy) {
        if ((oy == ymin && cymin == 1 && ny > ymin) ||
            (oy == ymax && cymax == 1 && ny < ymax)) {
            ymin = INT64_MAX; ymax = INT64_MIN;
            for (int64_t j = a; j < b; j++) {
                int64_t v = g_by[g_pins[j]];
                if (v < ymin) ymin = v;
                if (v > ymax) ymax = v;
            }
            cymin = 0; cymax = 0;
            for (int64_t j = a; j < b; j++) {
                int64_t v = g_by[g_pins[j]];
                if (v == ymin) cymin++;
                if (v == ymax) cymax++;
            }
        } else {
            if (oy == ymin) cymin--;
            if (oy == ymax) cymax--;
            if (ny < ymin) { ymin = ny; cymin = 1; }
            else if (ny == ymin) cymin++;
            if (ny > ymax) { ymax = ny; cymax = 1; }
            else if (ny == ymax) cymax++;
        }
    }
    o[0] = xmin; o[1] = xmax; o[2] = ymin; o[3] = ymax;
    o[4] = cxmin; o[5] = cxmax; o[6] = cymin; o[7] = cymax;
}

/* Full rescan (both endpoints of a shared net moved). */
static void bbox_rescan(int64_t nid, int64_t *o)
{
    int64_t a = g_pins_ptr[nid], b = g_pins_ptr[nid + 1];
    int64_t xmin = INT64_MAX, xmax = INT64_MIN;
    int64_t ymin = INT64_MAX, ymax = INT64_MIN;
    for (int64_t j = a; j < b; j++) {
        int64_t x = g_bx[g_pins[j]], y = g_by[g_pins[j]];
        if (x < xmin) xmin = x;
        if (x > xmax) xmax = x;
        if (y < ymin) ymin = y;
        if (y > ymax) ymax = y;
    }
    int64_t cxmin = 0, cxmax = 0, cymin = 0, cymax = 0;
    for (int64_t j = a; j < b; j++) {
        int64_t x = g_bx[g_pins[j]], y = g_by[g_pins[j]];
        if (x == xmin) cxmin++;
        if (x == xmax) cxmax++;
        if (y == ymin) cymin++;
        if (y == ymax) cymax++;
    }
    o[0] = xmin; o[1] = xmax; o[2] = ymin; o[3] = ymax;
    o[4] = cxmin; o[5] = cxmax; o[6] = cymin; o[7] = cymax;
}

/* One temperature step: moves_per_temp move attempts. */
void repro_anneal_run(int64_t moves_per_temp, double tmax, double range2,
                      int64_t rl, int64_t span)
{
    int64_t ipos = g_istate[IPOS], upos = g_istate[UPOS];
    for (int64_t mv = 0; mv < moves_per_temp; mv++) {
        /* Up to 10 integer draws per move (group + block + site picks). */
        if (ipos + 10 > g_rbuf) {
            g_istate[IPOS] = ipos; g_istate[UPOS] = upos;
            g_cb_fn(0);
            if (g_istate[ABORT]) return;
            ipos = 0;
        }
        int64_t gi;
        if (g_num_groups == 1) gi = 0;
        else { gi = g_ibuf[ipos] & 1; ipos++; }
        const int64_t *blocks = g_gblocks[gi];
        const int64_t *gsites = g_gsites[gi];
        int64_t nblk = g_nblk[gi], nsit = g_nsit[gi];
        int64_t block = blocks[g_ibuf[ipos] % nblk]; ipos++;
        int64_t cur_g = g_bgsite[block];
        int64_t cx = g_bx[block], cy = g_by[block];
        int64_t target_g;
        if (g_logic_group && gi == 0) {
            int64_t tx = cx + g_ibuf[ipos] % span - rl; ipos++;
            int64_t ty = cy + g_ibuf[ipos] % span - rl; ipos++;
            if (tx < 1) tx = 1; else if (tx > g_width) tx = g_width;
            if (ty < 1) ty = 1; else if (ty > g_height) ty = g_height;
            target_g = (tx - 1) * g_height + (ty - 1);
            if (target_g == cur_g) continue;
        } else {
            target_g = -1;
            for (int t = 0; t < 8; t++) {
                int64_t tg = gsites[g_ibuf[ipos] % nsit]; ipos++;
                int64_t dx = g_sx[tg] - cx; if (dx < 0) dx = -dx;
                int64_t dy = g_sy[tg] - cy; if (dy < 0) dy = -dy;
                if ((double)(dx + dy) > range2) continue;
                if (tg != cur_g) { target_g = tg; break; }
            }
            if (target_g < 0) continue;
        }
        g_istate[ATT]++;
        int64_t occ = g_occ[target_g];  /* -1 = empty site */
        int64_t nx = g_sx[target_g], ny = g_sy[target_g];

        g_bx[block] = nx; g_by[block] = ny;
        if (occ >= 0) { g_bx[occ] = cx; g_by[occ] = cy; }

        int64_t delta = 0, nupd = 0;
        if (occ < 0) {
            for (int64_t j = g_nb_ptr[block]; j < g_nb_ptr[block + 1]; j++) {
                int64_t nid = g_nb[j];
                int64_t *o = g_upd_bb + nupd * 8;
                bbox_after_move(nid, cx, cy, nx, ny, o);
                int64_t cost = g_wq[nid] * ((o[1] - o[0]) + (o[3] - o[2]));
                delta += cost - g_ncost[nid];
                g_upd_nid[nupd] = nid; g_upd_cost[nupd] = cost; nupd++;
            }
        } else {
            /* Swap: mark the occupant's nets, then shared nets (both
             * endpoints moved) rescan once and are skipped in the
             * occupant pass -- same membership tests as the Python
             * kernel's set intersection. */
            int64_t mvid = g_istate[MVID] + 2;
            g_istate[MVID] = mvid;
            for (int64_t j = g_nb_ptr[occ]; j < g_nb_ptr[occ + 1]; j++)
                g_net_mark[g_nb[j]] = mvid;
            for (int64_t j = g_nb_ptr[block]; j < g_nb_ptr[block + 1]; j++) {
                int64_t nid = g_nb[j];
                int64_t *o = g_upd_bb + nupd * 8;
                if (g_net_mark[nid] >= mvid) {
                    g_net_mark[nid] = mvid + 1;  /* shared: skip below */
                    bbox_rescan(nid, o);
                } else {
                    bbox_after_move(nid, cx, cy, nx, ny, o);
                }
                int64_t cost = g_wq[nid] * ((o[1] - o[0]) + (o[3] - o[2]));
                delta += cost - g_ncost[nid];
                g_upd_nid[nupd] = nid; g_upd_cost[nupd] = cost; nupd++;
            }
            for (int64_t j = g_nb_ptr[occ]; j < g_nb_ptr[occ + 1]; j++) {
                int64_t nid = g_nb[j];
                if (g_net_mark[nid] == mvid + 1) continue;  /* shared */
                int64_t *o = g_upd_bb + nupd * 8;
                bbox_after_move(nid, nx, ny, cx, cy, o);
                int64_t cost = g_wq[nid] * ((o[1] - o[0]) + (o[3] - o[2]));
                delta += cost - g_ncost[nid];
                g_upd_nid[nupd] = nid; g_upd_cost[nupd] = cost; nupd++;
            }
        }

        int64_t ntsc = 0;
        if (g_has_timing) {
            for (int64_t j = g_cb_ptr[block]; j < g_cb_ptr[block + 1]; j++) {
                int64_t ci = g_cb[j];
                int64_t s = g_tsrc[ci], d2 = g_tdst[ci];
                int64_t dx = g_bx[s] - g_bx[d2]; if (dx < 0) dx = -dx;
                int64_t dy = g_by[s] - g_by[d2]; if (dy < 0) dy = -dy;
                int64_t nd = dx + dy;
                if (nd == 0) nd = 1;
                delta += g_cwq[ci] * (nd - g_cdist[ci]);
                g_tsc_ci[ntsc] = ci; g_tsc_nd[ntsc] = nd; ntsc++;
            }
            if (occ >= 0) {
                for (int64_t j = g_cb_ptr[occ]; j < g_cb_ptr[occ + 1]; j++) {
                    int64_t ci = g_cb[j];
                    int64_t s = g_tsrc[ci], d2 = g_tdst[ci];
                    if (s == block || d2 == block)
                        continue;  /* shared connection, re-priced above */
                    int64_t dx = g_bx[s] - g_bx[d2]; if (dx < 0) dx = -dx;
                    int64_t dy = g_by[s] - g_by[d2]; if (dy < 0) dy = -dy;
                    int64_t nd = dx + dy;
                    if (nd == 0) nd = 1;
                    delta += g_cwq[ci] * (nd - g_cdist[ci]);
                    g_tsc_ci[ntsc] = ci; g_tsc_nd[ntsc] = nd; ntsc++;
                }
            }
        }

        int accept;
        if (delta <= 0) {
            accept = 1;
        } else {
            if (upos >= g_rbuf) {
                g_istate[IPOS] = ipos; g_istate[UPOS] = upos;
                g_cb_fn(1);
                if (g_istate[ABORT]) return;
                upos = 0;
            }
            accept = g_ubuf[upos] < exp(-(double)delta / tmax);
            upos++;
        }
        if (accept) {
            for (int64_t k = 0; k < nupd; k++) {
                int64_t nid = g_upd_nid[k];
                int64_t *o = g_upd_bb + k * 8;
                int64_t *dst = g_bb + nid * 8;
                for (int q = 0; q < 8; q++) dst[q] = o[q];
                g_istate[TOTAL] += g_upd_cost[k] - g_ncost[nid];
                g_ncost[nid] = g_upd_cost[k];
            }
            g_occ[target_g] = block;
            g_occ[cur_g] = occ;
            g_bgsite[block] = target_g;
            if (occ >= 0) g_bgsite[occ] = cur_g;
            g_istate[ACC]++;
            g_istate[ACC_TEMP]++;
            if (g_has_timing) {
                for (int64_t k = 0; k < ntsc; k++) {
                    int64_t ci = g_tsc_ci[k];
                    g_istate[TIMING] += g_cwq[ci] * (g_tsc_nd[k] - g_cdist[ci]);
                    g_cdist[ci] = g_tsc_nd[k];
                }
                g_istate[ACC_RETIME]++;
                if (g_istate[ACC_RETIME] >= g_retime_every) {
                    g_istate[ACC_RETIME] = 0;
                    g_istate[IPOS] = ipos; g_istate[UPOS] = upos;
                    g_cb_fn(2);  /* refresh g_cwq in place */
                    if (g_istate[ABORT]) return;
                    int64_t tc = 0;
                    for (int64_t ci = 0; ci < g_nconn; ci++)
                        tc += g_cwq[ci] * g_cdist[ci];
                    g_istate[TIMING] = tc;
                }
            }
        } else {
            g_bx[block] = cx; g_by[block] = cy;
            if (occ >= 0) { g_bx[occ] = nx; g_by[occ] = ny; }
        }
    }
    g_istate[IPOS] = ipos; g_istate[UPOS] = upos;
}
"""

_i64 = ctypes.c_int64
_f64 = ctypes.c_double
_p = ctypes.c_void_p
_CB = ctypes.CFUNCTYPE(None, ctypes.c_int64)


class NativeAnnealer:
    """ctypes binding over one ``_place_batched`` call's flat state."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self._bind = lib.repro_anneal_bind
        self._bind.argtypes = (
            [_p] * 4 + [_p] * 2 + [_p] * 4 + [_p] * 3
            + [_p, _i64, _p, _i64] * 2
            + [_i64] * 4
            + [_p, _p, _i64]
            + [_i64, _p, _p, _p, _p, _p, _p, _i64, _i64]
            + [_p]
            + [_p] * 3 + [_p] * 2
            + [_CB, _p]
        )
        self._bind.restype = None
        self._run = lib.repro_anneal_run
        self._run.argtypes = [_i64, _f64, _f64, _i64, _i64]
        self._run.restype = None
        self._refs: tuple = ()

    def bind(self, arrays: dict, scalars: dict, callback) -> None:
        """Bind the flat placement state; ``callback`` handles kinds 0/1/2."""
        a = arrays
        self._cb = _CB(callback)  # keep the thunk alive for the whole anneal
        self._refs = tuple(a.values())
        self._bind(
            a["block_gsite"].ctypes.data, a["block_x"].ctypes.data,
            a["block_y"].ctypes.data, a["occupant"].ctypes.data,
            a["site_x"].ctypes.data, a["site_y"].ctypes.data,
            a["pins_ptr"].ctypes.data, a["pins"].ctypes.data,
            a["nb_ptr"].ctypes.data, a["nb"].ctypes.data,
            a["bb"].ctypes.data, a["net_cost"].ctypes.data,
            a["wq"].ctypes.data,
            a["gblocks0"].ctypes.data, scalars["nblk0"],
            a["gsites0"].ctypes.data, scalars["nsit0"],
            a["gblocks1"].ctypes.data, scalars["nblk1"],
            a["gsites1"].ctypes.data, scalars["nsit1"],
            scalars["num_groups"], scalars["logic_group"],
            scalars["width"], scalars["height"],
            a["ibuf"].ctypes.data, a["ubuf"].ctypes.data, scalars["rbuf"],
            scalars["has_timing"], a["t_src"].ctypes.data,
            a["t_dst"].ctypes.data, a["cb_ptr"].ctypes.data,
            a["cb_conns"].ctypes.data, a["c_dist"].ctypes.data,
            a["cwq"].ctypes.data, scalars["nconn"], scalars["retime_every"],
            a["net_mark"].ctypes.data,
            a["upd_nid"].ctypes.data, a["upd_bb"].ctypes.data,
            a["upd_cost"].ctypes.data,
            a["tsc_ci"].ctypes.data, a["tsc_nd"].ctypes.data,
            self._cb, a["istate"].ctypes.data,
        )

    def run_temperature(self, moves_per_temp: int, tmax: float, range2: float,
                        rl: int, span: int) -> None:
        self._run(moves_per_temp, tmax, range2, rl, span)


_instances: Dict[int, NativeAnnealer] = {}


def annealer_kernel() -> Optional[NativeAnnealer]:
    """The compiled move loop, or ``None`` when the backend is off."""
    lib = load_kernel("annealer", SOURCE)
    if lib is None:
        return None
    inst = _instances.get(id(lib))
    if inst is None:
        inst = NativeAnnealer(lib)
        _instances[id(lib)] = inst
    return inst
