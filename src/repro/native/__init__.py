"""Native (compiled-C) backend for the PAR hot loops.

Small, dependency-free C kernels compiled with the system compiler at
first use (no Cython/numba/mypyc in the container) and bound with
:mod:`ctypes` over the flat arrays the Python kernels already use:

* :mod:`repro.native.astar` -- the directed astar PathFinder expansion
  loop (``par/routing.py``);
* :mod:`repro.native.annealer` -- the batched annealer accept/reject
  move loop (``par/placement.py``).

Both are **bit-identical twins** of their Python kernels (same routes,
same placements, same exact-int costs), so ``ROUTE_ALGO_VERSION`` /
``PLACE_ALGO_VERSION`` and every cached artifact stay valid whichever
backend computed them.  ``REPRO_NATIVE=0``, a missing compiler, a failed
build, or the ``native.compile`` fault point all fall back to the Python
kernels transparently -- the native backend is an accelerator, never a
dependency.
"""

from __future__ import annotations

from typing import Dict

from .build import build_status, find_compiler, load_kernel, native_enabled, reset

__all__ = [
    "build_status",
    "find_compiler",
    "load_kernel",
    "native_enabled",
    "reset",
    "status",
]


def status() -> Dict[str, object]:
    """Build-cache status plus per-kernel availability (for benchmarks)."""
    from .annealer import annealer_kernel
    from .astar import astar_kernel

    astar_ok = astar_kernel() is not None
    anneal_ok = annealer_kernel() is not None
    info = build_status()
    info["astar"] = astar_ok
    info["annealer"] = anneal_ok
    return info
