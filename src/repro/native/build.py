"""Compile-at-first-use build cache for the native C kernels.

The container ships gcc but none of the Python compilation toolchains
(Cython/numba/mypyc), so the native backend goes through the system
compiler directly: each kernel is a small, dependency-free C source string
compiled with ``cc -O2 -shared`` into a shared object the first time it is
requested, then loaded with :mod:`ctypes` over the router's and placer's
existing flat arrays.

Build artifacts are *content-addressed*: the object file name carries a
SHA-256 digest of the C source, the compiler flags, and the compiler's
version banner, so editing a kernel, changing flags, or upgrading the
toolchain each miss cleanly to a fresh compile while identical builds are
reused across processes.  The cache directory defaults to a per-user
directory under the system temp dir and can be pinned with
``REPRO_NATIVE_CACHE``.

Every failure mode degrades to the pure-Python kernels (which remain the
semantic reference -- the native kernels are bit-identical twins, see
``tests/test_native.py``):

* ``REPRO_NATIVE=0`` (or ``false``/``off``/``no``) disables the backend;
* no C compiler on ``PATH`` (``cc``/``gcc``/``clang``) disables it;
* a failed compile or unloadable object warns once and disables that
  kernel for the process;
* the ``native.compile`` :func:`~repro.util.resilience.inject` fault point
  simulates a toolchain failure, so the resilience harness can exercise
  the fallback without uninstalling the compiler.

Invariants:

* **The native backend is an accelerator, never a different algorithm.**
  A compiled kernel must be a bit-identical twin of its Python reference
  (same routes, same placements, same exact-int costs and counters) --
  this is what keeps every cached artifact backend-neutral
  (``ROUTE_ALGO_VERSION``/``PLACE_ALGO_VERSION`` carry no backend tag)
  and is gated by ``tests/test_native.py`` and the benchmark.  To that
  end kernels are compiled with ``-ffp-contract=off -fno-fast-math`` so
  the compiler cannot fuse ``a * b + c`` into an FMA or re-associate
  float expressions: the C side performs *exactly* the IEEE-754
  operations of the Python twin, in the same order.
* **Availability is never required.**  Any call that could need a
  compile must have a pure-Python fallback; ``status()`` reports, it
  never raises.  Disabling the backend (env, missing compiler, failed
  build, injected fault) changes wall time only.
* **The artifact cache cannot serve a stale kernel.**  The digest covers
  source, flags and compiler banner, so any change that could alter
  codegen misses to a fresh compile; a deleted or truncated ``.so`` is
  rebuilt, not trusted.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from ..util.resilience import inject

__all__ = [
    "CFLAGS",
    "native_enabled",
    "find_compiler",
    "cache_dir",
    "load_kernel",
    "reset",
    "build_status",
]

#: ``-fno-fast-math -ffp-contract=off`` are load-bearing: they pin the
#: kernels to the exact IEEE-754 operation sequence of the Python twins
#: (no FMA fusion, no re-association), which is what keeps native routes
#: and placements bit-identical and every cached artifact valid.
CFLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

_libs: Dict[Tuple[str, str], ctypes.CDLL] = {}
_failed: Set[Tuple[str, str]] = set()
_cc_versions: Dict[str, str] = {}
_last_error: Optional[str] = None


def native_enabled() -> bool:
    """``REPRO_NATIVE`` gate, read per call so tests/benchmarks can toggle it."""
    return os.environ.get("REPRO_NATIVE", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def find_compiler() -> Optional[str]:
    """Absolute path of the first usable C compiler on PATH, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    """Build-cache directory (``REPRO_NATIVE_CACHE`` or a per-user temp dir)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    uid = getattr(os, "getuid", lambda: 0)()
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


def _compiler_version(cc: str) -> str:
    version = _cc_versions.get(cc)
    if version is None:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, check=True
        )
        version = out.stdout.splitlines()[0] if out.stdout else "unknown"
        _cc_versions[cc] = version
    return version


def source_digest(source: str, cc_version: str) -> str:
    """Content address of one kernel build: source + flags + compiler."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update("\x00".join(CFLAGS).encode())
    h.update(cc_version.encode())
    return h.hexdigest()


def _compile(cc: str, name: str, source: str, so_path: Path) -> None:
    """Compile ``source`` into ``so_path`` atomically (temp file + rename)."""
    so_path.parent.mkdir(parents=True, exist_ok=True)
    tag = f"{name}-{os.getpid()}"
    c_path = so_path.parent / f".{tag}.c"
    tmp_so = so_path.parent / f".{tag}.so.tmp"
    try:
        c_path.write_text(source)
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", str(tmp_so), str(c_path), "-lm"],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} exited {proc.returncode}: {proc.stderr.strip()[:500]}"
            )
        # Last-write-wins like PaRCache: concurrent builders of the same
        # digest produce identical bytes, so the race is benign.
        os.replace(tmp_so, so_path)
    finally:
        for p in (c_path, tmp_so):
            try:
                p.unlink()
            except OSError:
                pass


def load_kernel(name: str, source: str) -> Optional[ctypes.CDLL]:
    """Load (compiling if needed) one named kernel; ``None`` means fall back.

    Returns ``None`` -- and the caller must use its Python twin -- when the
    backend is disabled, no compiler exists, the ``native.compile`` fault
    point fires, or the build fails (warns once per kernel).
    """
    global _last_error
    if not native_enabled():
        return None
    if inject("native.compile") is not None:
        _last_error = f"{name}: injected native.compile fault"
        return None
    cc = find_compiler()
    if cc is None:
        _last_error = "no C compiler on PATH"
        return None
    try:
        version = _compiler_version(cc)
    except (OSError, subprocess.SubprocessError) as exc:
        _last_error = f"{cc} --version failed: {exc}"
        return None
    digest = source_digest(source, version)
    key = (name, digest)
    lib = _libs.get(key)
    if lib is not None:
        return lib
    if key in _failed:
        return None
    so_path = cache_dir() / f"{name}-{digest[:16]}.so"
    try:
        if not so_path.exists():
            _compile(cc, name, source, so_path)
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:
            # A stale or truncated cache entry (e.g. a crashed writer on an
            # older runtime): rebuild once before giving up.
            so_path.unlink(missing_ok=True)
            _compile(cc, name, source, so_path)
            lib = ctypes.CDLL(str(so_path))
    except Exception as exc:  # noqa: BLE001 - any toolchain failure falls back
        _failed.add(key)
        _last_error = f"{name}: {exc}"
        warnings.warn(
            f"native kernel {name!r} failed to build ({exc}); "
            "falling back to the Python kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    _libs[key] = lib
    return lib


def reset() -> None:
    """Drop the in-process kernel memo (testing hook; disk cache untouched)."""
    _libs.clear()
    _failed.clear()


def build_status() -> Dict[str, object]:
    """Introspection for benchmarks/tests: gate, compiler, cache, last error."""
    cc = find_compiler()
    return {
        "enabled": native_enabled(),
        "compiler": cc,
        "compiler_version": _cc_versions.get(cc) if cc else None,
        "cache_dir": str(cache_dir()),
        "loaded": sorted({name for name, _ in _libs}),
        "last_error": _last_error,
    }
