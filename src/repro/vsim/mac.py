"""Functional model of one Processing Element (MAC operator).

The cycle-level behaviour matches the PE datapath of
:mod:`repro.core.pe` plus the iteration counter the paper describes: the
settings register holds the coefficient and a count limit; the PE multiplies
each incoming sample by the coefficient, accumulates, and raises ``done``
after ``count_limit`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.pe import PEOp
from ..core.settings import PESettings
from ..flopoco.arithmetic import fp_add, fp_mul
from ..flopoco.format import FPFormat

__all__ = ["MACUnit"]


@dataclass
class MACUnit:
    """Stateful functional model of one PE.

    All values are FloPoCo-encoded integers; use the format's
    ``encode``/``decode`` to convert to Python floats.
    """

    fmt: FPFormat
    settings: PESettings
    acc: int = 0          #: internal accumulator (FloPoCo word)
    counter: int = 0

    def __post_init__(self) -> None:
        self.acc = self.fmt.encode(0.0)

    @property
    def iterative(self) -> bool:
        """True when the PE accumulates internally over several samples."""
        return self.settings.count_limit > 1

    def reset(self) -> None:
        self.acc = self.fmt.encode(0.0)
        self.counter = 0

    def step(self, sample: int, acc_in: int) -> Tuple[int, bool]:
        """Process one sample; returns ``(output_word, done_flag)``.

        ``sample`` feeds the multiplier operand, ``acc_in`` the adder operand
        (as selected by the intra-connect); both are FloPoCo words.
        """
        fmt = self.fmt
        coeff = self.settings.coefficient
        op = self.settings.op

        if op == PEOp.BYPASS:
            return sample, True
        if op == PEOp.BYPASS_B:
            return acc_in, True
        if op == PEOp.MUL:
            return fp_mul(fmt, sample, coeff), True

        # MAC
        product = fp_mul(fmt, sample, coeff)
        if not self.iterative:
            return fp_add(fmt, acc_in, product), True

        self.acc = fp_add(fmt, self.acc, product)
        self.counter += 1
        done = self.counter >= self.settings.count_limit
        out = self.acc
        if done:
            self.acc = fmt.encode(0.0)
            self.counter = 0
        return out, done
