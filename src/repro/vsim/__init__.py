"""Cycle-level functional simulation of a configured VCGRA grid."""

from .mac import MACUnit
from .simulator import SimulationTrace, VCGRASimulator

__all__ = ["MACUnit", "SimulationTrace", "VCGRASimulator"]
