"""Cycle-level functional simulator of a configured VCGRA grid.

The simulator takes a :class:`~repro.core.grid.VCGRAArchitecture` and the
:class:`~repro.core.settings.VCGRASettings` produced by the high-level tool
flow and executes the overlay on streams of floating-point samples: each
step, external input streams are applied to their bound PE ports, data flows
row by row through the enabled PEs and the VSB routes, and the bound outputs
are sampled.

This is the model a VCGRA user programs against; the gate-level flows of
:mod:`repro.core.flows` verify that the physical implementation (conventional
or fully parameterized) computes the same function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridPosition, VCGRAArchitecture
from ..core.settings import VCGRASettings
from ..flopoco.format import FPFormat
from .mac import MACUnit

__all__ = ["VCGRASimulator", "SimulationTrace"]


@dataclass
class SimulationTrace:
    """Full record of a simulation run (decoded floats per stream)."""

    outputs: Dict[str, List[float]]
    pe_outputs: Dict[GridPosition, List[float]]
    steps: int

    def output(self, name: str) -> np.ndarray:
        return np.asarray(self.outputs[name], dtype=np.float64)


class VCGRASimulator:
    """Execute a configured VCGRA on sample streams."""

    def __init__(self, arch: VCGRAArchitecture, settings: VCGRASettings) -> None:
        self.arch = arch
        self.settings = settings
        self.fmt: FPFormat = arch.pe_spec.fmt
        self.units: Dict[GridPosition, MACUnit] = {}
        for pos, pe_settings in settings.pe_settings.items():
            if pe_settings.enabled:
                self.units[pos] = MACUnit(self.fmt, pe_settings)
        # Invert input bindings: (pe position, port) -> stream name.  A stream
        # may be broadcast to several ports; legacy single-tuple bindings are
        # accepted for convenience.
        self.port_stream: Dict[Tuple[GridPosition, int], str] = {}
        for name, bindings in settings.input_bindings.items():
            if isinstance(bindings, tuple):
                bindings = [bindings]
            for binding in bindings:
                self.port_stream[binding] = name
        # VSB routes: (pe position, port) -> upstream PE.
        self.port_route: Dict[Tuple[GridPosition, int], GridPosition] = {}
        for vsb in settings.vsb_settings.values():
            self.port_route.update(vsb.routes)

    # -- single step -------------------------------------------------------------

    def step(self, stream_values: Mapping[str, int]) -> Dict[GridPosition, int]:
        """Advance the grid by one sample; returns each enabled PE's output word."""
        zero = self.fmt.encode(0.0)
        pe_out: Dict[GridPosition, int] = {}
        for pos in sorted(self.units):  # row-major order == dataflow order
            unit = self.units[pos]

            def port_value(port: int) -> int:
                key = (pos, port)
                stream = self.port_stream.get(key)
                if stream is not None:
                    return stream_values.get(stream, zero)
                src = self.port_route.get(key)
                if src is not None:
                    return pe_out.get(src, zero)
                return zero

            # The intra-connect crossbar: sel_a / sel_b pick which input port
            # feeds the multiplier and the adder operand respectively.
            pe_settings = self.settings.pe_settings[pos]
            sample = port_value(pe_settings.sel_a)
            acc_in = port_value(pe_settings.sel_b)
            out, _done = unit.step(sample, acc_in)
            pe_out[pos] = out
        return pe_out

    # -- stream execution -----------------------------------------------------------

    def run(
        self,
        input_streams: Mapping[str, Sequence[float]],
        num_steps: Optional[int] = None,
        encoded: bool = False,
    ) -> SimulationTrace:
        """Run the grid over full input streams.

        ``input_streams`` maps stream names (the external inputs of the
        application graph) to equal-length sequences of Python floats (or
        FloPoCo words when ``encoded=True``).  Returns the decoded output
        streams plus every PE's output history.
        """
        lengths = {len(v) for v in input_streams.values()}
        if num_steps is None:
            if not lengths:
                raise ValueError("need input streams or an explicit number of steps")
            num_steps = max(lengths)

        encoded_streams: Dict[str, List[int]] = {}
        for name, values in input_streams.items():
            if encoded:
                encoded_streams[name] = [int(v) for v in values]
            else:
                encoded_streams[name] = [self.fmt.encode(float(v)) for v in values]

        outputs: Dict[str, List[float]] = {name: [] for name in self.settings.output_bindings}
        pe_hist: Dict[GridPosition, List[float]] = {pos: [] for pos in self.units}
        zero = self.fmt.encode(0.0)

        for step_idx in range(num_steps):
            step_inputs = {
                name: (vals[step_idx] if step_idx < len(vals) else zero)
                for name, vals in encoded_streams.items()
            }
            pe_out = self.step(step_inputs)
            for pos, word in pe_out.items():
                pe_hist[pos].append(self.fmt.decode(word))
            for out_name, pos in self.settings.output_bindings.items():
                outputs[out_name].append(self.fmt.decode(pe_out.get(pos, zero)))

        return SimulationTrace(outputs=outputs, pe_outputs=pe_hist, steps=num_steps)

    # -- convenience -------------------------------------------------------------------

    def reset(self) -> None:
        for unit in self.units.values():
            unit.reset()

    def dot_product(self, samples: Sequence[float], reset: bool = True) -> Dict[str, float]:
        """Convenience for filter kernels: stream samples through the grid and
        return the final value of every output (the accumulated dot product
        for MAC-chain configurations)."""
        if reset:
            self.reset()
        trace = self.run({name: samples for name in self.settings.input_bindings})
        return {name: values[-1] for name, values in trace.outputs.items()}
