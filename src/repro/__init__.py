"""repro: reproduction of the fully parameterized VCGRA (Kulkarni et al., IPDPSW 2016).

The package is organized bottom-up:

* :mod:`repro.netlist` -- gate-level circuits, Boolean functions, HDL builder.
* :mod:`repro.synth` -- logic synthesis and (parameter-aware) optimization.
* :mod:`repro.techmap` -- conventional 4-LUT mapping and TCONMAP (TLUTs + TCONs).
* :mod:`repro.fpga` -- VPR-style island FPGA model and configuration memory.
* :mod:`repro.par` -- TPLACE/TROUTE-style placement and routing (TPaR).
* :mod:`repro.flopoco` -- FloPoCo-format floating point and circuit generators.
* :mod:`repro.core` -- the VCGRA overlay itself: grid, PEs, tool flows,
  dynamic circuit specialization and reconfiguration cost model.
* :mod:`repro.vsim` -- functional (cycle-level) simulation of a configured VCGRA.
* :mod:`repro.apps` -- the retinal vessel segmentation HPC application.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
