"""Process-wide metrics registry: counters, gauges and histograms.

Where :mod:`repro.obs.trace` answers *when* (span timelines), this module
answers *how much*: nodes expanded by the astar kernel, PathFinder
iterations run, cache hits served, contexts evicted.  The registry is a
plain always-on dict-increment store -- cheap enough that the hot seams
update it unconditionally at *seam* granularity (once per route, per cache
access, per context switch), never inside inner loops; inner loops count
into locals / out-param arrays and merge once at the end.

The registry aggregates across a whole process (monotonic within a run);
per-result numbers live in ``PaRResult.telemetry`` instead, which the flow
assembles from kernel-local measurements so pool workers and repeated runs
never double-count.  :meth:`Tracer.close` dumps a registry snapshot into
the trace file, which is how counters reach ``python -m repro.obs.report``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Union

__all__ = ["MetricsRegistry", "registry", "add", "gauge", "observe", "merge"]

Number = Union[int, float]


class MetricsRegistry:
    """Counters (monotonic), gauges (last value) and histograms (samples)."""

    __slots__ = ("counters", "gauges", "_histograms")

    def __init__(self) -> None:
        """Create an empty registry."""
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, List[float]] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one histogram sample for ``name``."""
        self._histograms.setdefault(name, []).append(float(value))

    def merge(self, counters: Mapping[str, Number]) -> None:
        """Bulk-increment counters (one call per kernel/phase boundary)."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-able view: counters, gauges, and summarized histograms."""
        histograms: Dict[str, Dict[str, float]] = {}
        for name, samples in self._histograms.items():
            ordered = sorted(samples)
            n = len(ordered)
            histograms[name] = {
                "count": n,
                "min": ordered[0],
                "max": ordered[-1],
                "mean": sum(ordered) / n,
                "p50": ordered[n // 2],
                "p95": ordered[min(n - 1, (n * 95) // 100)],
                "p99": ordered[min(n - 1, (n * 99) // 100)],
            }
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop all recorded values (tests and repeated bench sections)."""
        self.counters.clear()
        self.gauges.clear()
        self._histograms.clear()


_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry the instrumented seams write to."""
    return _GLOBAL


def add(name: str, value: Number = 1) -> None:
    """Increment a counter on the global registry."""
    _GLOBAL.add(name, value)


def gauge(name: str, value: Number) -> None:
    """Set a gauge on the global registry."""
    _GLOBAL.gauge(name, value)


def observe(name: str, value: Number) -> None:
    """Record a histogram sample on the global registry."""
    _GLOBAL.observe(name, value)


def merge(counters: Mapping[str, Number]) -> None:
    """Bulk-increment counters on the global registry."""
    _GLOBAL.merge(counters)
