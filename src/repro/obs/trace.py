"""Hierarchical spans with zero-cost disable and Chrome-trace export.

The flow needs per-request latency breakdowns before the PAR-as-a-service
daemon on the ROADMAP can exist, but the hot loops (PathFinder iterations,
annealing sweeps) cannot afford instrumentation overhead when nobody is
looking.  This module therefore copies the proven trick from
:func:`repro.util.resilience.inject`: the process-wide tracer lives in one
module global, and a disabled :func:`span` call is a function call, a global
load and a ``None`` compare returning a shared no-op singleton -- measured
in ``benchmarks/bench_hotpaths.py`` (``kernels.obs``) and bounded in
``tests/test_obs.py``.

Enabled -- programmatically via :func:`install` / :func:`tracing`, or
ambiently via the ``REPRO_TRACE=<path>`` environment variable -- spans form
a flow -> phase -> iteration tree per (process, thread), timestamped with
``time.perf_counter_ns`` (CLOCK_MONOTONIC, shared across forked pool
workers on Linux, so one trace file aligns the whole pool).  Two output
formats, chosen by the path suffix:

* ``*.json`` -- Chrome ``trace_event`` JSON Array Format, loadable directly
  in ``chrome://tracing`` or https://ui.perfetto.dev.  Events are appended
  as ``{...},`` lines after an opening ``[``; the format explicitly
  tolerates a missing ``]`` (crash-safe), and a clean :func:`close` seals
  the file into strictly valid JSON.  Appends are line-buffered single
  ``write`` calls, so forked pool workers can share the file.
* anything else (conventionally ``*.jsonl``) -- richer JSON-lines records
  (``type`` in ``span | event | counter | series``) consumed by
  ``python -m repro.obs.report`` and the tests.

Span records never alter what the instrumented code computes: tracing on
and tracing off must produce bit-identical routes and placements
(``tests/test_obs.py`` asserts this), which is why instrumentation reads
clocks and appends to buffers but never touches RNG streams or FP math.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Tracer",
    "span",
    "traced",
    "emit_event",
    "emit_counter",
    "emit_series",
    "install",
    "clear",
    "active",
    "tracing",
]

#: Flush the buffer whenever it grows past this many records, even if a
#: span is still open (long flows should not hold hours of events in RAM).
_FLUSH_EVERY = 512


class Tracer:
    """Buffered trace writer shared by every thread (and forked worker).

    One tracer is installed process-wide (:func:`install`); forked children
    inherit it and are detected by pid change, which resets the inherited
    buffer and span stack so each process emits a clean tree into the same
    append-only file.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Create a tracer writing to ``path`` (``*.json`` = Chrome format)."""
        self.path = str(path)
        self.chrome = self.path.endswith(".json")
        self._install_pid = os.getpid()
        self._pid = os.getpid()
        self._buffer: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._closed = False
        # The installing process owns the file: truncate and write the
        # Chrome array opener so every later append (parent or child) is a
        # plain ``O_APPEND`` line write.
        with open(self.path, "w", encoding="utf-8") as fh:
            if self.chrome:
                fh.write("[\n")

    # -- per-thread / per-process state ---------------------------------------

    def _stack(self) -> List["_Span"]:
        if os.getpid() != self._pid:
            # First record after a fork: drop state inherited from the
            # parent (its buffered events were already flushed -- or will
            # be -- by the parent itself; its open spans close over there).
            self._pid = os.getpid()
            self._buffer = []
            self._local = threading.local()
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- record sinks ----------------------------------------------------------

    def _push(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) >= _FLUSH_EVERY:
                self._flush_locked()

    def record_span(
        self,
        name: str,
        start_ns: int,
        dur_ns: int,
        depth: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        """Append one finished span (timestamps in ``perf_counter_ns``)."""
        record: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "ts": start_ns // 1000,
            "dur": max(1, dur_ns // 1000),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "depth": depth,
        }
        if args:
            record["args"] = args
        self._push(record)

    def record_event(self, name: str, args: Optional[Dict[str, Any]] = None) -> None:
        """Append an instant event (e.g. a resilience recovery event)."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "ts": time.perf_counter_ns() // 1000,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            record["args"] = args
        self._push(record)

    def record_counter(self, name: str, value: Union[int, float]) -> None:
        """Append one counter sample."""
        self._push(
            {
                "type": "counter",
                "name": name,
                "ts": time.perf_counter_ns() // 1000,
                "pid": os.getpid(),
                "value": value,
            }
        )

    def record_series(
        self, name: str, values: Sequence[Union[int, float]], **args: Any
    ) -> None:
        """Append a whole convergence array (per-iteration / per-temp)."""
        record: Dict[str, Any] = {
            "type": "series",
            "name": name,
            "ts": time.perf_counter_ns() // 1000,
            "pid": os.getpid(),
            "values": list(values),
        }
        if args:
            record["args"] = args
        self._push(record)

    # -- serialization ---------------------------------------------------------

    def _serialize(self, record: Dict[str, Any]) -> str:
        if not self.chrome:
            return json.dumps(record, separators=(",", ":")) + "\n"
        return json.dumps(_to_chrome(record), separators=(",", ":")) + ",\n"

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        text = "".join(self._serialize(r) for r in self._buffer)
        self._buffer.clear()
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(text)

    def flush(self) -> None:
        """Write buffered records to disk (called when a span tree closes)."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush, dump global metric counters, and seal a Chrome trace.

        Sealing appends a final metadata event *without* a trailing comma
        plus the closing ``]``, turning the append-only Chrome file into
        strictly valid JSON.  Only the installing process seals.
        """
        if self._closed:
            return
        from . import metrics as _metrics  # local: avoid package-init cycle

        snap = _metrics.registry().snapshot()
        for cname, cvalue in sorted(snap["counters"].items()):
            self.record_counter(cname, cvalue)
        with self._lock:
            self._flush_locked()
            if self.chrome and os.getpid() == self._install_pid:
                meta = {
                    "name": "process_name",
                    "ph": "M",
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": {"name": "repro"},
                }
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(meta, separators=(",", ":")) + "\n]\n")
            self._closed = True


def _to_chrome(record: Dict[str, Any]) -> Dict[str, Any]:
    """Map one internal record to a Chrome ``trace_event`` object."""
    kind = record["type"]
    if kind == "span":
        out = {
            "name": record["name"],
            "cat": "repro",
            "ph": "X",
            "ts": record["ts"],
            "dur": record["dur"],
            "pid": record["pid"],
            "tid": record["tid"],
        }
        if "args" in record:
            out["args"] = record["args"]
        return out
    if kind == "counter":
        return {
            "name": record["name"],
            "ph": "C",
            "ts": record["ts"],
            "pid": record["pid"],
            "args": {"value": record["value"]},
        }
    # events and series both render as instant events; series carry their
    # values array in args so the data survives the format conversion.
    out = {
        "name": record["name"],
        "cat": "repro",
        "ph": "i",
        "ts": record["ts"],
        "pid": record["pid"],
        "tid": record.get("tid", 0),
        "s": "p",
    }
    args = dict(record.get("args") or {})
    if kind == "series":
        args["values"] = record["values"]
    if args:
        out["args"] = args
    return out


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class _Span:
    """A live span: context manager pushed on the per-thread stack."""

    __slots__ = ("_tracer", "_name", "_args", "_t0", "_depth")

    def __init__(self, tracer: Tracer, name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        t1 = time.perf_counter_ns()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer.record_span(self._name, self._t0, t1 - self._t0, self._depth, self._args)
        if not stack:
            # The top-level span of this thread closed: persist the tree so
            # short-lived pool workers never lose their records to a buffer.
            tracer.flush()
        return False


class _NullSpan:
    """Shared no-op returned by :func:`span` when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Process-wide active tracer.  ``span()`` is the hot-path consumer: with no
#: tracer installed (and the environment already checked) it is one global
#: load and a ``None`` comparison returning the shared null span.
_ACTIVE: Optional[Tracer] = None
_ENV_CHECKED = False


def _bootstrap() -> None:
    """Install the ``REPRO_TRACE`` tracer once, if the variable is set."""
    global _ACTIVE, _ENV_CHECKED
    if _ENV_CHECKED:
        return
    _ENV_CHECKED = True
    path = os.environ.get("REPRO_TRACE")
    if path:
        _ACTIVE = Tracer(path)


def span(name: str, **args: Any) -> Union[_Span, _NullSpan]:
    """Open a named span: ``with span("par.route", kernel="astar"): ...``.

    Disabled (no tracer installed, no ``REPRO_TRACE``), this is a single
    global load plus a ``None`` compare returning a shared no-op context
    manager -- cheap enough for per-iteration use inside PathFinder.
    Keyword ``args`` become the span's Chrome-trace ``args`` payload.
    """
    tracer = _ACTIVE
    if tracer is None:
        if _ENV_CHECKED:
            return _NULL_SPAN
        _bootstrap()
        tracer = _ACTIVE
        if tracer is None:
            return _NULL_SPAN
    return _Span(tracer, name, args)


def traced(name: Optional[str] = None, **args: Any) -> Callable:
    """Decorator form of :func:`span`; the span name defaults to the
    function's qualified name and is evaluated per *call*, so decorating at
    import time works whether tracing is enabled before or after import.
    """

    def _decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def _wrapper(*a: Any, **k: Any) -> Any:
            if _ACTIVE is None and _ENV_CHECKED:
                return fn(*a, **k)
            with span(label, **args):
                return fn(*a, **k)

        return _wrapper

    return _decorate


# ---------------------------------------------------------------------------
# Events / counters / series (all no-ops when tracing is disabled)
# ---------------------------------------------------------------------------


def emit_event(name: str, args: Optional[Dict[str, Any]] = None) -> None:
    """Record an instant event on the active tracer (no-op when disabled).

    This is the sink :func:`repro.util.resilience.record_event` forwards
    to, unifying the recovery-event lists with the trace timeline.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_event(name, args)


def emit_counter(name: str, value: Union[int, float]) -> None:
    """Record one counter sample on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_counter(name, value)


def emit_series(
    name: str, values: Iterable[Union[int, float]], **args: Any
) -> None:
    """Record a convergence array on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_series(name, list(values), **args)


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------


def install(path: Union[str, "os.PathLike[str]"]) -> Tracer:
    """Install a process-wide tracer writing to ``path`` and return it."""
    global _ACTIVE, _ENV_CHECKED
    tracer = Tracer(path)
    _ACTIVE = tracer
    _ENV_CHECKED = True
    return tracer


def clear() -> None:
    """Close and deactivate the tracer (the env tracer stays retired)."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None
    _ENV_CHECKED = True


def active() -> Optional[Tracer]:
    """The installed tracer, bootstrapping from ``REPRO_TRACE`` on first use."""
    _bootstrap()
    return _ACTIVE


@contextmanager
def tracing(path: Union[str, "os.PathLike[str]"]):
    """Temporarily trace into ``path``: ``with tracing("run.jsonl"): ...``."""
    global _ACTIVE, _ENV_CHECKED
    _bootstrap()
    previous = _ACTIVE
    tracer = install(path)
    try:
        yield tracer
    finally:
        tracer.close()
        _ACTIVE = previous
