"""Observability layer: spans, metrics and convergence telemetry.

Three small pieces (see OBSERVABILITY.md for the span model, the counter
catalogue and the Perfetto how-to):

* :mod:`repro.obs.trace` -- hierarchical spans with zero-cost disable,
  written as JSON-lines or Chrome ``trace_event`` files; activated by
  ``REPRO_TRACE=<path>`` or programmatically (:func:`tracing`).
* :mod:`repro.obs.metrics` -- process-wide counters / gauges / histograms
  the hot seams update at phase granularity.
* :mod:`repro.obs.report` -- ``python -m repro.obs.report`` text reporter
  (top spans by self-time, counter table, convergence sparklines).

Per-run numbers -- PathFinder overuse curves, annealing cost-vs-temperature,
cache hit rates -- are snapshotted into ``PaRResult.telemetry`` by
:mod:`repro.par.flow`; this package only provides the machinery.
"""

from .metrics import MetricsRegistry, add, gauge, merge, observe, registry
from .trace import (
    Tracer,
    active,
    clear,
    emit_counter,
    emit_event,
    emit_series,
    install,
    span,
    traced,
    tracing,
)

__all__ = [
    "MetricsRegistry",
    "registry",
    "add",
    "gauge",
    "observe",
    "merge",
    "Tracer",
    "span",
    "traced",
    "emit_event",
    "emit_counter",
    "emit_series",
    "install",
    "clear",
    "active",
    "tracing",
]
