"""Text reporter for trace files: ``python -m repro.obs.report run.jsonl``.

Renders the three views the observability layer produces, with no
dependencies beyond the standard library:

* **top spans by self-time** -- wall time spent in each span name minus the
  time attributed to its nested children, aggregated across processes and
  threads, so the table points at actual hot phases rather than their
  parents;
* **counter table** -- the last sample of every counter
  (:meth:`repro.obs.trace.Tracer.close` snapshots the metrics registry into
  the file);
* **convergence sparklines** -- every recorded series (PathFinder
  per-iteration overuse, annealing cost-vs-temperature) as a unicode
  sparkline with first/last values.

Reads both trace formats written by :mod:`repro.obs.trace` (JSON-lines and
Chrome ``trace_event`` arrays, including unsealed crash-truncated ones) and
converts between them: ``--chrome out.json`` re-exports a JSON-lines trace
as a Chrome trace for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .trace import _to_chrome

__all__ = ["load_records", "render_report", "write_chrome", "main"]

_SPARK = "▁▂▃▄▅▆▇█"


def load_records(path: str) -> List[Dict[str, Any]]:
    """Parse a trace file into internal records, whichever format it is.

    JSON-lines files parse line by line; Chrome array files (``[`` first)
    parse per event line, tolerating the unsealed (no ``]``) form a crashed
    run leaves behind.  Chrome events map back onto the internal schema
    (``X`` -> span, ``C`` -> counter, instants with a ``values`` arg ->
    series, other instants -> event).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            events = json.loads(stripped)
        except json.JSONDecodeError:
            # Unsealed Chrome array: one event per line, trailing commas.
            events = []
            for line in stripped[1:].splitlines():
                line = line.strip().rstrip(",]")
                if line:
                    events.append(json.loads(line))
        for ev in events:
            rec = _from_chrome(ev)
            if rec is not None:
                records.append(rec)
        return records
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _from_chrome(ev: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`repro.obs.trace._to_chrome` (lossy on depth)."""
    ph = ev.get("ph")
    base = {
        "name": ev.get("name", "?"),
        "ts": ev.get("ts", 0),
        "pid": ev.get("pid", 0),
        "tid": ev.get("tid", 0),
    }
    if ph == "X":
        return {"type": "span", "dur": ev.get("dur", 1), "args": ev.get("args"), **base}
    if ph == "C":
        return {"type": "counter", "value": ev.get("args", {}).get("value", 0), **base}
    if ph == "i":
        args = dict(ev.get("args") or {})
        if "values" in args:
            return {"type": "series", "values": args.pop("values"), "args": args, **base}
        return {"type": "event", "args": args, **base}
    return None  # metadata ("M") and unknown phases carry no report content


def _self_times(spans: Sequence[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Aggregate (total_us, self_us, count) per span name via interval nesting."""
    agg: Dict[str, List[float]] = {}
    by_lane: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for s in spans:
        by_lane.setdefault((s.get("pid", 0), s.get("tid", 0)), []).append(s)
    for lane in by_lane.values():
        lane.sort(key=lambda s: (s["ts"], -s["dur"]))
        stack: List[Tuple[int, Dict[str, Any]]] = []  # (end_ts, span)
        child_dur: Dict[int, int] = {}
        for s in lane:
            while stack and stack[-1][0] <= s["ts"]:
                stack.pop()
            if stack:
                parent = stack[-1][1]
                child_dur[id(parent)] = child_dur.get(id(parent), 0) + s["dur"]
            stack.append((s["ts"] + s["dur"], s))
        for s in lane:
            total, self_us, count = agg.setdefault(s["name"], [0.0, 0.0, 0])
            agg[s["name"]] = [
                total + s["dur"],
                self_us + max(0, s["dur"] - child_dur.get(id(s), 0)),
                count + 1,
            ]
    return agg


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket down to ``width`` by taking each bucket's max (convergence
        # plots care about the envelope, not individual samples).
        step = len(values) / width
        values = [
            max(values[int(i * step) : max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / (hi - lo) * len(_SPARK)))]
        for v in values
    )


def render_report(records: Iterable[Dict[str, Any]], top: int = 15) -> str:
    """The full text report for parsed trace ``records``."""
    records = list(records)
    spans = [r for r in records if r.get("type") == "span"]
    counters: Dict[str, Any] = {}
    for r in records:
        if r.get("type") == "counter":
            counters[r["name"]] = r["value"]  # last sample wins
    series = [r for r in records if r.get("type") == "series"]
    events = [r for r in records if r.get("type") == "event"]

    lines: List[str] = []
    lines.append(f"trace: {len(spans)} spans, {len(counters)} counters, "
                 f"{len(series)} series, {len(events)} events")

    if spans:
        agg = _self_times(spans)
        lines.append("")
        lines.append(f"top spans by self-time (of {len(agg)} names)")
        lines.append(f"{'span':<36} {'count':>6} {'total ms':>10} {'self ms':>10}")
        ranked = sorted(agg.items(), key=lambda kv: -kv[1][1])[:top]
        for name, (total, self_us, count) in ranked:
            lines.append(
                f"{name[:36]:<36} {count:>6} {total / 1000.0:>10.2f} {self_us / 1000.0:>10.2f}"
            )

    if counters:
        lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"{name[:48]:<48} {counters[name]:>14}")

    if series:
        lines.append("")
        lines.append("convergence")
        for r in series:
            values = r.get("values") or []
            if not values:
                continue
            label = f"{r['name']} [{len(values)}]"
            lines.append(
                f"{label[:36]:<36} {sparkline(values)}  "
                f"{values[0]:g} -> {values[-1]:g}"
            )

    if events:
        lines.append("")
        lines.append(f"events ({len(events)})")
        by_name: Dict[str, int] = {}
        for r in events:
            by_name[r["name"]] = by_name.get(r["name"], 0) + 1
        for name in sorted(by_name):
            lines.append(f"{name[:48]:<48} {by_name[name]:>6}")

    return "\n".join(lines)


def write_chrome(records: Iterable[Dict[str, Any]], path: str) -> None:
    """Export parsed records as a sealed Chrome ``trace_event`` JSON array."""
    events = [_to_chrome(r) for r in records if r.get("type")]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh)


def main(argv: Sequence[str]) -> int:
    """CLI entry point; see the module docstring for usage."""
    args = list(argv)
    top = 15
    chrome_out = None
    if "--top" in args:
        i = args.index("--top")
        top = int(args[i + 1])
        del args[i : i + 2]
    if "--chrome" in args:
        i = args.index("--chrome")
        chrome_out = args[i + 1]
        del args[i : i + 2]
    if len(args) != 1:
        print("usage: python -m repro.obs.report <trace> [--top N] [--chrome out.json]")
        return 2
    records = load_records(args[0])
    if chrome_out:
        write_chrome(records, chrome_out)
        print(f"wrote {chrome_out}")
    print(render_report(records, top=top))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
