"""Word-level structural HDL builder.

The paper describes its Processing Element in VHDL with ``--PARAM``
annotations on the infrequently-changing inputs and pushes it through
Quartus synthesis.  This module is the reproduction's HDL front-end: a small
structural-description API for building gate-level circuits out of
word-level operators (adders, multipliers, shifters, multiplexers...), with
parameter buses as first-class objects.

A *bus* is simply a list of node ids, least-significant bit first.  The
:class:`Design` class owns the underlying :class:`~repro.netlist.circuit.Circuit`
and provides the operator library.  All operators elaborate immediately into
gates, so the output of the front-end is directly consumable by the logic
optimizer and the technology mappers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .circuit import Circuit

__all__ = ["Bus", "Design"]

Bus = List[int]


class Design:
    """Structural design builder over a gate-level :class:`Circuit`."""

    def __init__(self, name: str = "design", strash: bool = True) -> None:
        self.circuit = Circuit(name=name, strash=strash)

    # ------------------------------------------------------------------ ports

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a regular input bus ``name[width-1:0]`` (LSB first)."""
        return [self.circuit.add_input(f"{name}[{i}]") for i in range(width)]

    def param_bus(self, name: str, width: int) -> Bus:
        """Declare a parameter bus (``--PARAM`` annotated input)."""
        return [self.circuit.add_param(f"{name}[{i}]") for i in range(width)]

    def input_bit(self, name: str) -> int:
        return self.circuit.add_input(name)

    def param_bit(self, name: str) -> int:
        return self.circuit.add_param(name)

    def output_bus(self, name: str, bus: Bus) -> None:
        """Declare an output bus driven by ``bus`` (LSB first)."""
        for i, nid in enumerate(bus):
            self.circuit.add_output(f"{name}[{i}]", nid)

    def output_bit(self, name: str, nid: int) -> None:
        self.circuit.add_output(name, nid)

    # -------------------------------------------------------------- constants

    def const_bit(self, value: int) -> int:
        return self.circuit.const(1 if value else 0)

    def const_bus(self, value: int, width: int) -> Bus:
        """Constant bus holding unsigned ``value`` on ``width`` bits."""
        return [self.const_bit((value >> i) & 1) for i in range(width)]

    # ------------------------------------------------------------ bit helpers

    def v_not(self, a: Bus) -> Bus:
        return [self.circuit.g_not(x) for x in a]

    def v_and(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.circuit.g_and(x, y) for x, y in zip(a, b)]

    def v_or(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.circuit.g_or(x, y) for x, y in zip(a, b)]

    def v_xor(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.circuit.g_xor(x, y) for x, y in zip(a, b)]

    def reduce_or(self, a: Bus) -> int:
        if not a:
            return self.const_bit(0)
        if len(a) == 1:
            return a[0]
        return self.circuit.g_or(*a)

    def reduce_and(self, a: Bus) -> int:
        if not a:
            return self.const_bit(1)
        if len(a) == 1:
            return a[0]
        return self.circuit.g_and(*a)

    def reduce_xor(self, a: Bus) -> int:
        if not a:
            return self.const_bit(0)
        if len(a) == 1:
            return a[0]
        return self.circuit.g_xor(*a)

    def mux_bit(self, sel: int, d0: int, d1: int) -> int:
        return self.circuit.g_mux(sel, d0, d1)

    def mux_bus(self, sel: int, d0: Bus, d1: Bus) -> Bus:
        """Word-level 2:1 mux: result is ``d0`` when ``sel`` is 0."""
        self._check_same_width(d0, d1)
        return [self.circuit.g_mux(sel, x, y) for x, y in zip(d0, d1)]

    def mux_tree(self, sels: Bus, choices: Sequence[Bus]) -> Bus:
        """N:1 mux selecting ``choices[k]`` where ``k`` is the value of ``sels``.

        ``len(choices)`` must equal ``2 ** len(sels)``.
        """
        if len(choices) != (1 << len(sels)):
            raise ValueError("mux_tree needs 2**len(sels) choices")
        layer = list(choices)
        for sel in sels:
            nxt = []
            for i in range(0, len(layer), 2):
                nxt.append(self.mux_bus(sel, layer[i], layer[i + 1]))
            layer = nxt
        return layer[0]

    # ---------------------------------------------------------- bus utilities

    @staticmethod
    def _check_same_width(a: Bus, b: Bus) -> None:
        if len(a) != len(b):
            raise ValueError(f"bus width mismatch: {len(a)} vs {len(b)}")

    def zero_extend(self, a: Bus, width: int) -> Bus:
        if len(a) > width:
            raise ValueError("cannot zero-extend to a smaller width")
        return list(a) + [self.const_bit(0)] * (width - len(a))

    def truncate(self, a: Bus, width: int) -> Bus:
        return list(a[:width])

    def concat(self, low: Bus, high: Bus) -> Bus:
        """Concatenate buses; ``low`` provides the least-significant bits."""
        return list(low) + list(high)

    def replicate(self, bit: int, width: int) -> Bus:
        return [bit] * width

    # ------------------------------------------------------------- arithmetic

    def half_adder(self, a: int, b: int):
        s = self.circuit.g_xor(a, b)
        c = self.circuit.g_and(a, b)
        return s, c

    def full_adder(self, a: int, b: int, cin: int):
        axb = self.circuit.g_xor(a, b)
        s = self.circuit.g_xor(axb, cin)
        c = self.circuit.g_or(self.circuit.g_and(a, b), self.circuit.g_and(axb, cin))
        return s, c

    def adder(self, a: Bus, b: Bus, cin: Optional[int] = None):
        """Ripple-carry adder.  Returns ``(sum_bus, carry_out)``.

        Operand widths may differ; the shorter one is zero-extended.
        """
        width = max(len(a), len(b))
        a = self.zero_extend(a, width)
        b = self.zero_extend(b, width)
        carry = cin if cin is not None else self.const_bit(0)
        out: Bus = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def subtractor(self, a: Bus, b: Bus):
        """Two's-complement subtractor ``a - b``.

        Returns ``(difference, borrow)`` where ``borrow`` is 1 when
        ``a < b`` (unsigned).
        """
        width = max(len(a), len(b))
        a = self.zero_extend(a, width)
        b = self.zero_extend(b, width)
        diff, carry = self.adder(a, self.v_not(b), cin=self.const_bit(1))
        borrow = self.circuit.g_not(carry)
        return diff, borrow

    def increment(self, a: Bus):
        """``a + 1``; returns ``(sum_bus, carry_out)``."""
        one = self.const_bus(1, len(a))
        return self.adder(a, one)

    def equals_const(self, a: Bus, value: int) -> int:
        """Single-bit comparison ``a == value`` for a constant value."""
        bits = []
        for i, nid in enumerate(a):
            bits.append(nid if (value >> i) & 1 else self.circuit.g_not(nid))
        return self.reduce_and(bits)

    def equals(self, a: Bus, b: Bus) -> int:
        self._check_same_width(a, b)
        diffs = self.v_xor(a, b)
        return self.circuit.g_not(self.reduce_or(diffs))

    def less_than(self, a: Bus, b: Bus) -> int:
        """Unsigned comparison ``a < b`` (single bit)."""
        width = max(len(a), len(b))
        a = self.zero_extend(a, width)
        b = self.zero_extend(b, width)
        _, borrow = self.subtractor(a, b)
        return borrow

    def multiplier(self, a: Bus, b: Bus) -> Bus:
        """Unsigned array multiplier; result width is ``len(a) + len(b)``.

        Implemented as the classic partial-product array with ripple
        accumulation, which is also how FloPoCo generates LUT-only
        multipliers when DSP blocks are disabled (the paper explicitly avoids
        dedicated multipliers).
        """
        wa, wb = len(a), len(b)
        if wa == 0 or wb == 0:
            return []
        acc = [self.circuit.g_and(x, b[0]) for x in a] + [self.const_bit(0)] * wb
        for j in range(1, wb):
            pp = [self.const_bit(0)] * j + [self.circuit.g_and(x, b[j]) for x in a]
            pp = self.zero_extend(pp, wa + wb)
            acc, _ = self.adder(acc, pp)
            acc = self.truncate(acc, wa + wb)
        return acc

    # --------------------------------------------------------------- shifting

    def shift_left_const(self, a: Bus, amount: int, width: Optional[int] = None) -> Bus:
        width = width or len(a)
        shifted = [self.const_bit(0)] * amount + list(a)
        return self.zero_extend(self.truncate(shifted, width), width)

    def shift_right_const(self, a: Bus, amount: int, width: Optional[int] = None) -> Bus:
        width = width or len(a)
        shifted = list(a[amount:])
        return self.zero_extend(shifted, width)

    def barrel_shift_right(self, a: Bus, amount: Bus) -> Bus:
        """Logical right shifter with a variable shift amount bus."""
        out = list(a)
        for k, sel in enumerate(amount):
            shifted = self.shift_right_const(out, 1 << k, len(out))
            out = self.mux_bus(sel, out, shifted)
        return out

    def barrel_shift_left(self, a: Bus, amount: Bus) -> Bus:
        """Logical left shifter with a variable shift amount bus."""
        out = list(a)
        for k, sel in enumerate(amount):
            shifted = self.shift_left_const(out, 1 << k, len(out))
            out = self.mux_bus(sel, out, shifted)
        return out

    # ----------------------------------------------------------- leading zeros

    def leading_zero_count(self, a: Bus) -> Bus:
        """Count of leading zeros of ``a`` (MSB side), as a bus.

        Output width is ``ceil(log2(len(a) + 1))``.  Used by the FP adder's
        normalization stage.
        """
        n = len(a)
        out_w = max(1, (n).bit_length())
        # Priority encode from the MSB down.
        count = self.const_bus(n, out_w)  # all-zero input => n leading zeros
        for pos in range(n):  # pos counted from LSB
            lz = n - 1 - pos  # leading zeros if bit ``pos`` is the highest set bit
            candidate = self.const_bus(lz, out_w)
            count = self.mux_bus(a[pos], count, candidate)
        return count

    # ------------------------------------------------------------------ misc

    def name_bus(self, name: str, bus: Bus) -> Bus:
        """Attach debug names to the nodes of a bus (no structural effect)."""
        for i, nid in enumerate(bus):
            self.circuit.names.setdefault(nid, f"{name}[{i}]")
        return bus
