"""Bit-parallel functional simulation of gate-level circuits.

Simulation serves three purposes in the reproduction:

* golden-model checking of the structural HDL generators (FP adder,
  multiplier, MAC) against word-level arithmetic,
* equivalence checking between a circuit and its optimized / specialized /
  technology-mapped versions, and
* random-pattern validation of the TLUT/TCON specialization step of the DCS
  flow.

Patterns are packed into Python integers (one bit per pattern), so a single
pass over the netlist evaluates an arbitrary number of input patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .circuit import Circuit, Op
from .library import eval_gate

__all__ = [
    "simulate_patterns",
    "simulate_words",
    "simulate_single",
    "random_patterns",
    "exhaustive_patterns",
]


def _pattern_mask(num_patterns: int) -> int:
    return (1 << num_patterns) - 1


def simulate_patterns(
    circuit: Circuit,
    input_patterns: Mapping[int, int],
    num_patterns: int,
    param_patterns: Optional[Mapping[int, int]] = None,
) -> Dict[int, int]:
    """Simulate the circuit on packed pattern vectors.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    input_patterns:
        Mapping from *input node id* to a packed vector of ``num_patterns``
        bits (bit ``p`` is the value of that input in pattern ``p``).
    num_patterns:
        Number of packed patterns.
    param_patterns:
        Values for parameter nodes, same packing.  Parameters left
        unspecified default to 0 (matching the behaviour of an unprogrammed
        settings register).

    Returns
    -------
    dict
        Mapping from node id to packed output vector for every node.
    """
    mask = _pattern_mask(num_patterns)
    values: List[int] = [0] * len(circuit.ops)
    params = dict(param_patterns or {})
    for nid, op in enumerate(circuit.ops):
        if op == Op.INPUT:
            values[nid] = input_patterns.get(nid, 0) & mask
        elif op == Op.PARAM:
            values[nid] = params.get(nid, 0) & mask
        elif op == Op.CONST0:
            values[nid] = 0
        elif op == Op.CONST1:
            values[nid] = mask
        else:
            args = [values[f] for f in circuit.fanins[nid]]
            values[nid] = eval_gate(op, args, mask)
    return {nid: values[nid] for nid in circuit.node_ids()}


def simulate_single(
    circuit: Circuit,
    input_values: Mapping[str, int],
    param_values: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Simulate one pattern given per-name scalar 0/1 input values.

    Unknown names raise ``KeyError``; unspecified inputs default to 0.
    Returns output name -> 0/1 value.
    """
    name_to_id = {circuit.names.get(i, f"in{i}"): i for i in circuit.input_ids()}
    pname_to_id = {circuit.names.get(i, f"param{i}"): i for i in circuit.param_ids()}
    in_pat: Dict[int, int] = {}
    for name, val in input_values.items():
        in_pat[name_to_id[name]] = 1 if val else 0
    par_pat: Dict[int, int] = {}
    for name, val in (param_values or {}).items():
        par_pat[pname_to_id[name]] = 1 if val else 0
    values = simulate_patterns(circuit, in_pat, 1, par_pat)
    return {name: values[nid] & 1 for name, nid in circuit.outputs.items()}


def _bus_nodes(circuit: Circuit, prefix: str, kind: str) -> List[int]:
    """Node ids of a named bus ``prefix[0..n-1]``, LSB first."""
    if kind == "input":
        ids = circuit.input_ids()
    elif kind == "param":
        ids = circuit.param_ids()
    else:
        raise ValueError("kind must be 'input' or 'param'")
    found = {}
    for nid in ids:
        name = circuit.names.get(nid, "")
        if name.startswith(prefix + "[") and name.endswith("]"):
            idx = int(name[len(prefix) + 1 : -1])
            found[idx] = nid
        elif name == prefix:
            found[0] = nid
    return [found[i] for i in sorted(found)]


def simulate_words(
    circuit: Circuit,
    input_words: Mapping[str, Sequence[int]],
    param_words: Optional[Mapping[str, int]] = None,
) -> Dict[str, np.ndarray]:
    """Simulate word-level stimulus on a circuit built with bus-named ports.

    ``input_words`` maps a bus name (e.g. ``"a"``) to a sequence of unsigned
    integer words, one per pattern; bit ``k`` of a word drives input node
    ``a[k]``.  ``param_words`` maps a parameter bus name to a *single* word
    (parameters are constant across all patterns, exactly as in the DCS
    model).  Output buses are reassembled into unsigned integer words.
    """
    words = {name: list(vals) for name, vals in input_words.items()}
    num_patterns = max((len(v) for v in words.values()), default=1)
    mask = _pattern_mask(num_patterns)

    in_pat: Dict[int, int] = {}
    for name, vals in words.items():
        nodes = _bus_nodes(circuit, name, "input")
        if not nodes:
            raise KeyError(f"no input bus named {name!r}")
        for bit, nid in enumerate(nodes):
            packed = 0
            for p, word in enumerate(vals):
                if (word >> bit) & 1:
                    packed |= 1 << p
            in_pat[nid] = packed

    par_pat: Dict[int, int] = {}
    for name, word in (param_words or {}).items():
        nodes = _bus_nodes(circuit, name, "param")
        if not nodes:
            raise KeyError(f"no parameter bus named {name!r}")
        for bit, nid in enumerate(nodes):
            par_pat[nid] = mask if (word >> bit) & 1 else 0

    values = simulate_patterns(circuit, in_pat, num_patterns, par_pat)

    # Group outputs into buses by name prefix.
    out_buses: Dict[str, Dict[int, int]] = {}
    for name, nid in circuit.outputs.items():
        if "[" in name and name.endswith("]"):
            prefix, idx = name[: name.index("[")], int(name[name.index("[") + 1 : -1])
        else:
            prefix, idx = name, 0
        out_buses.setdefault(prefix, {})[idx] = nid

    result: Dict[str, np.ndarray] = {}
    for prefix, bits in out_buses.items():
        arr = np.zeros(num_patterns, dtype=object)
        for idx, nid in bits.items():
            packed = values[nid]
            for p in range(num_patterns):
                if (packed >> p) & 1:
                    arr[p] = int(arr[p]) | (1 << idx)
        result[prefix] = arr
    return result


def random_patterns(
    circuit: Circuit, num_patterns: int, rng: Optional[np.random.Generator] = None
) -> Dict[int, int]:
    """Generate packed random input patterns for every regular input."""
    rng = rng or np.random.default_rng(0)
    pats: Dict[int, int] = {}
    for nid in circuit.input_ids():
        bits = rng.integers(0, 2, size=num_patterns)
        packed = 0
        for p, b in enumerate(bits):
            if b:
                packed |= 1 << p
        pats[nid] = packed
    return pats


def exhaustive_patterns(input_ids: Sequence[int]) -> Dict[int, int]:
    """Packed patterns enumerating every assignment of the given inputs.

    With ``n`` inputs the returned vectors are ``2**n`` patterns long and
    pattern ``p`` assigns input ``i`` the ``i``-th bit of ``p``.  Only
    sensible for small ``n`` (equivalence checking of specialized cones).
    """
    n = len(input_ids)
    num_patterns = 1 << n
    pats: Dict[int, int] = {}
    for i, nid in enumerate(input_ids):
        packed = 0
        for p in range(num_patterns):
            if (p >> i) & 1:
                packed |= 1 << p
        pats[nid] = packed
    return pats
