"""Bit-parallel functional simulation of gate-level circuits.

Simulation serves three purposes in the reproduction:

* golden-model checking of the structural HDL generators (FP adder,
  multiplier, MAC) against word-level arithmetic,
* equivalence checking between a circuit and its optimized / specialized /
  technology-mapped versions, and
* random-pattern validation of the TLUT/TCON specialization step of the DCS
  flow.

Patterns are packed into Python integers (one bit per pattern), so a single
pass over the netlist evaluates an arbitrary number of input patterns.

Two evaluation paths live behind the same API:

* the **compiled engine** (default) -- :mod:`repro.netlist.engine` compiles
  the circuit once (straight-line big-integer codegen, plus a vectorized
  NumPy ``uint64`` bit-plane backend) and reuses the cached artifact on
  every call, and
* the **reference interpreter** (``engine="reference"``) -- the original
  per-node dict-dispatch loop, kept as the golden model for equivalence
  tests and as the baseline the hot-path benchmark measures against.

Both are bit-identical; see ``PERFORMANCE.md`` for the design and measured
speedups.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .circuit import Circuit, Op
from .engine import compile_circuit, pack_bits_to_int, unpack_int_to_bits
from .library import eval_gate

__all__ = [
    "simulate_patterns",
    "simulate_patterns_reference",
    "simulate_words",
    "simulate_single",
    "random_patterns",
    "exhaustive_patterns",
]


def _pattern_mask(num_patterns: int) -> int:
    return (1 << num_patterns) - 1


def simulate_patterns(
    circuit: Circuit,
    input_patterns: Mapping[int, int],
    num_patterns: int,
    param_patterns: Optional[Mapping[int, int]] = None,
    engine: str = "compiled",
) -> Dict[int, int]:
    """Simulate the circuit on packed pattern vectors.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    input_patterns:
        Mapping from *input node id* to a packed vector of ``num_patterns``
        bits (bit ``p`` is the value of that input in pattern ``p``).
    num_patterns:
        Number of packed patterns.
    param_patterns:
        Values for parameter nodes, same packing.  Parameters left
        unspecified default to 0 (matching the behaviour of an unprogrammed
        settings register).
    engine:
        ``"compiled"`` (default) runs the cached vectorized engine;
        ``"reference"`` runs the original per-node interpreter.  Both return
        bit-identical results.

    Returns
    -------
    dict
        Mapping from node id to packed output vector for every node.
    """
    if engine == "reference":
        return simulate_patterns_reference(
            circuit, input_patterns, num_patterns, param_patterns
        )
    if engine != "compiled":
        raise ValueError(f"unknown simulation engine {engine!r}")
    return compile_circuit(circuit).simulate(input_patterns, num_patterns, param_patterns)


def simulate_patterns_reference(
    circuit: Circuit,
    input_patterns: Mapping[int, int],
    num_patterns: int,
    param_patterns: Optional[Mapping[int, int]] = None,
) -> Dict[int, int]:
    """Original per-node interpreter (golden model for the compiled engine)."""
    mask = _pattern_mask(num_patterns)
    values: List[int] = [0] * len(circuit.ops)
    params = dict(param_patterns or {})
    for nid, op in enumerate(circuit.ops):
        if op == Op.INPUT:
            values[nid] = input_patterns.get(nid, 0) & mask
        elif op == Op.PARAM:
            values[nid] = params.get(nid, 0) & mask
        elif op == Op.CONST0:
            values[nid] = 0
        elif op == Op.CONST1:
            values[nid] = mask
        else:
            args = [values[f] for f in circuit.fanins[nid]]
            values[nid] = eval_gate(op, args, mask)
    return {nid: values[nid] for nid in circuit.node_ids()}


def simulate_single(
    circuit: Circuit,
    input_values: Mapping[str, int],
    param_values: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Simulate one pattern given per-name scalar 0/1 input values.

    Unknown names raise ``KeyError``; unspecified inputs default to 0.
    Returns output name -> 0/1 value.
    """
    name_to_id = {circuit.names.get(i, f"in{i}"): i for i in circuit.input_ids()}
    pname_to_id = {circuit.names.get(i, f"param{i}"): i for i in circuit.param_ids()}
    in_pat: Dict[int, int] = {}
    for name, val in input_values.items():
        in_pat[name_to_id[name]] = 1 if val else 0
    par_pat: Dict[int, int] = {}
    for name, val in (param_values or {}).items():
        par_pat[pname_to_id[name]] = 1 if val else 0
    values = simulate_patterns(circuit, in_pat, 1, par_pat)
    return {name: values[nid] & 1 for name, nid in circuit.outputs.items()}


def _bus_nodes(circuit: Circuit, prefix: str, kind: str) -> List[int]:
    """Node ids of a named bus ``prefix[0..n-1]``, LSB first."""
    if kind == "input":
        ids = circuit.input_ids()
    elif kind == "param":
        ids = circuit.param_ids()
    else:
        raise ValueError("kind must be 'input' or 'param'")
    found = {}
    for nid in ids:
        name = circuit.names.get(nid, "")
        if name.startswith(prefix + "[") and name.endswith("]"):
            idx = int(name[len(prefix) + 1 : -1])
            found[idx] = nid
        elif name == prefix:
            found[0] = nid
    return [found[i] for i in sorted(found)]


def _pack_word_bits(vals: Sequence[int], nodes: Sequence[int]) -> Dict[int, int]:
    """Packed per-bit pattern integers for a word-level input bus.

    Bit ``k`` of each word drives ``nodes[k]``; the per-pattern bits are
    packed with ``np.packbits`` instead of a Python loop over patterns.
    Buses wider than 64 bits (shift counts >= 64 are undefined for
    ``np.uint64``) and negative/oversized words use the exact big-integer
    fallback.
    """
    packed: Dict[int, int] = {}
    if not vals or not nodes:
        return packed
    lo, hi = min(vals), max(vals)
    if 0 <= lo and hi < (1 << 63) and len(nodes) <= 64:
        arr = np.asarray([int(v) for v in vals], dtype=np.uint64)
        for bit, nid in enumerate(nodes):
            bits = (arr >> np.uint64(bit)) & np.uint64(1)
            value = pack_bits_to_int(bits)
            if value:
                packed[nid] = value
    else:  # arbitrary-precision fallback
        for bit, nid in enumerate(nodes):
            value = 0
            for p, word in enumerate(vals):
                if (int(word) >> bit) & 1:
                    value |= 1 << p
            if value:
                packed[nid] = value
    return packed


def simulate_words(
    circuit: Circuit,
    input_words: Mapping[str, Sequence[int]],
    param_words: Optional[Mapping[str, int]] = None,
) -> Dict[str, np.ndarray]:
    """Simulate word-level stimulus on a circuit built with bus-named ports.

    ``input_words`` maps a bus name (e.g. ``"a"``) to a sequence of unsigned
    integer words, one per pattern; bit ``k`` of a word drives input node
    ``a[k]``.  ``param_words`` maps a parameter bus name to a *single* word
    (parameters are constant across all patterns, exactly as in the DCS
    model).  Output buses are reassembled into unsigned integer words.
    """
    words = {name: list(vals) for name, vals in input_words.items()}
    num_patterns = max((len(v) for v in words.values()), default=1)
    mask = _pattern_mask(num_patterns)
    engine = compile_circuit(circuit)

    in_pat: Dict[int, int] = {}
    for name, vals in words.items():
        nodes = _bus_nodes(circuit, name, "input")
        if not nodes:
            raise KeyError(f"no input bus named {name!r}")
        in_pat.update(_pack_word_bits(vals, nodes))

    par_pat: Dict[int, int] = {}
    for name, word in (param_words or {}).items():
        nodes = _bus_nodes(circuit, name, "param")
        if not nodes:
            raise KeyError(f"no parameter bus named {name!r}")
        for bit, nid in enumerate(nodes):
            par_pat[nid] = mask if (int(word) >> bit) & 1 else 0

    values = engine.simulate_values(in_pat, num_patterns, par_pat)

    # Group outputs into buses by name prefix.
    out_buses: Dict[str, Dict[int, int]] = {}
    for name, nid in circuit.outputs.items():
        if "[" in name and name.endswith("]"):
            prefix, idx = name[: name.index("[")], int(name[name.index("[") + 1 : -1])
        else:
            prefix, idx = name, 0
        out_buses.setdefault(prefix, {})[idx] = nid

    result: Dict[str, np.ndarray] = {}
    for prefix, bits in out_buses.items():
        arr = np.zeros(num_patterns, dtype=object)
        if bits and max(bits) < 63:
            acc = np.zeros(num_patterns, dtype=np.uint64)
            for idx, nid in bits.items():
                plane_bits = unpack_int_to_bits(values[nid], num_patterns)
                acc |= plane_bits.astype(np.uint64) << np.uint64(idx)
            arr[:] = [int(w) for w in acc]
        else:  # very wide buses: assemble with arbitrary-precision ints
            for idx, nid in bits.items():
                plane_bits = unpack_int_to_bits(values[nid], num_patterns)
                for p in np.flatnonzero(plane_bits):
                    arr[p] = int(arr[p]) | (1 << idx)
        result[prefix] = arr
    return result


def random_patterns(
    circuit: Circuit, num_patterns: int, rng: Optional[np.random.Generator] = None
) -> Dict[int, int]:
    """Generate packed random input patterns for every regular input."""
    rng = rng or np.random.default_rng(0)
    pats: Dict[int, int] = {}
    for nid in circuit.input_ids():
        bits = rng.integers(0, 2, size=num_patterns)
        packed_bytes = np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()
        pats[nid] = int.from_bytes(packed_bytes, "little")
    return pats


def exhaustive_patterns(input_ids: Sequence[int]) -> Dict[int, int]:
    """Packed patterns enumerating every assignment of the given inputs.

    With ``n`` inputs the returned vectors are ``2**n`` patterns long and
    pattern ``p`` assigns input ``i`` the ``i``-th bit of ``p``.  Only
    sensible for small ``n`` (equivalence checking of specialized cones).
    """
    n = len(input_ids)
    num_patterns = 1 << n
    all_ones = (1 << num_patterns) - 1
    pats: Dict[int, int] = {}
    for i, nid in enumerate(input_ids):
        # Periodic vector 0^(2^i) 1^(2^i) ...: the classic truth-table mask.
        block = 1 << i
        ones_block = ((1 << block) - 1) << block
        period = block * 2
        repeat = all_ones // ((1 << period) - 1) if num_patterns >= period else 1
        pats[nid] = ones_block * repeat
    return pats
