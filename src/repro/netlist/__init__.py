"""Gate-level netlist substrate: Boolean functions, circuits, HDL builder, simulation."""

from .boolean import (
    TruthTable,
    const_tt,
    var_tt,
    cofactor,
    restrict,
    is_wire_function,
    wire_source,
)
from .circuit import Circuit, CircuitStats, Op
from .engine import CompiledCircuit, compile_circuit
from .hdl import Bus, Design
from .library import GATE_EVAL, GATE_COST, eval_gate, gate_truth_table
from .simulate import (
    simulate_patterns,
    simulate_patterns_reference,
    simulate_single,
    simulate_words,
    random_patterns,
    exhaustive_patterns,
)

__all__ = [
    "TruthTable",
    "const_tt",
    "var_tt",
    "cofactor",
    "restrict",
    "is_wire_function",
    "wire_source",
    "Circuit",
    "CircuitStats",
    "Op",
    "Bus",
    "Design",
    "GATE_EVAL",
    "GATE_COST",
    "eval_gate",
    "gate_truth_table",
    "CompiledCircuit",
    "compile_circuit",
    "simulate_patterns",
    "simulate_patterns_reference",
    "simulate_single",
    "simulate_words",
    "random_patterns",
    "exhaustive_patterns",
]
