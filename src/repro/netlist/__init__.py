"""Gate-level netlist substrate: Boolean functions, circuits, HDL builder, simulation."""

from .boolean import (
    TruthTable,
    const_tt,
    var_tt,
    cofactor,
    restrict,
    is_wire_function,
    wire_source,
)
from .circuit import Circuit, CircuitStats, Op
from .hdl import Bus, Design
from .library import GATE_EVAL, GATE_COST, eval_gate, gate_truth_table
from .simulate import (
    simulate_patterns,
    simulate_single,
    simulate_words,
    random_patterns,
    exhaustive_patterns,
)

__all__ = [
    "TruthTable",
    "const_tt",
    "var_tt",
    "cofactor",
    "restrict",
    "is_wire_function",
    "wire_source",
    "Circuit",
    "CircuitStats",
    "Op",
    "Bus",
    "Design",
    "GATE_EVAL",
    "GATE_COST",
    "eval_gate",
    "gate_truth_table",
    "simulate_patterns",
    "simulate_single",
    "simulate_words",
    "random_patterns",
    "exhaustive_patterns",
]
