"""Truth-table based Boolean functions.

The whole tool flow (synthesis, technology mapping, TLUT/TCON extraction and
the Partial Parameterized Configuration of the DCS flow) manipulates small
Boolean functions -- at most a handful of variables, since the target FPGA
uses 4-input LUTs and parameter cones are kept small.  A compact and very
fast representation is a plain Python integer used as a bitmask over the
:math:`2^n` rows of the truth table, together with an explicit support list.

Bit ``i`` of :attr:`TruthTable.bits` holds the function value for the input
assignment whose binary encoding is ``i`` (variable 0 is the least
significant bit of the row index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

__all__ = [
    "TruthTable",
    "const_tt",
    "var_tt",
    "cofactor",
    "is_wire_function",
    "wire_source",
]


def _mask(num_vars: int) -> int:
    """Full bitmask for a truth table over ``num_vars`` variables."""
    return (1 << (1 << num_vars)) - 1


# Pre-computed "pattern" masks: _PATTERN[v][n] is the truth table (over n
# variables) of the projection function x_v, i.e. the table of the bare
# variable v.  Only small n are ever needed; computed lazily and cached.
_PATTERN_CACHE: dict = {}


def _var_pattern(var: int, num_vars: int) -> int:
    """Truth table bits of the projection function ``x_var`` on ``num_vars`` vars."""
    key = (var, num_vars)
    cached = _PATTERN_CACHE.get(key)
    if cached is not None:
        return cached
    if var >= num_vars:
        raise ValueError(f"variable {var} out of range for {num_vars} variables")
    bits = 0
    block = 1 << var          # run length of equal values
    period = block << 1       # repetition period
    rows = 1 << num_vars
    for start in range(block, rows, period):
        bits |= ((1 << block) - 1) << start
    _PATTERN_CACHE[key] = bits
    return bits


@dataclass(frozen=True)
class TruthTable:
    """An ``n``-variable Boolean function stored as a truth-table bitmask.

    Parameters
    ----------
    num_vars:
        Number of input variables.
    bits:
        Integer whose bit ``i`` is the output for input assignment ``i``.

    The class is immutable and hashable so tables can be used as dict keys
    (e.g. for structural hashing of LUT contents).
    """

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        object.__setattr__(self, "bits", self.bits & _mask(self.num_vars))

    # -- basic queries -----------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of truth-table rows (:math:`2^n`)."""
        return 1 << self.num_vars

    def value(self, assignment: int) -> int:
        """Output value (0/1) for the input assignment encoded as an integer."""
        if not 0 <= assignment < self.num_rows:
            raise ValueError("assignment out of range")
        return (self.bits >> assignment) & 1

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Evaluate the function on a sequence of 0/1 input values."""
        if len(inputs) != self.num_vars:
            raise ValueError("wrong number of inputs")
        idx = 0
        for i, v in enumerate(inputs):
            if v:
                idx |= 1 << i
        return (self.bits >> idx) & 1

    def is_const0(self) -> bool:
        """True if the function is identically 0."""
        return self.bits == 0

    def is_const1(self) -> bool:
        """True if the function is identically 1."""
        return self.bits == _mask(self.num_vars)

    def is_const(self) -> bool:
        """True if the function is constant."""
        return self.is_const0() or self.is_const1()

    def depends_on(self, var: int) -> bool:
        """True if the function actually depends on variable ``var``."""
        pat = _var_pattern(var, self.num_vars)
        pos = self.bits & pat
        neg = self.bits & ~pat & _mask(self.num_vars)
        # Shift the positive cofactor down onto the negative cofactor rows.
        return (pos >> (1 << var)) != neg

    def support(self) -> Tuple[int, ...]:
        """Indices of the variables the function truly depends on."""
        return tuple(v for v in range(self.num_vars) if self.depends_on(v))

    def count_ones(self) -> int:
        """Number of minterms (rows evaluating to 1)."""
        return bin(self.bits).count("1")

    # -- Boolean algebra ---------------------------------------------------

    def _check_compat(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("truth tables must have the same number of variables")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    # -- restructuring -----------------------------------------------------

    def expand(self, num_vars: int, placement: Sequence[int]) -> "TruthTable":
        """Re-express the function over a larger variable set.

        ``placement[i]`` gives the position of this table's variable ``i`` in
        the new variable ordering.  Used when composing cut functions whose
        leaves are drawn from a shared leaf set.
        """
        if len(placement) != self.num_vars:
            raise ValueError("placement must name every current variable")
        out = 0
        for row in range(1 << num_vars):
            idx = 0
            for i, pos in enumerate(placement):
                if (row >> pos) & 1:
                    idx |= 1 << i
            if (self.bits >> idx) & 1:
                out |= 1 << row
        return TruthTable(num_vars, out)

    def shrink_to_support(self) -> Tuple["TruthTable", Tuple[int, ...]]:
        """Drop variables the function does not depend on.

        Returns the reduced table and the tuple of retained original
        variable indices (in order).
        """
        sup = self.support()
        new_n = len(sup)
        out = 0
        for new_row in range(1 << new_n):
            idx = 0
            for new_pos, old_var in enumerate(sup):
                if (new_row >> new_pos) & 1:
                    idx |= 1 << old_var
            if (self.bits >> idx) & 1:
                out |= 1 << new_row
        return TruthTable(new_n, out), sup

    def __str__(self) -> str:  # pragma: no cover - debug helper
        width = self.num_rows
        return f"TT({self.num_vars}v, {self.bits:0{width}b})"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def const_tt(value: int, num_vars: int = 0) -> TruthTable:
    """Constant-0 or constant-1 function over ``num_vars`` variables."""
    return TruthTable(num_vars, _mask(num_vars) if value else 0)


def var_tt(var: int, num_vars: int) -> TruthTable:
    """Projection function ``x_var`` over ``num_vars`` variables."""
    return TruthTable(num_vars, _var_pattern(var, num_vars))


# ---------------------------------------------------------------------------
# Cofactoring and wire detection (used by TCONMAP)
# ---------------------------------------------------------------------------

def cofactor(tt: TruthTable, var: int, value: int) -> TruthTable:
    """Shannon cofactor of ``tt`` with respect to ``var`` = ``value``.

    The result is still expressed over the same variable set; the selected
    variable simply becomes a don't-care.
    """
    pat = _var_pattern(var, tt.num_vars)
    block = 1 << var
    full = _mask(tt.num_vars)
    if value:
        pos = tt.bits & pat
        return TruthTable(tt.num_vars, (pos | (pos >> block)) & full)
    neg = tt.bits & ~pat & full
    return TruthTable(tt.num_vars, (neg | (neg << block)) & full)


def restrict(tt: TruthTable, assignment: dict) -> TruthTable:
    """Cofactor ``tt`` under a partial assignment ``{var: 0/1}``."""
    out = tt
    for var, value in assignment.items():
        out = cofactor(out, var, value)
    return out


def is_wire_function(tt: TruthTable, data_vars: Iterable[int]) -> bool:
    """True if ``tt`` equals one of ``data_vars`` (possibly inverted) or a constant.

    This is the degenerate form a *tunable connection* (TCON) must take once
    the parameter variables have been fixed: the remaining logic is a plain
    wire (optionally inverting) or a constant driver, and can therefore be
    realized on the FPGA's physical routing switches instead of on a LUT.
    """
    if tt.is_const():
        return True
    for v in data_vars:
        pat = var_tt(v, tt.num_vars)
        if tt.bits == pat.bits or tt.bits == (~pat).bits:
            return True
    return False


def wire_source(tt: TruthTable, data_vars: Iterable[int]):
    """Identify which data variable (or constant) a wire-function passes through.

    Returns a tuple ``(kind, var, inverted)`` where ``kind`` is one of
    ``"const0"``, ``"const1"`` or ``"var"``.  Raises ``ValueError`` if the
    function is not a wire function over ``data_vars``.
    """
    if tt.is_const0():
        return ("const0", None, False)
    if tt.is_const1():
        return ("const1", None, False)
    for v in data_vars:
        pat = var_tt(v, tt.num_vars)
        if tt.bits == pat.bits:
            return ("var", v, False)
        if tt.bits == (~pat).bits:
            return ("var", v, True)
    raise ValueError("function is not a wire function over the given variables")
