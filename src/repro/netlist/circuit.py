"""Gate-level circuit representation.

A :class:`Circuit` is a directed acyclic graph of simple Boolean gates.  It
is the common intermediate representation shared by the synthesis front-end,
the ABC-style logic optimizer and the technology mappers (conventional LUT
mapping and TCONMAP).

Design decisions
----------------
* Nodes are identified by dense integer ids.  A node's fanins must already
  exist when the node is created, so node ids form a topological order by
  construction.  Every downstream algorithm (simulation, cut enumeration,
  constant propagation) exploits this.
* *Parameter* inputs -- the infrequently changing inputs that Dynamic Circuit
  Specialization treats as constants (the ``--PARAM`` annotation of the
  paper's VHDL flow) -- are first-class citizens: they are a distinct node
  kind so that every stage of the flow can distinguish them from regular
  data inputs.
* Structural hashing is available at construction time (``strash=True``) and
  as a separate pass in :mod:`repro.synth.optimize`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Op", "Circuit", "CircuitStats"]


class Op:
    """Gate operation codes used by :class:`Circuit` nodes."""

    INPUT = "input"
    PARAM = "param"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MUX = "mux"  # fanins (sel, d0, d1): output = d0 if sel == 0 else d1

    ALL = (
        INPUT, PARAM, CONST0, CONST1, BUF, NOT,
        AND, OR, XOR, NAND, NOR, XNOR, MUX,
    )
    LEAVES = (INPUT, PARAM, CONST0, CONST1)
    COMMUTATIVE = (AND, OR, XOR, NAND, NOR, XNOR)
    GATES = (BUF, NOT, AND, OR, XOR, NAND, NOR, XNOR, MUX)

    #: number of fanins for fixed-arity ops (None = variadic >= 2)
    ARITY = {
        INPUT: 0, PARAM: 0, CONST0: 0, CONST1: 0,
        BUF: 1, NOT: 1, MUX: 3,
        AND: None, OR: None, XOR: None, NAND: None, NOR: None, XNOR: None,
    }


class CircuitStats:
    """Simple size/shape statistics of a circuit."""

    def __init__(self, circuit: "Circuit") -> None:
        ops = circuit.ops
        self.num_nodes = len(ops)
        self.num_inputs = sum(1 for o in ops if o == Op.INPUT)
        self.num_params = sum(1 for o in ops if o == Op.PARAM)
        self.num_gates = sum(1 for o in ops if o in Op.GATES)
        self.num_outputs = len(circuit.outputs)
        self.depth = circuit.depth()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CircuitStats(nodes={self.num_nodes}, inputs={self.num_inputs}, "
            f"params={self.num_params}, gates={self.num_gates}, "
            f"outputs={self.num_outputs}, depth={self.depth})"
        )


class Circuit:
    """A combinational gate-level netlist.

    Attributes
    ----------
    ops:
        List of per-node operation codes (see :class:`Op`).
    fanins:
        List of per-node fanin tuples (node ids).
    names:
        Optional user-facing names for nodes (inputs, params, key signals).
    outputs:
        Ordered mapping of output name to driving node id.
    """

    def __init__(self, name: str = "top", strash: bool = False) -> None:
        self.name = name
        self.ops: List[str] = []
        self.fanins: List[Tuple[int, ...]] = []
        self.names: Dict[int, str] = {}
        self.outputs: Dict[str, int] = {}
        self._strash = strash
        self._strash_table: Dict[Tuple, int] = {}
        self._const_cache: Dict[str, int] = {}

    # -- construction --------------------------------------------------------

    def _new_node(self, op: str, fanins: Tuple[int, ...], name: Optional[str] = None) -> int:
        nid = len(self.ops)
        self.ops.append(op)
        self.fanins.append(fanins)
        if name is not None:
            self.names[nid] = name
        return nid

    def add_input(self, name: str) -> int:
        """Create a regular (frequently changing) primary input."""
        return self._new_node(Op.INPUT, (), name)

    def add_param(self, name: str) -> int:
        """Create a parameter input (the ``--PARAM`` annotation of the paper)."""
        return self._new_node(Op.PARAM, (), name)

    def const(self, value: int) -> int:
        """Return the constant-0 or constant-1 node, creating it on first use."""
        op = Op.CONST1 if value else Op.CONST0
        nid = self._const_cache.get(op)
        if nid is None:
            nid = self._new_node(op, ())
            self._const_cache[op] = nid
        return nid

    def gate(self, op: str, *fanins: int, name: Optional[str] = None) -> int:
        """Create a gate node.

        Fanins must be existing node ids.  When structural hashing is
        enabled, an identical existing gate is returned instead of a new one.
        """
        if op not in Op.GATES:
            raise ValueError(f"unknown gate op {op!r}")
        arity = Op.ARITY[op]
        if arity is None:
            if len(fanins) < 2:
                raise ValueError(f"{op} gate needs at least two fanins")
        elif len(fanins) != arity:
            raise ValueError(f"{op} gate needs exactly {arity} fanins, got {len(fanins)}")
        for f in fanins:
            if not 0 <= f < len(self.ops):
                raise ValueError(f"fanin {f} does not exist")

        key_fanins = tuple(sorted(fanins)) if op in Op.COMMUTATIVE else tuple(fanins)
        if self._strash:
            key = (op, key_fanins)
            hit = self._strash_table.get(key)
            if hit is not None:
                return hit
        nid = self._new_node(op, tuple(fanins), name)
        if self._strash:
            self._strash_table[(op, key_fanins)] = nid
        return nid

    # Convenience wrappers -----------------------------------------------------

    def g_not(self, a: int) -> int:
        return self.gate(Op.NOT, a)

    def g_and(self, *xs: int) -> int:
        return self.gate(Op.AND, *xs)

    def g_or(self, *xs: int) -> int:
        return self.gate(Op.OR, *xs)

    def g_xor(self, *xs: int) -> int:
        return self.gate(Op.XOR, *xs)

    def g_mux(self, sel: int, d0: int, d1: int) -> int:
        """2:1 multiplexer: output is ``d0`` when ``sel`` is 0, ``d1`` otherwise."""
        return self.gate(Op.MUX, sel, d0, d1)

    def add_output(self, name: str, node: int) -> None:
        """Mark an existing node as a primary output."""
        if not 0 <= node < len(self.ops):
            raise ValueError(f"node {node} does not exist")
        if name in self.outputs:
            raise ValueError(f"duplicate output name {name!r}")
        self.outputs[name] = node

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def node_ids(self) -> range:
        """All node ids in topological order."""
        return range(len(self.ops))

    def is_leaf(self, nid: int) -> bool:
        return self.ops[nid] in Op.LEAVES

    def input_ids(self) -> List[int]:
        return [i for i, o in enumerate(self.ops) if o == Op.INPUT]

    def param_ids(self) -> List[int]:
        return [i for i, o in enumerate(self.ops) if o == Op.PARAM]

    def gate_ids(self) -> List[int]:
        return [i for i, o in enumerate(self.ops) if o in Op.GATES]

    def input_names(self) -> List[str]:
        return [self.names.get(i, f"in{i}") for i in self.input_ids()]

    def param_names(self) -> List[str]:
        return [self.names.get(i, f"param{i}") for i in self.param_ids()]

    def output_ids(self) -> List[int]:
        return list(self.outputs.values())

    def num_gates(self) -> int:
        return sum(1 for o in self.ops if o in Op.GATES)

    def fanouts(self) -> List[List[int]]:
        """Per-node fanout lists (combinational fanout only, outputs excluded)."""
        fo: List[List[int]] = [[] for _ in self.ops]
        for nid, fins in enumerate(self.fanins):
            for f in fins:
                fo[f].append(nid)
        return fo

    def depth(self) -> int:
        """Logic depth in gate levels (leaves are level 0)."""
        if not self.ops:
            return 0
        level = [0] * len(self.ops)
        for nid, fins in enumerate(self.fanins):
            if self.ops[nid] in Op.LEAVES:
                level[nid] = 0
            else:
                level[nid] = 1 + max((level[f] for f in fins), default=0)
        if not self.outputs:
            return max(level, default=0)
        return max(level[n] for n in self.outputs.values())

    def levels(self) -> List[int]:
        """Per-node logic level (leaves at level 0)."""
        level = [0] * len(self.ops)
        for nid, fins in enumerate(self.fanins):
            if self.ops[nid] not in Op.LEAVES:
                level[nid] = 1 + max((level[f] for f in fins), default=0)
        return level

    def stats(self) -> CircuitStats:
        return CircuitStats(self)

    # -- transformations ----------------------------------------------------------

    def transitive_fanin(self, roots: Iterable[int]) -> List[int]:
        """All nodes in the transitive fanin cone of ``roots`` (including them)."""
        seen = set()
        stack = list(roots)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.fanins[nid])
        return sorted(seen)

    def extract_cone(self, roots: Sequence[int]) -> Tuple["Circuit", Dict[int, int]]:
        """Copy the transitive fanin cone of ``roots`` into a fresh circuit.

        Returns the new circuit and the old-id -> new-id map.  Primary outputs
        of the new circuit are the given roots, named ``cone{i}`` unless they
        already carry a name.
        """
        keep = self.transitive_fanin(roots)
        new = Circuit(name=f"{self.name}_cone")
        remap: Dict[int, int] = {}
        for nid in keep:  # keep is sorted => topological
            op = self.ops[nid]
            fins = tuple(remap[f] for f in self.fanins[nid])
            remap[nid] = new._new_node(op, fins, self.names.get(nid))
        for i, r in enumerate(roots):
            name = self.names.get(r, f"cone{i}")
            out_name = name
            suffix = 0
            while out_name in new.outputs:
                suffix += 1
                out_name = f"{name}_{suffix}"
            new.add_output(out_name, remap[r])
        return new, remap

    def clone(self) -> "Circuit":
        """Deep copy of the circuit."""
        new = Circuit(name=self.name, strash=False)
        new.ops = list(self.ops)
        new.fanins = list(self.fanins)
        new.names = dict(self.names)
        new.outputs = dict(self.outputs)
        new._const_cache = dict(self._const_cache)
        return new

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        for nid, (op, fins) in enumerate(zip(self.ops, self.fanins)):
            if op not in Op.ALL:
                raise ValueError(f"node {nid}: unknown op {op!r}")
            arity = Op.ARITY[op]
            if arity is None:
                if len(fins) < 2:
                    raise ValueError(f"node {nid}: {op} needs >= 2 fanins")
            elif len(fins) != arity:
                raise ValueError(f"node {nid}: {op} needs {arity} fanins")
            for f in fins:
                if not 0 <= f < nid:
                    raise ValueError(
                        f"node {nid}: fanin {f} is not an earlier node "
                        "(topological-order invariant violated)"
                    )
        for name, nid in self.outputs.items():
            if not 0 <= nid < len(self.ops):
                raise ValueError(f"output {name!r} drives missing node {nid}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Circuit({self.name!r}, nodes={len(self.ops)}, "
            f"inputs={len(self.input_ids())}, params={len(self.param_ids())}, "
            f"outputs={len(self.outputs)})"
        )
