"""Netlist interchange: BLIF export of circuits and mapped networks.

The original tool chain of the paper exchanges designs between Quartus, ABC,
TCONMAP and TPaR as BLIF files.  This module provides the same interchange
points for the reproduction: gate-level circuits and technology-mapped
networks can be written as Berkeley Logic Interchange Format text, which
makes it easy to inspect intermediate results or to feed them to external
tools (ABC, VPR) for cross-checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .boolean import TruthTable
from .circuit import Circuit, Op
from ..techmap.mapping import MappedNetwork, NodeKind

__all__ = ["circuit_to_blif", "mapped_network_to_blif"]


_GATE_COVERS = {
    Op.BUF: [("1", "1")],
    Op.NOT: [("0", "1")],
    Op.AND: None,   # handled generically
    Op.OR: None,
    Op.XOR: None,
    Op.NAND: None,
    Op.NOR: None,
    Op.XNOR: None,
    Op.MUX: [("0-0", "0"), ("0-1", "0")],  # placeholder, handled explicitly
}


def _signal_name(circuit: Circuit, nid: int) -> str:
    name = circuit.names.get(nid)
    if name:
        return name.replace(" ", "_")
    return f"n{nid}"


def _gate_cover_lines(op: str, arity: int) -> List[str]:
    """SOP cover of a gate in BLIF ``.names`` format (inputs then output)."""
    lines: List[str] = []
    if op == Op.BUF:
        return ["1 1"]
    if op == Op.NOT:
        return ["0 1"]
    if op in (Op.AND, Op.NAND):
        row = "1" * arity
        lines = [f"{row} 1"]
        if op == Op.NAND:
            lines = [f"{'1' * arity} 0"]
            # BLIF expresses the ON-set; invert by listing rows with any zero.
            lines = []
            for i in range(arity):
                lines.append("-" * i + "0" + "-" * (arity - i - 1) + " 1")
        return lines
    if op in (Op.OR, Op.NOR):
        if op == Op.OR:
            for i in range(arity):
                lines.append("-" * i + "1" + "-" * (arity - i - 1) + " 1")
        else:
            lines.append("0" * arity + " 1")
        return lines
    if op in (Op.XOR, Op.XNOR):
        want = 1 if op == Op.XOR else 0
        for assignment in range(1 << arity):
            bits = [(assignment >> k) & 1 for k in range(arity)]
            if (sum(bits) & 1) == want:
                lines.append("".join(str(b) for b in bits) + " 1")
        return lines
    if op == Op.MUX:
        # fanins are (sel, d0, d1); output = d0 when sel = 0
        return ["01- 1", "1-1 1"]
    raise ValueError(f"cannot export op {op!r} to BLIF")


def circuit_to_blif(circuit: Circuit, model_name: Optional[str] = None) -> str:
    """Serialize a gate-level circuit as a BLIF model.

    Parameter inputs are listed as ordinary ``.inputs`` (BLIF has no notion of
    parameters) but carry a ``# --PARAM`` comment line, mirroring the VHDL
    annotation convention of the paper.
    """
    lines: List[str] = [f".model {model_name or circuit.name}"]
    inputs = [_signal_name(circuit, nid) for nid in circuit.input_ids()]
    params = [_signal_name(circuit, nid) for nid in circuit.param_ids()]
    outputs = list(circuit.outputs.keys())

    if params:
        lines.append("# --PARAM inputs: " + " ".join(params))
    lines.append(".inputs " + " ".join(inputs + params) if (inputs or params) else ".inputs")
    lines.append(".outputs " + " ".join(o.replace(" ", "_") for o in outputs))

    for nid, op in enumerate(circuit.ops):
        if op in Op.LEAVES:
            if op == Op.CONST0:
                lines.append(f".names {_signal_name(circuit, nid)}")
            elif op == Op.CONST1:
                lines.append(f".names {_signal_name(circuit, nid)}")
                lines.append("1")
            continue
        fanin_names = [_signal_name(circuit, f) for f in circuit.fanins[nid]]
        out_name = _signal_name(circuit, nid)
        lines.append(".names " + " ".join(fanin_names + [out_name]))
        lines.extend(_gate_cover_lines(op, len(fanin_names)))

    # Alias primary outputs onto their driving signals.
    for out_name, nid in circuit.outputs.items():
        driver = _signal_name(circuit, nid)
        safe_out = out_name.replace(" ", "_")
        if driver != safe_out:
            lines.append(f".names {driver} {safe_out}")
            lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _truth_table_cover(tt: TruthTable) -> List[str]:
    """ON-set cover rows of a truth table (one minterm per line)."""
    rows: List[str] = []
    for assignment in range(tt.num_rows):
        if tt.value(assignment):
            bits = "".join(str((assignment >> k) & 1) for k in range(tt.num_vars))
            rows.append(f"{bits} 1" if tt.num_vars else "1")
    if not rows and tt.num_vars == 0:
        return []
    return rows


def mapped_network_to_blif(
    network: MappedNetwork,
    model_name: Optional[str] = None,
    param_values: Optional[Dict[int, int]] = None,
) -> str:
    """Serialize a mapped network as a BLIF model of LUTs.

    TLUTs and TCONs require concrete parameter values (their configuration is
    not expressible in plain BLIF); supply ``param_values`` (source-circuit
    parameter node id -> 0/1) to export one specialization.  Purely static
    networks export without parameters.
    """
    tunable = any(n.kind in (NodeKind.TLUT, NodeKind.TCON) for n in network.nodes)
    if tunable and param_values is None:
        raise ValueError(
            "network contains TLUTs/TCONs; parameter values are required to export "
            "a specialization"
        )
    spec = network.specialize(dict(param_values or {}))

    def name_of(nid: int) -> str:
        node = network.nodes[nid]
        return (node.name or f"m{nid}").replace(" ", "_")

    lines = [f".model {model_name or network.source.name}_mapped"]
    inputs = [name_of(n) for n in network.input_node_ids()]
    inputs += [name_of(n) for n in network.param_node_ids()]
    lines.append(".inputs " + " ".join(inputs) if inputs else ".inputs")
    lines.append(".outputs " + " ".join(o.replace(" ", "_") for o in network.outputs))

    for nid, node in enumerate(network.nodes):
        out_name = name_of(nid)
        if node.kind == NodeKind.CONST0:
            lines.append(f".names {out_name}")
        elif node.kind == NodeKind.CONST1:
            lines.append(f".names {out_name}")
            lines.append("1")
        elif node.kind in (NodeKind.LUT, NodeKind.TLUT):
            config = spec.lut_configs[nid]
            fanins = [name_of(i) for i in node.inputs]
            lines.append(".names " + " ".join(fanins + [out_name]))
            lines.extend(_truth_table_cover(config))
        elif node.kind == NodeKind.TCON:
            kind, var = spec.tcon_routes[nid]
            lines.append(f"# TCON {out_name}: routed to "
                         f"{'constant ' + kind[-1] if kind != 'var' else name_of(node.inputs[var])}")
            if kind == "const0":
                lines.append(f".names {out_name}")
            elif kind == "const1":
                lines.append(f".names {out_name}")
                lines.append("1")
            else:
                lines.append(f".names {name_of(node.inputs[var])} {out_name}")
                lines.append("1 1")

    for out_name, nid in network.outputs.items():
        driver = name_of(nid)
        safe_out = out_name.replace(" ", "_")
        if driver != safe_out:
            lines.append(f".names {driver} {safe_out}")
            lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
