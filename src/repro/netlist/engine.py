"""Compiled bit-parallel simulation engine.

The legacy simulator (:func:`repro.netlist.simulate.simulate_patterns`)
walks the netlist node by node, dispatching every gate through a dict of
Python callables operating on arbitrary-precision integers.  That is flexible
but slow: equivalence checking, PPC specialization and the word-level
test benches all pay the per-node interpreter overhead on every call.

:class:`CompiledCircuit` pays that overhead once, with two backends behind a
single ``simulate`` entry point:

* **straight-line backend** (narrow pattern vectors) -- compilation emits the
  circuit as one specialized Python function of big-integer bitwise
  expressions (``v17 = v3 & v9``, one statement per gate) and ``exec``\\ s it
  once; evaluation is then a single call with no dict dispatch, no per-gate
  function calls and no interpreter loop.  This is the fast path for the
  SCG's single-pattern parameter evaluation and ordinary test benches.
* **bit-plane backend** (wide pattern vectors) -- compilation levelizes the
  circuit and groups same-level nodes by ``(op, arity)`` into flat NumPy
  index batches; evaluation runs a short schedule of vectorized ``uint64``
  bit-plane operations (64 patterns per lane) whose cost is memory bandwidth
  rather than interpreter overhead.

Because every gate of the library is bitwise, pattern ``p`` of any node
depends only on pattern ``p`` of its fanins, so both backends are
bit-identical to the legacy evaluator for every circuit and pattern count.

The compiled artifact is cached on the circuit object (circuits are
append-only, so a node-count check suffices for invalidation) and reused by
every caller: repeated simulation of the same circuit -- the common case in
equivalence checking and in the SCG's parameter evaluation -- only pays the
schedule execution.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .circuit import Circuit, Op

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "num_plane_words",
    "pack_int_plane",
    "unpack_int_plane",
    "pack_bit_array",
    "unpack_bit_array",
    "pack_bits_to_int",
    "unpack_int_to_bits",
]

_WORD_BITS = 64
_U64 = np.dtype("<u8")
_ALL_ONES = 0xFFFFFFFFFFFFFFFF



def num_plane_words(num_patterns: int) -> int:
    """Number of 64-bit words needed to hold ``num_patterns`` packed patterns."""
    return max(1, (num_patterns + _WORD_BITS - 1) // _WORD_BITS)


def pack_int_plane(value: int, num_words: int) -> np.ndarray:
    """Convert a packed-pattern Python integer into a little-endian uint64 plane."""
    return np.frombuffer(int(value).to_bytes(num_words * 8, "little"), dtype=_U64).copy()


def unpack_int_plane(plane: np.ndarray, num_patterns: int) -> int:
    """Convert a uint64 bit-plane back into a packed-pattern Python integer."""
    raw = np.ascontiguousarray(plane, dtype=_U64).tobytes()
    return int.from_bytes(raw, "little") & ((1 << num_patterns) - 1)


def pack_bit_array(bits: np.ndarray, num_words: int) -> np.ndarray:
    """Pack a per-pattern 0/1 array (uint8) into a uint64 bit-plane."""
    packed = np.packbits(bits.astype(np.uint8, copy=False), bitorder="little")
    raw = packed.tobytes()
    pad = num_words * 8 - len(raw)
    if pad > 0:
        raw += b"\x00" * pad
    return np.frombuffer(raw, dtype=_U64).copy()


def unpack_bit_array(plane: np.ndarray, num_patterns: int) -> np.ndarray:
    """Unpack a uint64 bit-plane into a per-pattern 0/1 uint8 array."""
    raw = np.ascontiguousarray(plane, dtype=_U64).tobytes()
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:num_patterns]


def pack_bits_to_int(bits: np.ndarray) -> int:
    """Pack a per-pattern 0/1 array into a packed-pattern Python integer."""
    raw = np.packbits(bits.astype(np.uint8, copy=False), bitorder="little").tobytes()
    return int.from_bytes(raw, "little")


def unpack_int_to_bits(value: int, num_patterns: int) -> np.ndarray:
    """Unpack a packed-pattern Python integer into a per-pattern 0/1 uint8 array."""
    num_bytes = (num_patterns + 7) // 8
    raw = int(value).to_bytes(num_bytes, "little")
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")[
        :num_patterns
    ]


class CompiledCircuit:
    """A circuit levelized into a flat schedule of vectorized gate batches.

    The schedule is a list of ``(op, node_index_array, fanin_index_matrix)``
    entries; executing it fills a ``(num_nodes, num_words)`` uint64 value
    matrix level by level.  Within a level no node feeds another (levels are
    ``1 + max(fanin levels)``), so each batch evaluates with pure array ops.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.num_nodes = len(circuit.ops)
        ops = circuit.ops
        fanins = circuit.fanins

        self.input_ids: List[int] = []
        self.param_ids: List[int] = []
        self.const0_ids: List[int] = []
        self.const1_ids: List[int] = []

        level = [0] * self.num_nodes
        groups: Dict[Tuple[int, str, int], List[int]] = {}
        for nid, op in enumerate(ops):
            if op == Op.INPUT:
                self.input_ids.append(nid)
            elif op == Op.PARAM:
                self.param_ids.append(nid)
            elif op == Op.CONST0:
                self.const0_ids.append(nid)
            elif op == Op.CONST1:
                self.const1_ids.append(nid)
            else:
                fins = fanins[nid]
                level[nid] = 1 + max((level[f] for f in fins), default=0)
                groups.setdefault((level[nid], op, len(fins)), []).append(nid)

        #: flat evaluation schedule: (op, node ids, fanin id matrix)
        self.schedule: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for (_, op, _), nodes in sorted(groups.items()):
            idx = np.asarray(nodes, dtype=np.int64)
            fmat = np.asarray([fanins[nid] for nid in nodes], dtype=np.int64)
            self.schedule.append((op, idx, fmat))

        self._straightline = None  # lazily generated big-integer evaluator
        num_gates = sum(len(idx) for _, idx, _ in self.schedule)
        self.avg_batch_size = num_gates / len(self.schedule) if self.schedule else 0.0

    # -- straight-line backend -------------------------------------------------

    def _codegen(self):
        """Emit the circuit as one specialized Python function and compile it.

        Every gate becomes a single bitwise statement over masked big
        integers, so one call evaluates the whole netlist with no dispatch.
        Masking matches the legacy evaluator: leaves and inverting gates are
        masked explicitly; AND/OR/XOR/MUX of masked operands stay masked.
        """
        ops = self.circuit.ops
        fanins = self.circuit.fanins
        lines = ["def _run(inputs, params, mask):"]
        emit = lines.append
        for nid, op in enumerate(ops):
            if op == Op.INPUT:
                emit(f" v{nid} = inputs.get({nid}, 0) & mask")
            elif op == Op.PARAM:
                emit(f" v{nid} = params.get({nid}, 0) & mask")
            elif op == Op.CONST0:
                emit(f" v{nid} = 0")
            elif op == Op.CONST1:
                emit(f" v{nid} = mask")
            else:
                args = [f"v{f}" for f in fanins[nid]]
                if op == Op.AND:
                    emit(f" v{nid} = {' & '.join(args)}")
                elif op == Op.OR:
                    emit(f" v{nid} = {' | '.join(args)}")
                elif op == Op.XOR:
                    emit(f" v{nid} = {' ^ '.join(args)}")
                elif op == Op.NAND:
                    emit(f" v{nid} = ~({' & '.join(args)}) & mask")
                elif op == Op.NOR:
                    emit(f" v{nid} = ~({' | '.join(args)}) & mask")
                elif op == Op.XNOR:
                    emit(f" v{nid} = ~({' ^ '.join(args)}) & mask")
                elif op == Op.NOT:
                    emit(f" v{nid} = ~{args[0]} & mask")
                elif op == Op.BUF:
                    emit(f" v{nid} = {args[0]}")
                elif op == Op.MUX:
                    s, d0, d1 = args
                    emit(f" v{nid} = (~{s} & {d0}) | ({s} & {d1})")
                else:  # pragma: no cover - Op.ALL is exhaustive
                    raise ValueError(f"op {op!r} is not an evaluatable gate")
        emit(" return [%s]" % ",".join(f"v{i}" for i in range(self.num_nodes)))
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from node ids only
        return namespace["_run"]

    def simulate_values(
        self,
        input_patterns: Mapping[int, int],
        num_patterns: int,
        param_patterns: Optional[Mapping[int, int]] = None,
    ) -> List[int]:
        """Packed value of every node (straight-line backend).

        CPython big-integer bitwise ops already run word-parallel C loops, so
        the generated straight-line function beats the batched NumPy plane
        backend at every pattern count we measured (the gather/copy cost of
        ``values[fanin_matrix]`` dominates); see PERFORMANCE.md.  The plane
        backend stays available through :meth:`eval_planes` for bit-plane
        pipelines and future offload targets.
        """
        if self._straightline is None:
            self._straightline = self._codegen()
        mask = (1 << num_patterns) - 1
        return self._straightline(input_patterns, param_patterns or {}, mask)

    def simulate_planes(
        self,
        input_patterns: Mapping[int, int],
        num_patterns: int,
        param_patterns: Optional[Mapping[int, int]] = None,
    ) -> List[int]:
        """Packed value of every node via the vectorized bit-plane backend."""
        num_words = num_plane_words(num_patterns)
        planes = self.build_planes(input_patterns, num_patterns, param_patterns)
        values = self.eval_planes(planes, num_words)
        mask = (1 << num_patterns) - 1
        row_bytes = num_words * 8
        raw = values.tobytes()
        return [
            int.from_bytes(raw[i * row_bytes : (i + 1) * row_bytes], "little") & mask
            for i in range(self.num_nodes)
        ]

    # -- plane-level evaluation ------------------------------------------------

    def eval_planes(
        self, planes: Mapping[int, np.ndarray], num_words: int
    ) -> np.ndarray:
        """Evaluate the schedule; returns the (num_nodes, num_words) value matrix.

        ``planes`` assigns uint64 bit-planes to input/param node ids; missing
        leaves default to all-zero (matching an unprogrammed settings
        register).  Bits beyond the caller's pattern count are unspecified --
        mask them when unpacking.
        """
        values = np.zeros((self.num_nodes, num_words), dtype=_U64)
        if self.const1_ids:
            values[self.const1_ids] = _ALL_ONES
        for nid, plane in planes.items():
            values[nid] = plane
        for op, idx, fmat in self.schedule:
            fv = values[fmat]  # (batch, arity, words)
            if op == Op.AND:
                out = np.bitwise_and.reduce(fv, axis=1)
            elif op == Op.OR:
                out = np.bitwise_or.reduce(fv, axis=1)
            elif op == Op.XOR:
                out = np.bitwise_xor.reduce(fv, axis=1)
            elif op == Op.NAND:
                out = ~np.bitwise_and.reduce(fv, axis=1)
            elif op == Op.NOR:
                out = ~np.bitwise_or.reduce(fv, axis=1)
            elif op == Op.XNOR:
                out = ~np.bitwise_xor.reduce(fv, axis=1)
            elif op == Op.NOT:
                out = ~fv[:, 0]
            elif op == Op.BUF:
                out = fv[:, 0]
            elif op == Op.MUX:
                sel = fv[:, 0]
                out = (~sel & fv[:, 1]) | (sel & fv[:, 2])
            else:  # pragma: no cover - schedule only contains gate ops
                raise ValueError(f"op {op!r} is not an evaluatable gate")
            values[idx] = out
        return values

    def build_planes(
        self,
        input_patterns: Mapping[int, int],
        num_patterns: int,
        param_patterns: Optional[Mapping[int, int]] = None,
    ) -> Dict[int, np.ndarray]:
        """Convert packed-integer stimulus into uint64 bit-planes."""
        mask = (1 << num_patterns) - 1
        num_words = num_plane_words(num_patterns)
        planes: Dict[int, np.ndarray] = {}
        for nid in self.input_ids:
            v = input_patterns.get(nid, 0) & mask
            if v:
                planes[nid] = pack_int_plane(v, num_words)
        if param_patterns:
            for nid in self.param_ids:
                v = param_patterns.get(nid, 0) & mask
                if v:
                    planes[nid] = pack_int_plane(v, num_words)
        return planes

    # -- packed-integer API (drop-in for the legacy simulator) ------------------

    def simulate(
        self,
        input_patterns: Mapping[int, int],
        num_patterns: int,
        param_patterns: Optional[Mapping[int, int]] = None,
    ) -> Dict[int, int]:
        """Bit-identical replacement for the legacy ``simulate_patterns``."""
        values = self.simulate_values(input_patterns, num_patterns, param_patterns)
        return dict(enumerate(values))


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile ``circuit`` (or return the cached artifact if still valid).

    Circuits are append-only -- nodes are never rewritten in place -- so the
    cached schedule stays valid as long as the node count is unchanged.
    """
    cached = circuit.__dict__.get("_compiled_engine")
    if cached is not None and cached.num_nodes == len(circuit.ops):
        return cached
    engine = CompiledCircuit(circuit)
    circuit.__dict__["_compiled_engine"] = engine
    return engine
