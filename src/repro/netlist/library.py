"""Gate library: local semantics of every :class:`~repro.netlist.circuit.Op`.

The library provides two views of each gate:

* a *bit-parallel evaluator* operating on Python integers used as packed
  vectors of simulation patterns (arbitrarily wide, one bit per pattern), and
* a *truth table builder* used by the technology mappers when collapsing a
  cone of gates into a single cut function.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Dict, Sequence

from .boolean import TruthTable, const_tt
from .circuit import Op

__all__ = ["GATE_EVAL", "eval_gate", "gate_truth_table", "GATE_COST"]


def _and(args: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a & b, args) & mask


def _or(args: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a | b, args) & mask


def _xor(args: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a ^ b, args) & mask


def _not(args: Sequence[int], mask: int) -> int:
    return ~args[0] & mask


def _buf(args: Sequence[int], mask: int) -> int:
    return args[0] & mask


def _nand(args: Sequence[int], mask: int) -> int:
    return ~_and(args, mask) & mask


def _nor(args: Sequence[int], mask: int) -> int:
    return ~_or(args, mask) & mask


def _xnor(args: Sequence[int], mask: int) -> int:
    return ~_xor(args, mask) & mask


def _mux(args: Sequence[int], mask: int) -> int:
    sel, d0, d1 = args
    return ((~sel & d0) | (sel & d1)) & mask


#: Bit-parallel evaluators: ``f(fanin_values, mask) -> value``.
GATE_EVAL: Dict[str, Callable[[Sequence[int], int], int]] = {
    Op.BUF: _buf,
    Op.NOT: _not,
    Op.AND: _and,
    Op.OR: _or,
    Op.XOR: _xor,
    Op.NAND: _nand,
    Op.NOR: _nor,
    Op.XNOR: _xnor,
    Op.MUX: _mux,
}

#: Unit-area cost per gate kind (used by synthesis statistics only; the real
#: area metric of the flow is the post-mapping LUT count).
GATE_COST: Dict[str, int] = {
    Op.BUF: 0,
    Op.NOT: 0,
    Op.AND: 1,
    Op.OR: 1,
    Op.XOR: 1,
    Op.NAND: 1,
    Op.NOR: 1,
    Op.XNOR: 1,
    Op.MUX: 1,
}


def eval_gate(op: str, args: Sequence[int], mask: int) -> int:
    """Evaluate a gate bit-parallel over packed pattern vectors."""
    try:
        fn = GATE_EVAL[op]
    except KeyError:
        raise ValueError(f"op {op!r} is not an evaluatable gate") from None
    return fn(args, mask)


def gate_truth_table(op: str, fanin_tts: Sequence[TruthTable]) -> TruthTable:
    """Compose fanin truth tables through a gate.

    All fanin tables must be expressed over the same variable set; the result
    is over that set as well.  This is the core operation of cut-function
    computation in the technology mappers.
    """
    if not fanin_tts:
        raise ValueError("gate needs at least one fanin truth table")
    num_vars = fanin_tts[0].num_vars
    for tt in fanin_tts:
        if tt.num_vars != num_vars:
            raise ValueError("fanin truth tables must share a variable set")
    mask = (1 << (1 << num_vars)) - 1
    bits = eval_gate(op, [tt.bits for tt in fanin_tts], mask)
    return TruthTable(num_vars, bits)


def const_truth_table(op: str, num_vars: int) -> TruthTable:
    """Truth table of a constant node over ``num_vars`` variables."""
    if op == Op.CONST0:
        return const_tt(0, num_vars)
    if op == Op.CONST1:
        return const_tt(1, num_vars)
    raise ValueError(f"{op!r} is not a constant op")
