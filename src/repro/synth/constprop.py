"""Symbolic constant propagation for parameterized designs.

Dynamic Circuit Specialization treats the ``--PARAM``-annotated inputs as
constants: for every concrete parameter value the logic is re-optimized and
the FPGA is micro-reconfigured with the specialized result.  This module
implements the *specialization by constant propagation* view of that flow at
the gate level.  It is used

* by the tests to verify that TLUT/TCON based specialization is functionally
  equivalent to full constant propagation, and
* by the resource accounting of the conventional-vs-parameterized comparison
  (the "optimization for constant parameters" of Section III of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..netlist.circuit import Circuit, Op
from .optimize import OptimizeReport, optimize

__all__ = [
    "param_bit_values",
    "specialize",
    "parameter_cone_nodes",
    "classify_nodes",
]


def param_bit_values(circuit: Circuit, param_words: Mapping[str, int]) -> Dict[int, int]:
    """Expand word-level parameter values into per-parameter-node bit values.

    ``param_words`` maps a parameter bus name (e.g. ``"coeff"``) to an
    unsigned integer; bit ``k`` of the word is assigned to the parameter node
    named ``coeff[k]``.  A scalar parameter named ``"p"`` can be given
    directly as ``{"p": 0/1}``.
    """
    values: Dict[int, int] = {}
    by_name = {circuit.names.get(nid, f"param{nid}"): nid for nid in circuit.param_ids()}
    consumed = set()
    for name, word in param_words.items():
        matched = False
        for pname, nid in by_name.items():
            if pname == name:
                values[nid] = 1 if word else 0
                consumed.add(pname)
                matched = True
            elif pname.startswith(name + "[") and pname.endswith("]"):
                bit = int(pname[len(name) + 1 : -1])
                values[nid] = (int(word) >> bit) & 1
                consumed.add(pname)
                matched = True
        if not matched:
            raise KeyError(f"no parameter named {name!r} in circuit {circuit.name!r}")
    return values


def specialize(
    circuit: Circuit,
    param_words: Mapping[str, int],
    keep_params_as_inputs: bool = False,
) -> Tuple[Circuit, OptimizeReport]:
    """Produce the circuit specialized for concrete parameter values.

    The parameter inputs are replaced by constants and the logic is
    re-optimized.  This is the "gold standard" the parameterized
    configuration must match functionally: evaluating the TLUT Boolean
    functions of the PPC for the same parameter values and simulating the
    mapped netlist must give identical input/output behaviour.

    When ``keep_params_as_inputs`` is true the parameter nodes survive as
    (unused) inputs so the specialized circuit keeps the original interface.
    """
    values = param_bit_values(circuit, param_words)
    specialized, report = optimize(circuit, param_values=values)
    if keep_params_as_inputs:
        return specialized, report
    return specialized, report


def parameter_cone_nodes(circuit: Circuit) -> List[int]:
    """Node ids whose value depends (transitively) on at least one parameter.

    These are the nodes whose configuration may need to change when parameter
    values change -- the candidates for TLUT/TCON implementation.
    """
    depends = [False] * len(circuit)
    for nid, op in enumerate(circuit.ops):
        if op == Op.PARAM:
            depends[nid] = True
        elif op not in Op.LEAVES:
            depends[nid] = any(depends[f] for f in circuit.fanins[nid])
    return [nid for nid, d in enumerate(depends) if d]


def classify_nodes(circuit: Circuit) -> Dict[str, List[int]]:
    """Partition gate nodes into static / parameter-dependent classes.

    Returns a dict with keys ``"static"`` (gates never affected by parameter
    changes -- these become ordinary LUT logic in the Template Configuration)
    and ``"tunable"`` (gates inside a parameter cone -- the material the
    TCONMAP mapper turns into TLUTs and TCONs).
    """
    tunable = set(parameter_cone_nodes(circuit))
    static: List[int] = []
    tun: List[int] = []
    for nid in circuit.gate_ids():
        if nid in tunable:
            tun.append(nid)
        else:
            static.append(nid)
    return {"static": static, "tunable": tun}
