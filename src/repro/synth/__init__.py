"""Logic synthesis and parameter-aware optimization (ABC-style passes)."""

from .constprop import (
    classify_nodes,
    param_bit_values,
    parameter_cone_nodes,
    specialize,
)
from .optimize import OptimizeReport, RewriteResult, optimize, rewrite, sweep
from .synthesis import SynthesisResult, synthesize

__all__ = [
    "classify_nodes",
    "param_bit_values",
    "parameter_cone_nodes",
    "specialize",
    "OptimizeReport",
    "RewriteResult",
    "optimize",
    "rewrite",
    "sweep",
    "SynthesisResult",
    "synthesize",
]
