"""Synthesis front-end driver.

In the paper's flow the VHDL description of the Processing Element is
synthesized with Quartus II and then optimized with ABC before technology
mapping.  Our structural HDL builder already elaborates directly to gates,
so "synthesis" here is the packaging step: validate the elaborated netlist,
run the ABC-style optimizer and report statistics.  The result object is the
hand-off point to the technology mappers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..netlist.circuit import Circuit
from ..netlist.hdl import Design
from .constprop import classify_nodes
from .optimize import OptimizeReport, optimize

__all__ = ["SynthesisResult", "synthesize"]


@dataclass
class SynthesisResult:
    """Output of the synthesis front-end."""

    circuit: Circuit
    report: OptimizeReport
    #: gate ids inside / outside parameter cones (see ``classify_nodes``)
    node_classes: Dict[str, list]

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates()

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    @property
    def num_tunable_gates(self) -> int:
        return len(self.node_classes["tunable"])

    @property
    def num_static_gates(self) -> int:
        return len(self.node_classes["static"])

    def summary(self) -> Dict[str, int]:
        """Key statistics as a plain dict (used by reports and benches)."""
        return {
            "gates": self.num_gates,
            "depth": self.depth,
            "inputs": len(self.circuit.input_ids()),
            "params": len(self.circuit.param_ids()),
            "outputs": len(self.circuit.outputs),
            "tunable_gates": self.num_tunable_gates,
            "static_gates": self.num_static_gates,
        }


def synthesize(design, optimize_logic: bool = True) -> SynthesisResult:
    """Run the synthesis front-end on a :class:`Design` or raw :class:`Circuit`.

    Parameters
    ----------
    design:
        Either a :class:`~repro.netlist.hdl.Design` (its circuit is used) or
        a :class:`~repro.netlist.circuit.Circuit` directly.
    optimize_logic:
        Run the ABC-style optimizer (structural hashing, constant folding,
        sweeping).  Disable only for white-box tests of later stages.
    """
    circuit = design.circuit if isinstance(design, Design) else design
    circuit.validate()
    if optimize_logic:
        optimized, report = optimize(circuit)
    else:
        optimized = circuit.clone()
        report = OptimizeReport(
            nodes_before=len(circuit),
            nodes_after=len(circuit),
            gates_before=circuit.num_gates(),
            gates_after=circuit.num_gates(),
        )
    optimized.validate()
    return SynthesisResult(
        circuit=optimized,
        report=report,
        node_classes=classify_nodes(optimized),
    )
