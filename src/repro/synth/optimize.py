"""ABC-style logic optimization passes.

The paper pushes the Processing Element description through Quartus synthesis
followed by logic optimization with the ABC tool before handing it to
TCONMAP.  This module reproduces the relevant subset of that step: structural
hashing, constant propagation with Boolean identities, buffer collapsing and
dead-node sweeping, iterated to a fixpoint.

Every pass is implemented as a rewrite that produces a *new* circuit plus a
mapping from old node ids to new node ids; passes never mutate their input.
This keeps the topological-order invariant of
:class:`~repro.netlist.circuit.Circuit` intact and makes the passes easy to
compose and to test in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit, Op

__all__ = ["RewriteResult", "rewrite", "sweep", "optimize", "OptimizeReport"]


@dataclass
class RewriteResult:
    """Outcome of a rewrite pass: the new circuit and the old->new node map."""

    circuit: Circuit
    node_map: Dict[int, int]


@dataclass
class OptimizeReport:
    """Summary of an :func:`optimize` run."""

    iterations: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    gates_before: int = 0
    gates_after: int = 0
    passes: List[str] = field(default_factory=list)

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by optimization."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before


# ---------------------------------------------------------------------------
# Core rewriting pass: constant folding + identity simplification + strash
# ---------------------------------------------------------------------------

def _resolve_const(circuit: Circuit, nid: int) -> Optional[int]:
    """Return 0/1 if the (new-circuit) node is a constant, else None."""
    op = circuit.ops[nid]
    if op == Op.CONST0:
        return 0
    if op == Op.CONST1:
        return 1
    return None


def _simplify_variadic(
    new: Circuit, op: str, fanins: Tuple[int, ...]
) -> int:
    """Simplify an AND/OR/XOR (and negated forms) gate over already-rewritten fanins."""
    negate = op in (Op.NAND, Op.NOR, Op.XNOR)
    base = {Op.NAND: Op.AND, Op.NOR: Op.OR, Op.XNOR: Op.XOR}.get(op, op)

    consts = []
    operands: List[int] = []
    seen = set()
    for f in fanins:
        cv = _resolve_const(new, f)
        if cv is not None:
            consts.append(cv)
            continue
        if base in (Op.AND, Op.OR):
            if f in seen:
                continue  # x & x = x ; x | x = x
            seen.add(f)
            operands.append(f)
        else:  # XOR: pairs cancel
            if f in seen:
                seen.remove(f)
                operands.remove(f)
            else:
                seen.add(f)
                operands.append(f)

    if base == Op.AND:
        if 0 in consts:
            result = new.const(0)
            return new.g_not(result) if negate else result
        # 1s are identity elements: drop them.
    elif base == Op.OR:
        if 1 in consts:
            result = new.const(1)
            return new.g_not(result) if negate else result
    else:  # XOR
        parity = sum(consts) & 1
        if parity:
            # fold the constant-1 parity into a final inversion
            negate = not negate

    if not operands:
        if base == Op.AND:
            value = 1
        elif base == Op.OR:
            value = 0
        else:
            value = 0
        result = new.const(value)
    elif len(operands) == 1:
        result = operands[0]
    else:
        result = new.gate(base, *operands)

    if negate:
        cv = _resolve_const(new, result)
        if cv is not None:
            return new.const(1 - cv)
        return new.g_not(result)
    return result


def _simplify_gate(new: Circuit, op: str, fanins: Tuple[int, ...]) -> int:
    """Create a simplified version of a gate in the new circuit."""
    if op == Op.BUF:
        return fanins[0]

    if op == Op.NOT:
        (a,) = fanins
        cv = _resolve_const(new, a)
        if cv is not None:
            return new.const(1 - cv)
        if new.ops[a] == Op.NOT:
            return new.fanins[a][0]  # double negation
        return new.g_not(a)

    if op == Op.MUX:
        sel, d0, d1 = fanins
        sv = _resolve_const(new, sel)
        if sv is not None:
            return d1 if sv else d0
        if d0 == d1:
            return d0
        c0, c1 = _resolve_const(new, d0), _resolve_const(new, d1)
        if c0 == 0 and c1 == 1:
            return sel
        if c0 == 1 and c1 == 0:
            return _simplify_gate(new, Op.NOT, (sel,))
        if c0 == 0:
            return _simplify_variadic(new, Op.AND, (sel, d1))
        if c1 == 1:
            return _simplify_variadic(new, Op.OR, (sel, d0))
        if c0 == 1:
            return _simplify_variadic(new, Op.OR, (_simplify_gate(new, Op.NOT, (sel,)), d1))
        if c1 == 0:
            return _simplify_variadic(new, Op.AND, (_simplify_gate(new, Op.NOT, (sel,)), d0))
        return new.g_mux(sel, d0, d1)

    return _simplify_variadic(new, op, fanins)


def rewrite(
    circuit: Circuit, param_values: Optional[Dict[int, int]] = None
) -> RewriteResult:
    """One pass of constant folding, identity simplification and strashing.

    Parameters
    ----------
    circuit:
        Input circuit (not modified).
    param_values:
        Optional mapping from *parameter node id* to a constant 0/1 value.
        Supplying it turns this pass into the specialization rewriting used
        by the SCG: parameter inputs are replaced by constants and the logic
        collapses accordingly (symbolic constant propagation).
    """
    param_values = param_values or {}
    new = Circuit(name=circuit.name, strash=True)
    node_map: Dict[int, int] = {}

    for nid, op in enumerate(circuit.ops):
        name = circuit.names.get(nid)
        if op == Op.INPUT:
            node_map[nid] = new.add_input(name or f"in{nid}")
        elif op == Op.PARAM:
            if nid in param_values:
                node_map[nid] = new.const(1 if param_values[nid] else 0)
            else:
                node_map[nid] = new.add_param(name or f"param{nid}")
        elif op == Op.CONST0:
            node_map[nid] = new.const(0)
        elif op == Op.CONST1:
            node_map[nid] = new.const(1)
        else:
            fins = tuple(node_map[f] for f in circuit.fanins[nid])
            node_map[nid] = _simplify_gate(new, op, fins)

    for out_name, out_nid in circuit.outputs.items():
        new.add_output(out_name, node_map[out_nid])
    return RewriteResult(new, node_map)


# ---------------------------------------------------------------------------
# Dead-node sweep
# ---------------------------------------------------------------------------

def sweep(circuit: Circuit, keep_dangling_inputs: bool = True) -> RewriteResult:
    """Remove nodes not reachable from any primary output.

    Primary inputs and parameters are preserved by default (their presence
    defines the interface of the design) even if they end up unused -- this
    matters for the PE, whose settings-register bits may be untouched by a
    particular function yet must remain part of the port list.
    """
    live = set(circuit.transitive_fanin(circuit.outputs.values()))
    new = Circuit(name=circuit.name)
    node_map: Dict[int, int] = {}
    for nid, op in enumerate(circuit.ops):
        keep = nid in live or (keep_dangling_inputs and op in (Op.INPUT, Op.PARAM))
        if not keep:
            continue
        name = circuit.names.get(nid)
        if op == Op.INPUT:
            node_map[nid] = new.add_input(name or f"in{nid}")
        elif op == Op.PARAM:
            node_map[nid] = new.add_param(name or f"param{nid}")
        elif op == Op.CONST0:
            node_map[nid] = new.const(0)
        elif op == Op.CONST1:
            node_map[nid] = new.const(1)
        else:
            fins = tuple(node_map[f] for f in circuit.fanins[nid])
            node_map[nid] = new._new_node(op, fins, name)
    for out_name, out_nid in circuit.outputs.items():
        new.add_output(out_name, node_map[out_nid])
    return RewriteResult(new, node_map)


# ---------------------------------------------------------------------------
# Fixpoint driver
# ---------------------------------------------------------------------------

def optimize(
    circuit: Circuit,
    param_values: Optional[Dict[int, int]] = None,
    max_iterations: int = 8,
) -> Tuple[Circuit, OptimizeReport]:
    """Iterate rewriting and sweeping until the circuit stops shrinking.

    Returns the optimized circuit and an :class:`OptimizeReport`.
    """
    report = OptimizeReport(
        nodes_before=len(circuit),
        gates_before=circuit.num_gates(),
    )
    current = circuit
    params = param_values
    for it in range(max_iterations):
        result = rewrite(current, params)
        params = None  # parameters are substituted only on the first pass
        swept = sweep(result.circuit)
        report.passes.extend(["rewrite", "sweep"])
        report.iterations = it + 1
        if len(swept.circuit) >= len(current) and it > 0:
            current = swept.circuit
            break
        shrunk = len(swept.circuit) < len(current)
        current = swept.circuit
        if not shrunk and it > 0:
            break
    report.nodes_after = len(current)
    report.gates_after = current.num_gates()
    return current, report
