"""Flat route forest: every net's route tree in one set of int32 arrays.

PR 4's timing feedback loop walked the routers' per-net ``NetRoute`` trees
with Python dict work -- per-node tuple accumulation in
``timing/delays.py`` and ``Dict[(net, sink), float]`` criticality maps
probed per connection.  The :class:`RouteForest` removes those dicts from
the PAR/timing hot path: the union of all route trees is stored as a flat
parent-pointer forest (CSR-style, mirroring the router's search view), so

* routed-delay extraction is a handful of NumPy gathers -- one
  depth-levelized scan ``acc[i] = acc[parent[i]] + delay_ns[node[i]]``
  accumulates delay (and wire / pin element counts) for every tree node of
  every net at once, and per-connection delays fall out as
  ``acc[conn_sink_pos]``;
* criticalities flow back as one flat ``conn_crit`` vector indexed by
  connection id (see :class:`repro.timing.sta.CriticalityTracker`) instead
  of dict lookups keyed by ``(net, sink)`` tuples;
* route trees serialize into :class:`repro.par.cache.PaRCache` values
  (plain int lists), so reconfiguration experiments re-hydrate routes on a
  cache hit instead of re-routing.

Invariants (what every consumer may rely on, and ``validate()`` /
``tests/test_forest.py`` check):

* **Bit-identity with the dict walk.**  The per-level scan performs *the
  same float additions in the same order* as the legacy dict walk (each
  node's accumulated delay is one binary add ``acc[parent] + delay[node]``),
  so routed delays -- and therefore critical-path reports -- are
  bit-identical to the reference ``_walk_connections`` / ``_walk_bfs``.
* **Structural soundness.**  ``parent[i]`` is either ``-1`` (child of the
  net's SOURCE) or a position *in the same net's slice*; ``depth`` is
  exactly ``parent``-chain length, so sorting by depth levelizes the scan;
  every connection's ``conn_sink_pos`` points at a position whose RR node
  is the connection's sink.
* **Serialization round-trips.**  ``to_payload``/``from_payload`` (plain
  int lists, JSON-safe) reproduce an equal forest; corrupt payloads fail
  ``validate()`` rather than yielding wrong delays -- the property the
  cache's hydration fallback relies on.
* **Memoization is invisible.**  Fragment reuse is keyed on ``NetRoute``
  object identity and only ever skips re-flattening of *unchanged* nets;
  a memo hit never changes the assembled arrays.

Layout
------

Positions ``0..P-1`` hold every route-tree node except the net SOURCEs
(which contribute zero delay and live in ``net_source``):

* ``node[i]`` -- RR node id at forest position ``i``;
* ``parent[i]`` -- forest position of the node ``i`` is reached from
  (``-1`` when the parent is the net's SOURCE);
* ``depth[i]`` -- hops from the net's SOURCE (``>= 1``);
* ``net_node_ptr[n]:net_node_ptr[n+1]`` -- the position slice of net ``n``;
* ``net_ptr[n]:net_ptr[n+1]`` -- the connection slice of net ``n``;
* ``conn_net[c]`` / ``conn_sink[c]`` -- the ``(net id, sink RR node)``
  identity of connection ``c``;
* ``conn_sink_pos[c]`` -- forest position of the connection's sink node;
* ``conn_ptr[c]:conn_ptr[c+1]`` -- the positions connection ``c`` added to
  its tree, in attach-to-sink order (empty for a duplicate sink, and for
  every connection of a tree imported through the BFS fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fpga.routing_graph import RRNodeType

__all__ = ["RouteForest", "build_route_forest", "join_sorted"]


def join_sorted(sorted_keys: np.ndarray, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Positions of ``keys`` in ``sorted_keys``: ``(pos, hit)``.

    The one searchsorted-with-clamp join every flat-timing consumer uses
    to match ``(net, sink)`` connection keys (see
    :meth:`RouteForest.connection_keys` for the encoding): ``pos[i]`` is a
    valid index into ``sorted_keys`` and ``hit[i]`` is True exactly where
    ``sorted_keys[pos[i]] == keys[i]``.
    """
    if sorted_keys.size == 0 or keys.size == 0:
        return np.zeros(keys.size, dtype=np.int64), np.zeros(keys.size, dtype=bool)
    pos = np.searchsorted(sorted_keys, keys)
    pos = np.minimum(pos, sorted_keys.size - 1)
    return pos, sorted_keys[pos] == keys

#: Reserved fragment-cache key holding the last fully-assembled forest
#: (net id list, forest); net ids are ints, so no collision is possible.
_WHOLE_FOREST_KEY = "__forest__"


@dataclass
class RouteForest:
    """All route trees of one routing result, flattened (see module doc)."""

    num_rr_nodes: int
    node: np.ndarray          #: int32[P] RR node per forest position
    parent: np.ndarray        #: int32[P] parent position, -1 = net source
    depth: np.ndarray         #: int32[P] hops from the net source (>= 1)
    net_id: np.ndarray        #: int32[N] net ids, ascending
    net_source: np.ndarray    #: int32[N] SOURCE RR node per net
    net_node_ptr: np.ndarray  #: int32[N+1] position slice per net
    net_ptr: np.ndarray       #: int32[N+1] connection slice per net
    conn_net: np.ndarray      #: int32[C] net id per connection
    conn_sink: np.ndarray     #: int32[C] sink RR node per connection
    conn_sink_pos: np.ndarray  #: int32[C] forest position of the sink node
    conn_ptr: np.ndarray      #: int32[C+1] positions added per connection
    #: lazy (order, bounds, parent_safe, is_root) cache of the depth scan
    _levels: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def num_positions(self) -> int:
        """Total tree nodes across every net (the length of ``node``)."""
        return len(self.node)

    @property
    def num_nets(self) -> int:
        """Number of nets with a slice in the forest."""
        return len(self.net_id)

    @property
    def num_connections(self) -> int:
        """Total (net, sink) connections across every net."""
        return len(self.conn_net)

    # -- vectorized consumers ------------------------------------------------

    def connection_keys(self) -> np.ndarray:
        """Per-connection int64 key ``net_id * num_rr_nodes + sink_rr``."""
        return self.conn_net.astype(np.int64) * self.num_rr_nodes + self.conn_sink

    def wirelength(self, wire_mask: np.ndarray) -> int:
        """Total wire nodes used, summed over all trees (dups across nets count)."""
        return int(np.count_nonzero(wire_mask[self.node]))

    def _depth_levels(self):
        """Positions grouped by depth (parents always in earlier groups).

        Cached per forest: ``(order, bounds, parent_safe, is_root)`` where
        ``parent_safe`` / ``is_root`` are pre-gathered in ``order`` so the
        accumulation loop below runs three vector operations per level.
        """
        if self._levels is None:
            # Order within a level is irrelevant (parents sit at strictly
            # lower depths), so sort the narrowest dtype that fits: radix
            # on uint16 is ~12x faster than a stable int32 sort here.
            depth = self.depth
            if depth.size and int(depth.max()) < (1 << 16):
                depth = depth.astype(np.uint16)
            order = np.argsort(depth, kind="stable").astype(np.int64)
            bounds: List[Tuple[int, int]] = []
            if order.size:
                d = self.depth[order]
                starts = np.flatnonzero(np.diff(d, prepend=d[0] - 1))
                ends = np.append(starts[1:], order.size)
                bounds = [(int(s), int(e)) for s, e in zip(starts, ends)]
            p_ord = self.parent[order].astype(np.int64)
            self._levels = (order, bounds, np.maximum(p_ord, 0), p_ord < 0)
        return self._levels

    def _accumulate(self, vals: np.ndarray) -> np.ndarray:
        """Root-to-node accumulation ``acc[i] = acc[parent[i]] + vals[i]``.

        ``vals`` is ``(P, k)``; the scan runs one vector operation per tree
        depth level, performing exactly one binary float add per element --
        the same association as the legacy per-node dict walk, which keeps
        the accumulated delays bit-identical to it.
        """
        acc = np.zeros_like(vals)
        order, bounds, parent_safe, is_root = self._depth_levels()
        vals_ord = vals[order]
        for lo, hi in bounds:
            pa = acc[parent_safe[lo:hi]]
            pa[is_root[lo:hi]] = 0.0
            acc[order[lo:hi]] = pa + vals_ord[lo:hi]
        return acc

    def connection_delays(self, delay_ns: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Accumulated source-to-sink delay per connection.

        Returns ``(delay[C], ok[C])`` where ``ok`` is False for connections
        whose sink never made it into the forest (defensive; routed trees
        always contain their sinks).
        """
        P = self.num_positions
        vals = delay_ns[self.node].astype(np.float64)
        acc = self._accumulate(vals)
        ok = self.conn_sink_pos >= 0
        safe = np.maximum(self.conn_sink_pos, 0)
        out = acc[safe] if P else np.zeros(self.num_connections)
        return np.where(ok, out, 0.0), ok

    def connection_delay_elements(
        self, delay_ns: np.ndarray, is_wire: np.ndarray, is_pin: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-connection ``(delay, wires, pins, ok)`` in one scan."""
        P = self.num_positions
        nd = self.node
        vals = np.empty((P, 3), dtype=np.float64)
        if P:
            vals[:, 0] = delay_ns[nd]
            vals[:, 1] = is_wire[nd]
            vals[:, 2] = is_pin[nd]
        acc = self._accumulate(vals)
        ok = self.conn_sink_pos >= 0
        safe = np.maximum(self.conn_sink_pos, 0)
        if P:
            out = acc[safe]
            out[~ok] = 0.0
        else:
            out = np.zeros((self.num_connections, 3))
        return (
            out[:, 0],
            out[:, 1].astype(np.int32),
            out[:, 2].astype(np.int32),
            ok,
        )

    # -- NetRoute round trip -------------------------------------------------

    def to_net_routes(self) -> Dict[int, object]:
        """Rebuild per-net :class:`~repro.par.routing.NetRoute` trees.

        Node lists carry the forest's attach-to-sink segment order (route
        metrics are order-insensitive); connection lists are reconstructed
        exactly for forests built from the directed kernels' connections,
        and left ``None`` for trees imported through the BFS fallback.
        """
        from .routing import NetRoute

        routes: Dict[int, object] = {}
        node = self.node
        parent = self.parent
        for k in range(self.num_nets):
            nid = int(self.net_id[k])
            source = int(self.net_source[k])
            lo, hi = int(self.net_node_ptr[k]), int(self.net_node_ptr[k + 1])
            nodes = [source] + node[lo:hi].tolist()
            conns: List[Tuple[int, List[int], int]] = []
            from_conns = False
            for c in range(int(self.net_ptr[k]), int(self.net_ptr[k + 1])):
                s, e = int(self.conn_ptr[c]), int(self.conn_ptr[c + 1])
                sink = int(self.conn_sink[c])
                if e > s:
                    from_conns = True
                    path = node[s:e][::-1].tolist()  # back to sink-first
                    ap = int(parent[s])
                    attach = source if ap < 0 else int(node[ap])
                    conns.append((sink, path, attach))
                else:
                    conns.append((sink, [], sink))
            routes[nid] = NetRoute(nid, nodes, connections=conns if from_conns else None)
        return routes

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable dict (plain int lists, no pickled code)."""
        return {
            "num_rr_nodes": self.num_rr_nodes,
            "node": self.node.tolist(),
            "parent": self.parent.tolist(),
            "depth": self.depth.tolist(),
            "net_id": self.net_id.tolist(),
            "net_source": self.net_source.tolist(),
            "net_node_ptr": self.net_node_ptr.tolist(),
            "net_ptr": self.net_ptr.tolist(),
            "conn_net": self.conn_net.tolist(),
            "conn_sink": self.conn_sink.tolist(),
            "conn_sink_pos": self.conn_sink_pos.tolist(),
            "conn_ptr": self.conn_ptr.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RouteForest":
        """Inverse of :meth:`to_payload`; raises ``ValueError`` on corruption."""
        fields = (
            "node",
            "parent",
            "depth",
            "net_id",
            "net_source",
            "net_node_ptr",
            "net_ptr",
            "conn_net",
            "conn_sink",
            "conn_sink_pos",
            "conn_ptr",
        )
        try:
            arrays = {k: np.asarray(payload[k], dtype=np.int32) for k in fields}
            forest = cls(num_rr_nodes=int(payload["num_rr_nodes"]), **arrays)
        except (KeyError, TypeError, OverflowError) as exc:
            raise ValueError(f"corrupt route-forest payload: {exc}") from exc
        forest.validate()
        return forest

    def validate(self) -> None:
        """Structural consistency checks (used on cache re-hydration)."""
        P, N, C = self.num_positions, self.num_nets, self.num_connections
        if len(self.parent) != P or len(self.depth) != P:
            raise ValueError("route forest: position arrays disagree on length")
        if len(self.net_source) != N or len(self.net_node_ptr) != N + 1:
            raise ValueError("route forest: net arrays disagree on length")
        if len(self.net_ptr) != N + 1 or len(self.conn_ptr) != C + 1:
            raise ValueError("route forest: pointer arrays disagree on length")
        if len(self.conn_sink) != C or len(self.conn_sink_pos) != C:
            raise ValueError("route forest: connection arrays disagree on length")
        if P:
            if int(self.net_node_ptr[-1]) != P or int(self.conn_ptr[-1]) > P:
                raise ValueError("route forest: pointer arrays out of range")
            if int(self.parent.max()) >= P or int(self.parent.min()) < -1:
                raise ValueError("route forest: parent positions out of range")
            if C and (
                int(self.conn_sink_pos.max()) >= P
                or int(self.conn_sink_pos.min()) < -1
            ):
                raise ValueError("route forest: sink positions out of range")
            if int(self.node.max()) >= self.num_rr_nodes or int(self.node.min()) < 0:
                raise ValueError("route forest: RR node ids out of range")
            if int(self.depth.min()) < 1:
                raise ValueError("route forest: tree depths out of range")
            if int(self.net_node_ptr.min()) < 0 or int(self.conn_ptr.min()) < 0:
                raise ValueError("route forest: pointer arrays out of range")
            if (np.diff(self.net_node_ptr) < 0).any() or (np.diff(self.conn_ptr) < 0).any():
                raise ValueError("route forest: pointer arrays not monotonic")
        if N and int(self.net_ptr[-1]) != C:
            raise ValueError("route forest: connection pointers out of range")
        if N and (int(self.net_ptr.min()) < 0 or (np.diff(self.net_ptr) < 0).any()):
            raise ValueError("route forest: connection pointers out of range")


class _NetFragment:
    """One net's flattened tree in *local* positions (see assembly below).

    Built once per (net, route-tree) pair as plain lists, then frozen into
    small NumPy arrays by :meth:`freeze` so the repeated whole-forest
    assembly is a handful of ``np.concatenate`` calls instead of
    re-consuming Python lists every PathFinder iteration.
    """

    __slots__ = (
        "source",
        "node",
        "parent",
        "depth",
        "conn_sink",
        "conn_sink_pos",
        "conn_end",
    )

    def __init__(self, source: int) -> None:
        self.source = source
        self.node: List[int] = []
        self.parent: List[int] = []     #: local parent position, -1 = source
        self.depth: List[int] = []
        self.conn_sink: List[int] = []
        self.conn_sink_pos: List[int] = []  #: local position of the sink node
        self.conn_end: List[int] = []   #: local conn_ptr end per connection

    def freeze(self) -> "_NetFragment":
        """Convert the append lists to arrays; returns self for chaining."""
        self.node = np.asarray(self.node, dtype=np.int32)
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.depth = np.asarray(self.depth, dtype=np.int32)
        self.conn_sink = np.asarray(self.conn_sink, dtype=np.int32)
        self.conn_sink_pos = np.asarray(self.conn_sink_pos, dtype=np.int64)
        self.conn_end = np.asarray(self.conn_end, dtype=np.int64)
        return self


def _append_conn(
    f: _NetFragment, pos_of: Dict[int, int], target: int, path, attach: int
) -> None:
    """Append one ``(target, path, attach)`` connection to a live fragment.

    The astar router calls this during backtrace-merge, so fragments are
    *emitted while routing* instead of rebuilt per re-routed net at forest
    build / re-time; ``pos_of`` is the net's node -> local-position map
    (``{source: -1}`` on a fresh tree).  Must not be called after
    :meth:`_NetFragment.freeze`.
    """
    node_l = f.node
    depth_l = f.depth
    f.conn_sink.append(target)
    if not path:
        # Duplicate sink: the target node is already in the tree.
        f.conn_sink_pos.append(pos_of[target])
        f.conn_end.append(len(node_l))
        return
    ap = pos_of[attach]
    rp = path[::-1]  # attach-to-sink order (router backtraces sink-first)
    base = len(node_l)
    node_l += rp
    f.parent.append(ap)
    f.parent += range(base, base + len(rp) - 1)
    d0 = depth_l[ap] + 1 if ap >= 0 else 1
    depth_l += range(d0, d0 + len(rp))
    pos_of.update(zip(rp, range(base, base + len(rp))))
    f.conn_sink_pos.append(base + len(rp) - 1)
    f.conn_end.append(len(node_l))


def _fragment_from_conns(source: int, conns) -> _NetFragment:
    """Fragment from the directed kernels' ``(target, path, attach)`` list."""
    f = _NetFragment(source)
    pos_of: Dict[int, int] = {source: -1}
    for target, path, attach in conns:
        _append_conn(f, pos_of, target, path, attach)
    return f.freeze()


def _fragment_from_tree(source: int, nodes, rr) -> _NetFragment:
    """Fragment from a plain node-list tree (fast/reference kernels).

    BFS over the RR adjacency restricted to the tree's nodes, exactly like
    the legacy ``_walk_bfs``; every SINK node in the tree becomes one
    connection (path segments are not recoverable, so the connection
    slices stay empty for these).
    """
    f = _NetFragment(source)
    node_l = f.node
    parent_l = f.parent
    depth_l = f.depth
    node_set = set(nodes)
    pos_of: Dict[int, int] = {source: -1}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            pu = pos_of[u]
            du = depth_l[pu] if pu >= 0 else 0
            for v in rr.fanouts(u):
                v = int(v)
                if v in node_set and v not in pos_of:
                    pos_of[v] = len(node_l)
                    node_l.append(v)
                    parent_l.append(pu)
                    depth_l.append(du + 1)
                    nxt.append(v)
        frontier = nxt
    sink_t = RRNodeType.SINK
    for n in nodes:
        if rr.node_type[n] == sink_t and n != source:
            f.conn_sink.append(int(n))
            f.conn_sink_pos.append(pos_of.get(int(n), -1))
            f.conn_end.append(len(node_l))
    return f.freeze()


def build_route_forest(
    routes: Dict[int, object],
    rr,
    cache: Optional[Dict[int, Tuple[object, _NetFragment]]] = None,
) -> RouteForest:
    """Flatten ``{net_id: NetRoute}`` trees into one :class:`RouteForest`.

    Trees that carry the directed kernels' connection lists are imported
    exactly (segment structure preserved); plain node-list trees fall back
    to a BFS over the RR adjacency, which recovers the same parent
    structure the legacy delay walk traversed.

    ``cache`` makes repeated builds *incremental*: per-net fragments are
    memoized against the identity of each net's ``NetRoute`` object, which
    the routing kernels replace only when they re-route that net -- so a
    per-PathFinder-iteration rebuild re-flattens only the nets that
    changed, the (vectorized) assembly below is the steady-state cost, and
    a build where *nothing* changed returns the previous forest object
    outright (with its depth-level cache warm).  Pass a dict owned by the
    caller (e.g. one per :class:`~repro.timing.sta.CriticalityTracker`).
    """
    frags: List[_NetFragment] = []
    net_ids: List[int] = []
    changed = False
    for nid in sorted(routes):
        r = routes[nid]
        if not r.nodes:
            continue
        frag = None
        if cache is not None:
            entry = cache.get(nid)
            if entry is not None and entry[0] is r:
                frag = entry[1]
        if frag is None:
            source = r.nodes[0]
            conns = getattr(r, "connections", None)
            if conns is not None:
                frag = _fragment_from_conns(source, conns)
            else:
                frag = _fragment_from_tree(source, r.nodes, rr)
            if cache is not None:
                cache[nid] = (r, frag)
            changed = True
        frags.append(frag)
        net_ids.append(int(nid))
    if cache is not None:
        whole = cache.get(_WHOLE_FOREST_KEY)
        if not changed and whole is not None and whole[0] == net_ids:
            return whole[1]

    # -- vectorized assembly: local fragment positions -> global arrays ---
    i32 = np.int32
    if not frags:
        empty = np.zeros(0, dtype=i32)
        zero_ptr = np.zeros(1, dtype=i32)
        return RouteForest(
            num_rr_nodes=rr.num_nodes,
            node=empty,
            parent=empty.copy(),
            depth=empty.copy(),
            net_id=empty.copy(),
            net_source=empty.copy(),
            net_node_ptr=zero_ptr,
            net_ptr=zero_ptr.copy(),
            conn_net=empty.copy(),
            conn_sink=empty.copy(),
            conn_sink_pos=empty.copy(),
            conn_ptr=zero_ptr.copy(),
        )
    node_parts = []
    parent_parts = []
    depth_parts = []
    sink_parts = []
    spos_parts = []
    cend_parts = []
    plens = []
    clens = []
    sources = []
    for f in frags:
        node_parts.append(f.node)
        parent_parts.append(f.parent)
        depth_parts.append(f.depth)
        sink_parts.append(f.conn_sink)
        spos_parts.append(f.conn_sink_pos)
        cend_parts.append(f.conn_end)
        plens.append(len(f.node))
        clens.append(len(f.conn_sink))
        sources.append(f.source)
    plens_a = np.asarray(plens, dtype=np.int64)
    clens_a = np.asarray(clens, dtype=np.int64)
    net_node_ptr = np.zeros(len(frags) + 1, dtype=np.int64)
    np.cumsum(plens_a, out=net_node_ptr[1:])
    pos_off = net_node_ptr[:-1]
    off_per_pos = np.repeat(pos_off, plens_a)
    off_per_conn = np.repeat(pos_off, clens_a)
    parent_local = np.concatenate(parent_parts)
    spos_local = np.concatenate(spos_parts)
    net_ptr = np.zeros(len(frags) + 1, dtype=np.int64)
    np.cumsum(clens_a, out=net_ptr[1:])
    conn_ptr = np.empty(int(net_ptr[-1]) + 1, dtype=np.int64)
    conn_ptr[0] = 0
    conn_ptr[1:] = np.concatenate(cend_parts) + off_per_conn
    net_ids_a = np.asarray(net_ids, dtype=i32)
    forest = RouteForest(
        num_rr_nodes=rr.num_nodes,
        node=np.concatenate(node_parts),
        parent=np.where(parent_local < 0, -1, parent_local + off_per_pos).astype(i32),
        depth=np.concatenate(depth_parts),
        net_id=net_ids_a,
        net_source=np.asarray(sources, dtype=i32),
        net_node_ptr=net_node_ptr.astype(i32),
        net_ptr=net_ptr.astype(i32),
        conn_net=np.repeat(net_ids_a, clens_a),
        conn_sink=np.concatenate(sink_parts),
        conn_sink_pos=np.where(spos_local < 0, -1, spos_local + off_per_conn).astype(i32),
        conn_ptr=conn_ptr.astype(i32),
    )
    if cache is not None:
        cache[_WHOLE_FOREST_KEY] = (net_ids, forest)
    return forest
