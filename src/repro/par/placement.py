"""TPLACE: simulated-annealing placement.

Re-implementation of the VPR/TPaR placement step: blocks of the physical
netlist are assigned to compatible sites of the island FPGA and iteratively
improved by simulated annealing on the half-perimeter wirelength (HPWL) of
all nets, with the adaptive temperature schedule and range limiting of VPR.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fpga.architecture import FPGAArchitecture, Site
from .netlist import PhysicalNetlist

__all__ = ["Placement", "PlacementResult", "place", "random_placement", "hpwl"]


@dataclass
class Placement:
    """Assignment of netlist blocks to FPGA sites."""

    block_site: Dict[int, Site] = field(default_factory=dict)

    def site_of(self, block: int) -> Site:
        return self.block_site[block]

    def location_of(self, block: int) -> Tuple[int, int]:
        s = self.block_site[block]
        return (s.x, s.y)

    def clone(self) -> "Placement":
        return Placement(dict(self.block_site))


@dataclass
class PlacementResult:
    """Placement plus quality metrics."""

    placement: Placement
    cost: float                 #: final total HPWL
    initial_cost: float
    moves_attempted: int
    moves_accepted: int
    temperature_steps: int

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.cost / self.initial_cost


def _net_hpwl(xs: List[int], ys: List[int]) -> float:
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl(netlist: PhysicalNetlist, placement: Placement) -> float:
    """Total half-perimeter wirelength of all nets under a placement."""
    total = 0.0
    for net in netlist.nets:
        blocks = [net.driver] + net.sinks
        xs = [placement.block_site[b].x for b in blocks]
        ys = [placement.block_site[b].y for b in blocks]
        total += _net_hpwl(xs, ys)
    return total


def random_placement(
    netlist: PhysicalNetlist, arch: FPGAArchitecture, seed: int = 0
) -> Placement:
    """Random feasible initial placement (logic blocks on CLB sites, IOs on pads)."""
    rng = random.Random(seed)
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())
    rng.shuffle(logic_sites)
    rng.shuffle(io_sites)

    logic_blocks = [b for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b for b in netlist.blocks if b.kind == "io"]
    if len(logic_blocks) > len(logic_sites):
        raise ValueError(
            f"design needs {len(logic_blocks)} logic sites but the device has "
            f"only {len(logic_sites)}"
        )
    if len(io_blocks) > len(io_sites):
        raise ValueError(
            f"design needs {len(io_blocks)} IO sites but the device has only {len(io_sites)}"
        )
    placement = Placement()
    for block, site in zip(logic_blocks, logic_sites):
        placement.block_site[block.id] = site
    for block, site in zip(io_blocks, io_sites):
        placement.block_site[block.id] = site
    return placement


class _AnnealingState:
    """Book-keeping for incremental HPWL evaluation during annealing."""

    def __init__(self, netlist: PhysicalNetlist, placement: Placement) -> None:
        self.netlist = netlist
        self.placement = placement
        self.nets_of_block: Dict[int, List[int]] = {b.id: [] for b in netlist.blocks}
        for net in netlist.nets:
            for b in {net.driver, *net.sinks}:
                self.nets_of_block[b].append(net.id)
        self.net_cost: List[float] = [0.0] * len(netlist.nets)
        for net in netlist.nets:
            self.net_cost[net.id] = self._compute_net_cost(net.id)
        self.total_cost = sum(self.net_cost)

    def _compute_net_cost(self, net_id: int) -> float:
        net = self.netlist.nets[net_id]
        blocks = [net.driver] + net.sinks
        xs = [self.placement.block_site[b].x for b in blocks]
        ys = [self.placement.block_site[b].y for b in blocks]
        return _net_hpwl(xs, ys)

    def delta_for_nets(self, net_ids: List[int]) -> Tuple[float, Dict[int, float]]:
        new_costs = {nid: self._compute_net_cost(nid) for nid in net_ids}
        delta = sum(new_costs[nid] - self.net_cost[nid] for nid in net_ids)
        return delta, new_costs

    def commit(self, new_costs: Dict[int, float]) -> None:
        for nid, cost in new_costs.items():
            self.total_cost += cost - self.net_cost[nid]
            self.net_cost[nid] = cost


def place(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
) -> PlacementResult:
    """Simulated-annealing placement (TPLACE).

    ``effort`` scales the number of moves per temperature; values below 1
    trade quality for runtime (used by the fast benchmark configurations).
    """
    rng = random.Random(seed)
    placement = random_placement(netlist, arch, seed=seed)
    state = _AnnealingState(netlist, placement)
    initial_cost = state.total_cost

    logic_blocks = [b.id for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b.id for b in netlist.blocks if b.kind == "io"]
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())

    site_occupant: Dict[Tuple, Optional[int]] = {}
    for s in logic_sites + io_sites:
        site_occupant[s.as_tuple()] = None
    for bid, site in placement.block_site.items():
        site_occupant[site.as_tuple()] = bid

    movable_groups = []
    if logic_blocks:
        movable_groups.append(("logic", logic_blocks, logic_sites))
    if io_blocks:
        movable_groups.append(("io", io_blocks, io_sites))
    if not movable_groups:
        return PlacementResult(placement, 0.0, 0.0, 0, 0, 0)

    num_blocks = len(logic_blocks) + len(io_blocks)
    moves_per_temp = max(10, int(effort * inner_num * 10 * (num_blocks ** (4.0 / 3.0)) / 10))
    # Initial temperature: scale of typical cost deltas.
    temperature = max(1.0, 0.05 * initial_cost / max(1, len(netlist.nets)) * 20)
    range_limit = float(max(arch.width, arch.height))

    moves_attempted = 0
    moves_accepted = 0
    temperature_steps = 0

    def pick_move():
        group = movable_groups[rng.randrange(len(movable_groups))]
        _, blocks, sites = group
        block = blocks[rng.randrange(len(blocks))]
        cur = placement.block_site[block]
        for _ in range(8):
            target = sites[rng.randrange(len(sites))]
            if target.kind != cur.kind:
                continue
            if abs(target.x - cur.x) + abs(target.y - cur.y) > range_limit * 2:
                continue
            if target.as_tuple() != cur.as_tuple():
                return block, cur, target
        return None

    while temperature_steps < 200:
        accepted_this_temp = 0
        for _ in range(moves_per_temp):
            move = pick_move()
            if move is None:
                continue
            block, cur, target = move
            moves_attempted += 1
            occupant = site_occupant[target.as_tuple()]

            affected = set(state.nets_of_block[block])
            if occupant is not None:
                affected.update(state.nets_of_block[occupant])

            # tentatively apply
            placement.block_site[block] = target
            if occupant is not None:
                placement.block_site[occupant] = cur
            delta, new_costs = state.delta_for_nets(list(affected))

            accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9))
            if accept:
                state.commit(new_costs)
                site_occupant[target.as_tuple()] = block
                site_occupant[cur.as_tuple()] = occupant
                moves_accepted += 1
                accepted_this_temp += 1
            else:
                placement.block_site[block] = cur
                if occupant is not None:
                    placement.block_site[occupant] = target

        temperature_steps += 1
        acceptance = accepted_this_temp / max(1, moves_per_temp)
        # VPR-style adaptive cooling.
        if acceptance > 0.96:
            temperature *= 0.5
        elif acceptance > 0.8:
            temperature *= 0.9
        elif acceptance > 0.15:
            temperature *= 0.95
        else:
            temperature *= 0.8
        range_limit = max(1.0, range_limit * (1.0 - 0.44 + acceptance))
        if temperature < 0.005 * state.total_cost / max(1, len(netlist.nets)) or (
            acceptance < 0.01 and temperature_steps > 5
        ):
            break

    return PlacementResult(
        placement=placement,
        cost=state.total_cost,
        initial_cost=initial_cost,
        moves_attempted=moves_attempted,
        moves_accepted=moves_accepted,
        temperature_steps=temperature_steps,
    )
