"""TPLACE: simulated-annealing placement.

Re-implementation of the VPR/TPaR placement step: blocks of the physical
netlist are assigned to compatible sites of the island FPGA and iteratively
improved by simulated annealing on the half-perimeter wirelength (HPWL) of
all nets, with the adaptive temperature schedule and range limiting of VPR.

Three annealing kernels live behind :func:`place`:

* ``kernel="incremental"`` (default) -- VPR-style incremental net bounding
  boxes: every net caches its bbox plus the number of pins on each boundary,
  a move updates affected nets in O(1) and only a *boundary shrink* (the last
  pin leaves a bbox edge) triggers a rescan of that net's pins.  Coordinates
  live in flat Python lists, so the inner loop carries no tuple/dataclass
  overhead.
* ``kernel="batched"`` -- the same incremental-bbox annealer, but all
  randomness is drawn in blocks from a ``numpy.random.Generator(PCG64)``
  instead of per-move ``random.Random`` calls (which are ~40% of the
  incremental kernel's inner loop).  The trajectory differs from the other
  kernels, so its quality is re-baselined instead of bit-checked: mean final
  HPWL across seeds is asserted within 2% of the incremental kernel (see
  ``tests/test_par.py`` and ``benchmarks/bench_hotpaths.py``).  This kernel
  also accepts per-net weights (``net_weights``), the seam the timing-driven
  flow uses to pull criticality-weighted nets shorter.  When the native
  backend is available (see :mod:`repro.native`) the move loop runs as
  compiled C over the same flat arrays and PCG64 stream -- trajectories are
  bit-identical to the Python loop, so results and caches are
  backend-independent.
* ``kernel="reference"`` -- the original implementation that recomputes every
  affected net's HPWL from its full pin list; kept as the baseline for the
  hot-path benchmark and for equivalence tests.

``reference`` and ``incremental`` draw the same random number sequence and
compute exact integer HPWL deltas, so for a fixed seed they follow the *same
annealing trajectory* and return identical placements.  All kernels keep the
HPWL cost as an exact integer.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fpga.architecture import FPGAArchitecture, Site
from ..native.annealer import ISTATE, ISTATE_LEN, annealer_kernel, istate_counters
from ..obs import metrics as obs_metrics
from ..obs.trace import emit_series, traced
from .netlist import PhysicalNetlist

__all__ = [
    "Placement",
    "PlacementResult",
    "TimingCost",
    "place",
    "random_placement",
    "hpwl",
]


class TimingCost:
    """Per-connection timing term for the batched annealer (VPR-style).

    The timing-driven flow hands the annealer the flat connection arrays of
    the timing graph -- ``conn_src[c]`` / ``conn_dst[c]`` block ids, one
    entry per (net driver, net sink) pair -- plus a ``criticality`` callback
    that re-times a placement-estimate STA over the live block coordinates.
    The annealer then prices every move as

        delta = Q * delta_HPWL + sum_c  w_c * delta_dist_c

    where ``w_c = round(Q * tradeoff * criticality_c)`` and ``dist_c`` is
    the connection's Manhattan source-sink distance in unit wires (its
    placement-estimated delay up to constants).  Both terms are exact
    integers (``Q`` is the weight quantum), so the no-float-drift accounting
    of the plain kernels carries over.  Criticalities are refreshed from the
    callback every ``retime_every`` accepted moves -- criticality chases the
    anneal instead of being frozen between candidate anneals.
    """

    def __init__(
        self,
        conn_src: Sequence[int],
        conn_dst: Sequence[int],
        criticality: Callable[[List[int], List[int]], Sequence[float]],
        tradeoff: float = 4.0,
        retime_every: Optional[int] = None,
    ) -> None:
        self.conn_src = list(conn_src)
        self.conn_dst = list(conn_dst)
        if len(self.conn_src) != len(self.conn_dst):
            raise ValueError("conn_src and conn_dst must have equal length")
        self.criticality = criticality
        self.tradeoff = tradeoff
        self.retime_every = retime_every


@dataclass
class Placement:
    """Assignment of netlist blocks to FPGA sites."""

    block_site: Dict[int, Site] = field(default_factory=dict)

    def site_of(self, block: int) -> Site:
        return self.block_site[block]

    def location_of(self, block: int) -> Tuple[int, int]:
        s = self.block_site[block]
        return (s.x, s.y)

    def clone(self) -> "Placement":
        return Placement(dict(self.block_site))


@dataclass
class PlacementResult:
    """Placement plus quality metrics."""

    placement: Placement
    cost: int                   #: final total HPWL (exact integer)
    initial_cost: int
    moves_attempted: int
    moves_accepted: int
    temperature_steps: int
    #: final value of the weighted annealing objective when ``net_weights``
    #: were supplied (quantized-integer sum of weight * HPWL); ``None`` for
    #: plain HPWL annealing, where it would equal ``cost``.
    objective_cost: Optional[int] = None
    #: per-run observability snapshot (see OBSERVABILITY.md): the annealing
    #: schedule as parallel flat arrays -- ``temperature`` / ``cost`` /
    #: ``acceptance``, one entry per temperature step (the temperature the
    #: step annealed *at*, the total cost after it, and its acceptance
    #: rate).  Excluded from equality and never serialized into cache
    #: payloads, so ``PLACE_ALGO_VERSION`` is unaffected.
    telemetry: Optional[Dict[str, object]] = field(default=None, compare=False, repr=False)

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.cost / self.initial_cost


def _net_hpwl(xs: List[int], ys: List[int]) -> int:
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl(netlist: PhysicalNetlist, placement: Placement) -> int:
    """Total half-perimeter wirelength of all nets under a placement.

    HPWL over integer grid coordinates is an exact integer; every kernel
    keeps it as one (no float accumulation drift).
    """
    total = 0
    for net in netlist.nets:
        blocks = [net.driver] + net.sinks
        xs = [placement.block_site[b].x for b in blocks]
        ys = [placement.block_site[b].y for b in blocks]
        total += _net_hpwl(xs, ys)
    return total


def random_placement(
    netlist: PhysicalNetlist, arch: FPGAArchitecture, seed: int = 0
) -> Placement:
    """Random feasible initial placement (logic blocks on CLB sites, IOs on pads)."""
    rng = random.Random(seed)
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())
    rng.shuffle(logic_sites)
    rng.shuffle(io_sites)

    logic_blocks = [b for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b for b in netlist.blocks if b.kind == "io"]
    if len(logic_blocks) > len(logic_sites):
        raise ValueError(
            f"design needs {len(logic_blocks)} logic sites but the device has "
            f"only {len(logic_sites)}"
        )
    if len(io_blocks) > len(io_sites):
        raise ValueError(
            f"design needs {len(io_blocks)} IO sites but the device has only {len(io_sites)}"
        )
    placement = Placement()
    for block, site in zip(logic_blocks, logic_sites):
        placement.block_site[block.id] = site
    for block, site in zip(io_blocks, io_sites):
        placement.block_site[block.id] = site
    return placement


def _moves_per_temperature(num_blocks: int, effort: float, inner_num: float) -> int:
    return max(10, int(effort * inner_num * 10 * (num_blocks ** (4.0 / 3.0)) / 10))


def _initial_temperature(initial_cost: float, num_nets: int) -> float:
    return max(1.0, 0.05 * initial_cost / max(1, num_nets) * 20)


def _cool(temperature: float, acceptance: float) -> float:
    """VPR-style adaptive cooling."""
    if acceptance > 0.96:
        return temperature * 0.5
    if acceptance > 0.8:
        return temperature * 0.9
    if acceptance > 0.15:
        return temperature * 0.95
    return temperature * 0.8


def _next_range_limit(range_limit: float, acceptance: float, device_span: float) -> float:
    """VPR range-limit update, clamped to the device size.

    Without the clamp the limit can grow without bound at high acceptance
    (``1.0 - 0.44 + acceptance`` exceeds 1 whenever acceptance > 0.44).
    """
    limit = max(1.0, range_limit * (1.0 - 0.44 + acceptance))
    return min(limit, device_span)


def _placement_telemetry(
    kernel: str,
    tl_temperature: List[float],
    tl_cost: List[int],
    tl_acceptance: List[float],
    moves_attempted: int,
    moves_accepted: int,
    native: Optional[bool] = None,
) -> Dict[str, object]:
    """Assemble a kernel's convergence telemetry and publish the counters.

    The three ``tl_*`` lists are parallel flat arrays with one entry per
    temperature step: the temperature the step annealed *at* (before
    cooling), the total cost after it, and its move acceptance rate.  The
    dict lands in :attr:`PlacementResult.telemetry`; aggregate counters go
    to the process-wide metrics registry and the cost curve to the trace
    (both no-ops unless enabled).
    """
    telemetry: Dict[str, object] = {
        "kernel": kernel,
        "temperature": tl_temperature,
        "cost": tl_cost,
        "acceptance": tl_acceptance,
    }
    if native is not None:
        telemetry["native"] = native
    obs_metrics.merge(
        {
            "place.calls": 1,
            "place.temperature_steps": len(tl_cost),
            "place.moves_attempted": moves_attempted,
            "place.moves_accepted": moves_accepted,
        }
    )
    emit_series("place.cost", tl_cost, kernel=kernel)
    return telemetry


@traced("par.place")
def place(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
    kernel: str = "incremental",
    net_weights: Optional[Sequence[float]] = None,
    timing: Optional[TimingCost] = None,
) -> PlacementResult:
    """Simulated-annealing placement (TPLACE).

    ``effort`` scales the number of moves per temperature; values below 1
    trade quality for runtime (used by the fast benchmark configurations).
    ``kernel`` selects the annealing inner loop (see module docstring);
    ``reference`` and ``incremental`` are trajectory-identical for a fixed
    seed, ``batched`` trades that for throughput at re-baselined quality.

    ``net_weights`` (``batched`` kernel only) anneals the weighted objective
    ``sum(weight_i * hpwl_i)`` instead of plain HPWL -- the timing-driven
    flow passes ``1 + tradeoff * criticality`` per net so critical nets are
    pulled shorter.  Weights are quantized to integers (see
    :func:`_quantize_weights`), keeping the cost accounting exact;
    :attr:`PlacementResult.cost` still reports the *unweighted* integer HPWL
    and the weighted objective lands in
    :attr:`PlacementResult.objective_cost`.

    ``timing`` (``batched`` kernel only, exclusive with ``net_weights``)
    switches the anneal to the incremental-STA objective: plain HPWL plus a
    per-connection ``criticality * distance`` term whose criticalities are
    re-timed from the live coordinates inside the annealing loop (see
    :class:`TimingCost`).
    """
    if net_weights is not None and kernel != "batched":
        raise ValueError("net_weights requires the batched placement kernel")
    if timing is not None and kernel != "batched":
        raise ValueError("timing requires the batched placement kernel")
    if timing is not None and net_weights is not None:
        raise ValueError("timing and net_weights are mutually exclusive")
    if kernel == "reference":
        return _place_reference(netlist, arch, seed=seed, effort=effort, inner_num=inner_num)
    if kernel == "batched":
        return _place_batched(
            netlist, arch, seed=seed, effort=effort, inner_num=inner_num,
            net_weights=net_weights, timing=timing,
        )
    if kernel != "incremental":
        raise ValueError(f"unknown placement kernel {kernel!r}")

    rng = random.Random(seed)
    placement = random_placement(netlist, arch, seed=seed)

    logic_blocks = [b.id for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b.id for b in netlist.blocks if b.kind == "io"]
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())
    all_sites = logic_sites + io_sites
    site_index = {s.as_tuple(): i for i, s in enumerate(all_sites)}
    site_x = [s.x for s in all_sites]
    site_y = [s.y for s in all_sites]

    num_block_ids = len(netlist.blocks)
    block_gsite = [-1] * num_block_ids
    block_x = [0] * num_block_ids
    block_y = [0] * num_block_ids
    occupant: List[Optional[int]] = [None] * len(all_sites)
    for bid, site in placement.block_site.items():
        gi = site_index[site.as_tuple()]
        block_gsite[bid] = gi
        block_x[bid] = site.x
        block_y[bid] = site.y
        occupant[gi] = bid

    # -- per-net cached bounding boxes -----------------------------------------
    # bb[nid] = (xmin, xmax, ymin, ymax, n_xmin, n_xmax, n_ymin, n_ymax)
    net_pins: List[List[int]] = []
    nets_of_block: List[List[int]] = [[] for _ in range(num_block_ids)]
    bb: List[Tuple[int, int, int, int, int, int, int, int]] = []
    net_cost: List[int] = []
    total_cost = 0
    for net in netlist.nets:
        # Deduplicate pins: a repeated block contributes nothing to the bbox
        # but would corrupt the boundary counts of the O(1) update below
        # (one move must remove exactly one pin from a boundary).
        pins = list(dict.fromkeys([net.driver] + net.sinks))
        net_pins.append(pins)
        for b in {net.driver, *net.sinks}:
            nets_of_block[b].append(net.id)
        xs = [block_x[b] for b in pins]
        ys = [block_y[b] for b in pins]
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        bb.append(
            (xmin, xmax, ymin, ymax,
             xs.count(xmin), xs.count(xmax), ys.count(ymin), ys.count(ymax))
        )
        cost = (xmax - xmin) + (ymax - ymin)
        net_cost.append(cost)
        total_cost += cost
    initial_cost = total_cost

    movable_groups: List[Tuple[List[int], List[int]]] = []
    if logic_blocks:
        movable_groups.append((logic_blocks, list(range(len(logic_sites)))))
    if io_blocks:
        io_gidx = list(range(len(logic_sites), len(all_sites)))
        movable_groups.append((io_blocks, io_gidx))
    if not movable_groups:
        return PlacementResult(placement, 0, 0, 0, 0, 0)

    num_blocks = len(logic_blocks) + len(io_blocks)
    moves_per_temp = _moves_per_temperature(num_blocks, effort, inner_num)
    temperature = _initial_temperature(initial_cost, len(netlist.nets))
    device_span = float(max(arch.width, arch.height))
    range_limit = device_span

    moves_attempted = 0
    moves_accepted = 0
    temperature_steps = 0
    tl_temperature: List[float] = []
    tl_cost: List[int] = []
    tl_acceptance: List[float] = []
    num_groups = len(movable_groups)
    randrange = rng.randrange
    rand = rng.random
    exp = math.exp

    def _bbox_after_move(
        nid: int, ox: int, oy: int, nx: int, ny: int
    ) -> Tuple[int, int, int, int, int, int, int, int]:
        """Bbox of net ``nid`` after one pin moved (ox,oy) -> (nx,ny).

        Block coordinates must already reflect the move.  O(1) unless the pin
        leaves a boundary it solely occupied (boundary shrink -> rescan).
        """
        xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax = bb[nid]
        if nx != ox:
            if (ox == xmin and cxmin == 1 and nx > xmin) or (
                ox == xmax and cxmax == 1 and nx < xmax
            ):
                xs = [block_x[b] for b in net_pins[nid]]
                xmin, xmax = min(xs), max(xs)
                cxmin, cxmax = xs.count(xmin), xs.count(xmax)
            else:
                if ox == xmin:
                    cxmin -= 1
                if ox == xmax:
                    cxmax -= 1
                if nx < xmin:
                    xmin, cxmin = nx, 1
                elif nx == xmin:
                    cxmin += 1
                if nx > xmax:
                    xmax, cxmax = nx, 1
                elif nx == xmax:
                    cxmax += 1
        if ny != oy:
            if (oy == ymin and cymin == 1 and ny > ymin) or (
                oy == ymax and cymax == 1 and ny < ymax
            ):
                ys = [block_y[b] for b in net_pins[nid]]
                ymin, ymax = min(ys), max(ys)
                cymin, cymax = ys.count(ymin), ys.count(ymax)
            else:
                if oy == ymin:
                    cymin -= 1
                if oy == ymax:
                    cymax -= 1
                if ny < ymin:
                    ymin, cymin = ny, 1
                elif ny == ymin:
                    cymin += 1
                if ny > ymax:
                    ymax, cymax = ny, 1
                elif ny == ymax:
                    cymax += 1
        return (xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax)

    def _bbox_rescan(nid: int) -> Tuple[int, int, int, int, int, int, int, int]:
        xs = [block_x[b] for b in net_pins[nid]]
        ys = [block_y[b] for b in net_pins[nid]]
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        return (xmin, xmax, ymin, ymax,
                xs.count(xmin), xs.count(xmax), ys.count(ymin), ys.count(ymax))

    while temperature_steps < 200:
        accepted_this_temp = 0
        range2 = range_limit * 2
        for _ in range(moves_per_temp):
            blocks, gsites = movable_groups[randrange(num_groups)]
            block = blocks[randrange(len(blocks))]
            cur_g = block_gsite[block]
            cx = block_x[block]
            cy = block_y[block]
            target_g = -1
            for _try in range(8):
                tg = gsites[randrange(len(gsites))]
                if abs(site_x[tg] - cx) + abs(site_y[tg] - cy) > range2:
                    continue
                if tg != cur_g:
                    target_g = tg
                    break
            if target_g < 0:
                continue
            moves_attempted += 1
            occ_block = occupant[target_g]
            nx = site_x[target_g]
            ny = site_y[target_g]

            # Tentatively apply the move to the coordinate arrays.
            block_x[block] = nx
            block_y[block] = ny
            if occ_block is not None:
                block_x[occ_block] = cx
                block_y[occ_block] = cy

            delta = 0
            updates: List[Tuple[int, Tuple[int, int, int, int, int, int, int, int], int]] = []
            if occ_block is None:
                # Common case (move into an empty site): inline the O(1)
                # bbox update; only a boundary shrink rescans the net's pins.
                for nid in nets_of_block[block]:
                    xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax = bb[nid]
                    if nx != cx:
                        if (cx == xmin and cxmin == 1 and nx > xmin) or (
                            cx == xmax and cxmax == 1 and nx < xmax
                        ):
                            pxs = [block_x[b] for b in net_pins[nid]]
                            xmin, xmax = min(pxs), max(pxs)
                            cxmin, cxmax = pxs.count(xmin), pxs.count(xmax)
                        else:
                            if cx == xmin:
                                cxmin -= 1
                            if cx == xmax:
                                cxmax -= 1
                            if nx < xmin:
                                xmin, cxmin = nx, 1
                            elif nx == xmin:
                                cxmin += 1
                            if nx > xmax:
                                xmax, cxmax = nx, 1
                            elif nx == xmax:
                                cxmax += 1
                    if ny != cy:
                        if (cy == ymin and cymin == 1 and ny > ymin) or (
                            cy == ymax and cymax == 1 and ny < ymax
                        ):
                            pys = [block_y[b] for b in net_pins[nid]]
                            ymin, ymax = min(pys), max(pys)
                            cymin, cymax = pys.count(ymin), pys.count(ymax)
                        else:
                            if cy == ymin:
                                cymin -= 1
                            if cy == ymax:
                                cymax -= 1
                            if ny < ymin:
                                ymin, cymin = ny, 1
                            elif ny == ymin:
                                cymin += 1
                            if ny > ymax:
                                ymax, cymax = ny, 1
                            elif ny == ymax:
                                cymax += 1
                    cost = (xmax - xmin) + (ymax - ymin)
                    delta += cost - net_cost[nid]
                    updates.append(
                        (nid, (xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax), cost)
                    )
            else:
                block_nets = nets_of_block[block]
                occ_nets = nets_of_block[occ_block]
                shared = set(block_nets) & set(occ_nets) if occ_nets else set()
                for nid in block_nets:
                    if nid in shared:
                        nb = _bbox_rescan(nid)  # both endpoints moved
                    else:
                        nb = _bbox_after_move(nid, cx, cy, nx, ny)
                    cost = (nb[1] - nb[0]) + (nb[3] - nb[2])
                    delta += cost - net_cost[nid]
                    updates.append((nid, nb, cost))
                for nid in occ_nets:
                    if nid in shared:
                        continue
                    nb = _bbox_after_move(nid, nx, ny, cx, cy)
                    cost = (nb[1] - nb[0]) + (nb[3] - nb[2])
                    delta += cost - net_cost[nid]
                    updates.append((nid, nb, cost))

            if delta <= 0 or rand() < exp(-delta / max(temperature, 1e-9)):
                for nid, nb, cost in updates:
                    bb[nid] = nb
                    total_cost += cost - net_cost[nid]
                    net_cost[nid] = cost
                occupant[target_g] = block
                occupant[cur_g] = occ_block
                block_gsite[block] = target_g
                if occ_block is not None:
                    block_gsite[occ_block] = cur_g
                moves_accepted += 1
                accepted_this_temp += 1
            else:
                block_x[block] = cx
                block_y[block] = cy
                if occ_block is not None:
                    block_x[occ_block] = nx
                    block_y[occ_block] = ny

        temperature_steps += 1
        acceptance = accepted_this_temp / max(1, moves_per_temp)
        tl_temperature.append(temperature)
        tl_cost.append(total_cost)
        tl_acceptance.append(acceptance)
        temperature = _cool(temperature, acceptance)
        range_limit = _next_range_limit(range_limit, acceptance, device_span)
        if temperature < 0.005 * total_cost / max(1, len(netlist.nets)) or (
            acceptance < 0.01 and temperature_steps > 5
        ):
            break

    for bid in range(num_block_ids):
        gi = block_gsite[bid]
        if gi >= 0:
            placement.block_site[bid] = all_sites[gi]

    return PlacementResult(
        placement=placement,
        cost=total_cost,
        initial_cost=initial_cost,
        moves_attempted=moves_attempted,
        moves_accepted=moves_accepted,
        temperature_steps=temperature_steps,
        telemetry=_placement_telemetry(
            "incremental", tl_temperature, tl_cost, tl_acceptance,
            moves_attempted, moves_accepted,
        ),
    )


_WEIGHT_QUANTUM = 8  #: integer sub-steps per unit of net weight


def _quantize_weights(net_weights: Sequence[float], num_nets: int) -> List[int]:
    """Net weights as positive integers (``_WEIGHT_QUANTUM`` steps per unit).

    Integer weights keep the weighted annealing objective an exact integer
    -- the same no-float-drift guarantee the plain-HPWL kernels carry.  The
    quantization error is below ``1 / (2 * _WEIGHT_QUANTUM)`` per unit
    weight, well under the noise floor of the annealer.
    """
    if len(net_weights) != num_nets:
        raise ValueError(
            f"net_weights has {len(net_weights)} entries for {num_nets} nets"
        )
    q = [max(1, round(float(w) * _WEIGHT_QUANTUM)) for w in net_weights]
    if min(net_weights) < 0:
        raise ValueError("net weights must be non-negative")
    return q


def _csr_i64(lists: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a list-of-lists into ``(ptr, flat)`` int64 CSR arrays."""
    ptr = np.zeros(len(lists) + 1, dtype=np.int64)
    for i, lst in enumerate(lists):
        ptr[i + 1] = ptr[i] + len(lst)
    flat = np.fromiter(
        (v for lst in lists for v in lst), dtype=np.int64, count=int(ptr[-1])
    )
    return ptr, flat


def _place_batched(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
    net_weights: Optional[Sequence[float]] = None,
    timing: Optional[TimingCost] = None,
) -> PlacementResult:
    """Incremental-bbox annealer fed by block-drawn PCG64 randomness.

    Identical cost accounting to ``kernel="incremental"``; only the random
    stream differs.  Move selection draws 63-bit integers (reduced modulo
    the needed range -- the bias is below ``range / 2**63``, irrelevant to
    annealing) and acceptance draws uniforms, both fetched in blocks of
    2**14 from ``numpy.random.Generator(PCG64(seed))`` and consumed by plain
    list indexing, which removes the per-move ``random.Random`` call tax.
    The initial placement still comes from :func:`random_placement` with the
    same seed, so a (netlist, arch, seed) triple is fully reproducible.

    With ``net_weights`` the annealed objective is the quantized-integer
    weighted HPWL (see :func:`_quantize_weights`); every bbox update below
    simply scales its net's cost by the integer weight, so the O(1) move
    accounting is unchanged.  With ``timing`` the objective is instead
    ``Q * HPWL + sum_c w_c * dist_c`` over the timing graph's connections
    (see :class:`TimingCost`): each move additionally re-prices the moved
    blocks' connections -- O(pins moved), exactly like the bbox updates --
    and the integer criticality weights ``w_c`` are re-timed in place every
    ``retime_every`` accepted moves.

    When :func:`repro.native.annealer.annealer_kernel` returns a compiled
    kernel, the per-move loop runs in C over the same flat state (see the
    native block below); otherwise the pure-Python loop runs.  Both follow
    the identical trajectory for a given seed.
    """
    gen = np.random.Generator(np.random.PCG64(seed))
    placement = random_placement(netlist, arch, seed=seed)
    num_nets = len(netlist.nets)
    weighted = net_weights is not None
    if timing is not None:
        # Scale the HPWL term by the weight quantum so the quantized
        # integer timing weights blend at the configured tradeoff.
        wq = [_WEIGHT_QUANTUM] * num_nets
    elif weighted:
        wq = _quantize_weights(net_weights, num_nets)
    else:
        wq = [1] * num_nets

    logic_blocks = [b.id for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b.id for b in netlist.blocks if b.kind == "io"]
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())
    all_sites = logic_sites + io_sites
    site_index = {s.as_tuple(): i for i, s in enumerate(all_sites)}
    site_x = [s.x for s in all_sites]
    site_y = [s.y for s in all_sites]

    num_block_ids = len(netlist.blocks)
    block_gsite = [-1] * num_block_ids
    block_x = [0] * num_block_ids
    block_y = [0] * num_block_ids
    occupant: List[Optional[int]] = [None] * len(all_sites)
    for bid, site in placement.block_site.items():
        gi = site_index[site.as_tuple()]
        block_gsite[bid] = gi
        block_x[bid] = site.x
        block_y[bid] = site.y
        occupant[gi] = bid

    # Per-net cached bounding boxes, exactly as in the incremental kernel.
    net_pins: List[List[int]] = []
    nets_of_block: List[List[int]] = [[] for _ in range(num_block_ids)]
    bb: List[Tuple[int, int, int, int, int, int, int, int]] = []
    net_cost: List[int] = []
    total_cost = 0
    for net in netlist.nets:
        pins = list(dict.fromkeys([net.driver] + net.sinks))
        net_pins.append(pins)
        for b in {net.driver, *net.sinks}:
            nets_of_block[b].append(net.id)
        xs = [block_x[b] for b in pins]
        ys = [block_y[b] for b in pins]
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        bb.append(
            (xmin, xmax, ymin, ymax,
             xs.count(xmin), xs.count(xmax), ys.count(ymin), ys.count(ymax))
        )
        cost = wq[net.id] * ((xmax - xmin) + (ymax - ymin))
        net_cost.append(cost)
        total_cost += cost
    initial_cost = total_cost
    weighted = weighted or timing is not None
    initial_hpwl = hpwl(netlist, placement) if weighted else initial_cost
    nets_of_block_set = [set(lst) for lst in nets_of_block]

    groups: List[Tuple[List[int], List[int], int, int]] = []
    if logic_blocks:
        gidx = list(range(len(logic_sites)))
        groups.append((logic_blocks, gidx, len(logic_blocks), len(gidx)))
    if io_blocks:
        gidx = list(range(len(logic_sites), len(all_sites)))
        groups.append((io_blocks, gidx, len(io_blocks), len(gidx)))
    if not groups:
        return PlacementResult(placement, 0, 0, 0, 0, 0)

    num_blocks = len(logic_blocks) + len(io_blocks)
    moves_per_temp = _moves_per_temperature(num_blocks, effort, inner_num)
    temperature = _initial_temperature(initial_cost, len(netlist.nets))
    device_span = float(max(arch.width, arch.height))
    range_limit = device_span

    moves_attempted = 0
    moves_accepted = 0
    temperature_steps = 0
    tl_temperature: List[float] = []
    tl_cost: List[int] = []
    tl_acceptance: List[float] = []
    num_groups = len(groups)
    logic_group = bool(logic_blocks)
    width, height = arch.width, arch.height
    exp = math.exp

    # Incremental-STA objective: flat per-connection distance/weight lists
    # plus the in-loop retime trigger.  A move re-prices only the moved
    # blocks' connections (O(pins moved), like the bbox updates); the
    # integer criticality weights are refreshed from the callback every
    # retime_every accepted moves.
    if timing is not None:
        t_src = timing.conn_src
        t_dst = timing.conn_dst
        nconn = len(t_src)
        conns_of_block: List[List[int]] = [[] for _ in range(num_block_ids)]
        for ci in range(nconn):
            conns_of_block[t_src[ci]].append(ci)
            if t_dst[ci] != t_src[ci]:
                conns_of_block[t_dst[ci]].append(ci)

        def retime_weights() -> List[int]:
            crit = np.asarray(
                timing.criticality(block_x, block_y), dtype=np.float64
            )
            if crit.shape != (nconn,):
                raise ValueError(
                    f"timing criticality returned {crit.shape}, expected ({nconn},)"
                )
            q = np.rint(_WEIGHT_QUANTUM * timing.tradeoff * crit)
            return q.astype(np.int64).tolist()

        c_dist = []
        for ci in range(nconn):
            dx = block_x[t_src[ci]] - block_x[t_dst[ci]]
            dy = block_y[t_src[ci]] - block_y[t_dst[ci]]
            d = (dx if dx >= 0 else -dx) + (dy if dy >= 0 else -dy)
            c_dist.append(d if d > 0 else 1)
        cwq = retime_weights()
        timing_cost = sum(w * d for w, d in zip(cwq, c_dist))
        retime_every = timing.retime_every or max(1, moves_per_temp // 2)
        # The timing term is part of the annealed cost: fold it into the
        # temperature scale too.
        temperature = _initial_temperature(
            initial_cost + timing_cost, len(netlist.nets)
        )
    else:
        t_src = t_dst = []
        nconn = 0
        conns_of_block = []
        c_dist = []
        cwq = []
        timing_cost = 0
        retime_every = 0
    accepted_since_retime = 0
    t_scratch: List[Tuple[int, int]] = []

    RBUF = 1 << 14
    IMAX = 1 << 63
    # Draw the initial buffers as arrays (shared with the native kernel when
    # it is available); the Python loop consumes them as plain lists.
    ibuf_arr = gen.integers(0, IMAX, size=RBUF, dtype=np.int64)
    ibuf = ibuf_arr.tolist()
    ipos = 0
    ubuf_arr = gen.random(RBUF)
    ubuf = ubuf_arr.tolist()
    upos = 0

    def _bbox_after_move(
        nid: int, ox: int, oy: int, nx: int, ny: int
    ) -> Tuple[int, int, int, int, int, int, int, int]:
        xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax = bb[nid]
        if nx != ox:
            if (ox == xmin and cxmin == 1 and nx > xmin) or (
                ox == xmax and cxmax == 1 and nx < xmax
            ):
                xs = [block_x[b] for b in net_pins[nid]]
                xmin, xmax = min(xs), max(xs)
                cxmin, cxmax = xs.count(xmin), xs.count(xmax)
            else:
                if ox == xmin:
                    cxmin -= 1
                if ox == xmax:
                    cxmax -= 1
                if nx < xmin:
                    xmin, cxmin = nx, 1
                elif nx == xmin:
                    cxmin += 1
                if nx > xmax:
                    xmax, cxmax = nx, 1
                elif nx == xmax:
                    cxmax += 1
        if ny != oy:
            if (oy == ymin and cymin == 1 and ny > ymin) or (
                oy == ymax and cymax == 1 and ny < ymax
            ):
                ys = [block_y[b] for b in net_pins[nid]]
                ymin, ymax = min(ys), max(ys)
                cymin, cymax = ys.count(ymin), ys.count(ymax)
            else:
                if oy == ymin:
                    cymin -= 1
                if oy == ymax:
                    cymax -= 1
                if ny < ymin:
                    ymin, cymin = ny, 1
                elif ny == ymin:
                    cymin += 1
                if ny > ymax:
                    ymax, cymax = ny, 1
                elif ny == ymax:
                    cymax += 1
        return (xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax)

    def _bbox_rescan(nid: int) -> Tuple[int, int, int, int, int, int, int, int]:
        xs = [block_x[b] for b in net_pins[nid]]
        ys = [block_y[b] for b in net_pins[nid]]
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        return (xmin, xmax, ymin, ymax,
                xs.count(xmin), xs.count(xmax), ys.count(ymin), ys.count(ymax))

    # -- native (compiled-C) move loop -----------------------------------
    # Bit-identical twin of the Python while-loop below (see
    # repro.native.annealer): the C loop consumes the same PCG64 draw
    # buffers -- calling back out to refill them at the Python kernel's
    # exact refill points -- keeps every cost an exact int64, and runs the
    # Metropolis test through the same libm exp, so trajectories match
    # move for move.  Cooling, range-limit adaptation, re-timing, and the
    # exit tests stay here in Python.
    nat = annealer_kernel()
    if nat is not None:
        block_gsite_a = np.asarray(block_gsite, dtype=np.int64)
        block_x_a = np.asarray(block_x, dtype=np.int64)
        block_y_a = np.asarray(block_y, dtype=np.int64)
        occupant_a = np.asarray(
            [-1 if o is None else o for o in occupant], dtype=np.int64
        )
        pins_ptr, pins_flat = _csr_i64(net_pins)
        nb_ptr, nb_flat = _csr_i64(nets_of_block)
        dummy = np.zeros(1, dtype=np.int64)
        g0b = np.asarray(groups[0][0], dtype=np.int64)
        g0s = np.asarray(groups[0][1], dtype=np.int64)
        if num_groups > 1:
            g1b = np.asarray(groups[1][0], dtype=np.int64)
            g1s = np.asarray(groups[1][1], dtype=np.int64)
        else:
            g1b = g1s = dummy
        if timing is not None:
            t_src_a = np.asarray(t_src, dtype=np.int64)
            t_dst_a = np.asarray(t_dst, dtype=np.int64)
            cb_ptr, cb_flat = _csr_i64(conns_of_block)
            c_dist_a = np.asarray(c_dist, dtype=np.int64)
            cwq_a = np.asarray(cwq, dtype=np.int64)
        else:
            t_src_a = t_dst_a = cb_flat = c_dist_a = cwq_a = dummy
            cb_ptr = np.zeros(num_block_ids + 1, dtype=np.int64)
        istate = np.zeros(ISTATE_LEN, dtype=np.int64)
        _S = ISTATE
        istate[_S["total_cost"]] = total_cost
        istate[_S["timing_cost"]] = timing_cost
        nat_exc: List[BaseException] = []

        def _refill(kind: int) -> None:
            # Runs under repro_anneal_run; exceptions cannot cross the C
            # frame, so stash + abort, then re-raise once the call returns.
            try:
                if kind == 0:
                    ibuf_arr[:] = gen.integers(
                        0, IMAX, size=RBUF, dtype=np.int64
                    )
                elif kind == 1:
                    ubuf_arr[:] = gen.random(RBUF)
                else:  # retime: refresh the integer criticality weights
                    crit = np.asarray(
                        timing.criticality(
                            block_x_a.tolist(), block_y_a.tolist()
                        ),
                        dtype=np.float64,
                    )
                    if crit.shape != (nconn,):
                        raise ValueError(
                            f"timing criticality returned {crit.shape},"
                            f" expected ({nconn},)"
                        )
                    cwq_a[:] = np.rint(
                        _WEIGHT_QUANTUM * timing.tradeoff * crit
                    ).astype(np.int64)
            except BaseException as e:  # noqa: BLE001 -- re-raised below
                nat_exc.append(e)
                istate[_S["abort"]] = 1

        nat.bind(
            {
                "block_gsite": block_gsite_a, "block_x": block_x_a,
                "block_y": block_y_a, "occupant": occupant_a,
                "site_x": np.asarray(site_x, dtype=np.int64),
                "site_y": np.asarray(site_y, dtype=np.int64),
                "pins_ptr": pins_ptr, "pins": pins_flat,
                "nb_ptr": nb_ptr, "nb": nb_flat,
                "bb": np.array(bb, dtype=np.int64).reshape(num_nets * 8),
                "net_cost": np.asarray(net_cost, dtype=np.int64),
                "wq": np.asarray(wq, dtype=np.int64),
                "gblocks0": g0b, "gsites0": g0s,
                "gblocks1": g1b, "gsites1": g1s,
                "ibuf": ibuf_arr, "ubuf": ubuf_arr,
                "t_src": t_src_a, "t_dst": t_dst_a,
                "cb_ptr": cb_ptr, "cb_conns": cb_flat,
                "c_dist": c_dist_a, "cwq": cwq_a,
                "net_mark": np.zeros(num_nets, dtype=np.int64),
                "upd_nid": np.zeros(num_nets + 1, dtype=np.int64),
                "upd_bb": np.zeros(8 * (num_nets + 1), dtype=np.int64),
                "upd_cost": np.zeros(num_nets + 1, dtype=np.int64),
                "tsc_ci": np.zeros(nconn + 1, dtype=np.int64),
                "tsc_nd": np.zeros(nconn + 1, dtype=np.int64),
                "istate": istate,
            },
            {
                "nblk0": groups[0][2], "nsit0": groups[0][3],
                "nblk1": groups[1][2] if num_groups > 1 else 1,
                "nsit1": groups[1][3] if num_groups > 1 else 1,
                "num_groups": num_groups,
                "logic_group": int(logic_group),
                "width": width, "height": height, "rbuf": RBUF,
                "has_timing": int(timing is not None),
                "nconn": nconn, "retime_every": retime_every,
            },
            _refill,
        )
        while temperature_steps < 200:
            istate[_S["accepted_this_temp"]] = 0
            range2 = range_limit * 2
            rl = int(range_limit)
            if rl < 1:
                rl = 1
            span = 2 * rl + 1
            nat.run_temperature(
                moves_per_temp, max(temperature, 1e-9), range2, rl, span
            )
            if nat_exc:
                raise nat_exc[0]
            total_cost = int(istate[_S["total_cost"]])
            timing_cost = int(istate[_S["timing_cost"]])
            temperature_steps += 1
            acceptance = int(istate[_S["accepted_this_temp"]]) / max(
                1, moves_per_temp
            )
            tl_temperature.append(temperature)
            tl_cost.append(total_cost + timing_cost)
            tl_acceptance.append(acceptance)
            temperature = _cool(temperature, acceptance)
            range_limit = _next_range_limit(range_limit, acceptance, device_span)
            if temperature < 0.005 * (total_cost + timing_cost) / max(
                1, len(netlist.nets)
            ) or (acceptance < 0.01 and temperature_steps > 5):
                break
        moves_attempted = int(istate[_S["attempted"]])
        moves_accepted = int(istate[_S["accepted"]])
        istate_snapshot = istate_counters(istate)
        block_gsite = block_gsite_a.tolist()

    while nat is None and temperature_steps < 200:
        accepted_this_temp = 0
        range2 = range_limit * 2
        # Window half-span for the O(1) logic-site pick below.
        rl = int(range_limit)
        if rl < 1:
            rl = 1
        span = 2 * rl + 1
        for _ in range(moves_per_temp):
            # Up to 10 integer draws per move (group + block + site picks).
            if ipos + 10 > RBUF:
                ibuf = gen.integers(0, IMAX, size=RBUF, dtype=np.int64).tolist()
                ipos = 0
            if num_groups == 1:
                gi = 0
            else:
                gi = ibuf[ipos] & 1
                ipos += 1
            blocks, gsites, nblk, nsit = groups[gi]
            block = blocks[ibuf[ipos] % nblk]
            ipos += 1
            cur_g = block_gsite[block]
            cx = block_x[block]
            cy = block_y[block]
            if logic_group and gi == 0:
                # Logic sites form the (1..width, 1..height) grid in column-
                # major order, so a target inside the range-limit window is
                # picked in O(1) as a random offset -- no rejection loop.
                tx = cx + ibuf[ipos] % span - rl
                ipos += 1
                ty = cy + ibuf[ipos] % span - rl
                ipos += 1
                if tx < 1:
                    tx = 1
                elif tx > width:
                    tx = width
                if ty < 1:
                    ty = 1
                elif ty > height:
                    ty = height
                target_g = (tx - 1) * height + (ty - 1)
                if target_g == cur_g:
                    continue
            else:
                target_g = -1
                for _try in range(8):
                    tg = gsites[ibuf[ipos] % nsit]
                    ipos += 1
                    dx = site_x[tg] - cx
                    if dx < 0:
                        dx = -dx
                    dy = site_y[tg] - cy
                    if dy < 0:
                        dy = -dy
                    if dx + dy > range2:
                        continue
                    if tg != cur_g:
                        target_g = tg
                        break
                if target_g < 0:
                    continue
            moves_attempted += 1
            occ_block = occupant[target_g]
            nx = site_x[target_g]
            ny = site_y[target_g]

            block_x[block] = nx
            block_y[block] = ny
            if occ_block is not None:
                block_x[occ_block] = cx
                block_y[occ_block] = cy

            delta = 0
            updates: List[Tuple[int, Tuple[int, int, int, int, int, int, int, int], int]] = []
            if occ_block is None:
                # Common case (move into an empty site): inline the O(1)
                # bbox update; only a boundary shrink rescans the net's pins.
                for nid in nets_of_block[block]:
                    xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax = bb[nid]
                    if nx != cx:
                        if (cx == xmin and cxmin == 1 and nx > xmin) or (
                            cx == xmax and cxmax == 1 and nx < xmax
                        ):
                            pxs = [block_x[b] for b in net_pins[nid]]
                            xmin, xmax = min(pxs), max(pxs)
                            cxmin, cxmax = pxs.count(xmin), pxs.count(xmax)
                        else:
                            if cx == xmin:
                                cxmin -= 1
                            if cx == xmax:
                                cxmax -= 1
                            if nx < xmin:
                                xmin, cxmin = nx, 1
                            elif nx == xmin:
                                cxmin += 1
                            if nx > xmax:
                                xmax, cxmax = nx, 1
                            elif nx == xmax:
                                cxmax += 1
                    if ny != cy:
                        if (cy == ymin and cymin == 1 and ny > ymin) or (
                            cy == ymax and cymax == 1 and ny < ymax
                        ):
                            pys = [block_y[b] for b in net_pins[nid]]
                            ymin, ymax = min(pys), max(pys)
                            cymin, cymax = pys.count(ymin), pys.count(ymax)
                        else:
                            if cy == ymin:
                                cymin -= 1
                            if cy == ymax:
                                cymax -= 1
                            if ny < ymin:
                                ymin, cymin = ny, 1
                            elif ny == ymin:
                                cymin += 1
                            if ny > ymax:
                                ymax, cymax = ny, 1
                            elif ny == ymax:
                                cymax += 1
                    cost = wq[nid] * ((xmax - xmin) + (ymax - ymin))
                    delta += cost - net_cost[nid]
                    updates.append(
                        (nid, (xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax), cost)
                    )
            else:
                block_nets = nets_of_block[block]
                occ_nets = nets_of_block[occ_block]
                shared = nets_of_block_set[block] & nets_of_block_set[occ_block]
                for nid in block_nets:
                    if nid in shared:
                        nb = _bbox_rescan(nid)  # both endpoints moved
                    else:
                        nb = _bbox_after_move(nid, cx, cy, nx, ny)
                    cost = wq[nid] * ((nb[1] - nb[0]) + (nb[3] - nb[2]))
                    delta += cost - net_cost[nid]
                    updates.append((nid, nb, cost))
                for nid in occ_nets:
                    if nid in shared:
                        continue
                    nb = _bbox_after_move(nid, nx, ny, cx, cy)
                    cost = wq[nid] * ((nb[1] - nb[0]) + (nb[3] - nb[2]))
                    delta += cost - net_cost[nid]
                    updates.append((nid, nb, cost))

            if timing is not None:
                # Re-price the moved blocks' connections against the
                # tentative coordinates (a connection both blocks share is
                # handled once, in the first loop).
                del t_scratch[:]
                for ci in conns_of_block[block]:
                    s = t_src[ci]
                    d2 = t_dst[ci]
                    dx = block_x[s] - block_x[d2]
                    if dx < 0:
                        dx = -dx
                    dy = block_y[s] - block_y[d2]
                    if dy < 0:
                        dy = -dy
                    nd = dx + dy
                    if nd == 0:
                        nd = 1
                    delta += cwq[ci] * (nd - c_dist[ci])
                    t_scratch.append((ci, nd))
                if occ_block is not None:
                    for ci in conns_of_block[occ_block]:
                        s = t_src[ci]
                        d2 = t_dst[ci]
                        if s == block or d2 == block:
                            continue  # shared connection, re-priced above
                        dx = block_x[s] - block_x[d2]
                        if dx < 0:
                            dx = -dx
                        dy = block_y[s] - block_y[d2]
                        if dy < 0:
                            dy = -dy
                        nd = dx + dy
                        if nd == 0:
                            nd = 1
                        delta += cwq[ci] * (nd - c_dist[ci])
                        t_scratch.append((ci, nd))

            if delta <= 0:
                accept = True
            else:
                if upos >= RBUF:
                    ubuf = gen.random(RBUF).tolist()
                    upos = 0
                accept = ubuf[upos] < exp(-delta / max(temperature, 1e-9))
                upos += 1
            if accept:
                for nid, nb, cost in updates:
                    bb[nid] = nb
                    total_cost += cost - net_cost[nid]
                    net_cost[nid] = cost
                occupant[target_g] = block
                occupant[cur_g] = occ_block
                block_gsite[block] = target_g
                if occ_block is not None:
                    block_gsite[occ_block] = cur_g
                moves_accepted += 1
                accepted_this_temp += 1
                if timing is not None:
                    for ci, nd in t_scratch:
                        timing_cost += cwq[ci] * (nd - c_dist[ci])
                        c_dist[ci] = nd
                    accepted_since_retime += 1
                    if accepted_since_retime >= retime_every:
                        # Re-time against the live coordinates: fresh
                        # integer weights, total re-priced (distances are
                        # maintained incrementally and stay exact).
                        accepted_since_retime = 0
                        cwq = retime_weights()
                        timing_cost = 0
                        for ci in range(nconn):
                            timing_cost += cwq[ci] * c_dist[ci]
            else:
                block_x[block] = cx
                block_y[block] = cy
                if occ_block is not None:
                    block_x[occ_block] = nx
                    block_y[occ_block] = ny

        temperature_steps += 1
        acceptance = accepted_this_temp / max(1, moves_per_temp)
        tl_temperature.append(temperature)
        tl_cost.append(total_cost + timing_cost)
        tl_acceptance.append(acceptance)
        temperature = _cool(temperature, acceptance)
        range_limit = _next_range_limit(range_limit, acceptance, device_span)
        if temperature < 0.005 * (total_cost + timing_cost) / max(
            1, len(netlist.nets)
        ) or (acceptance < 0.01 and temperature_steps > 5):
            break

    for bid in range(num_block_ids):
        gi = block_gsite[bid]
        if gi >= 0:
            placement.block_site[bid] = all_sites[gi]

    telemetry = _placement_telemetry(
        "batched", tl_temperature, tl_cost, tl_acceptance,
        moves_attempted, moves_accepted, native=nat is not None,
    )
    if nat is not None:
        # Full counter out-param snapshot from the C kernel (see
        # repro.native.annealer.istate_counters).
        telemetry["istate"] = istate_snapshot
    if weighted:
        # Report the unweighted exact-int HPWL (the metric every consumer
        # compares across kernels); the annealed weighted objective rides
        # along separately.
        return PlacementResult(
            placement=placement,
            cost=hpwl(netlist, placement),
            initial_cost=initial_hpwl,
            moves_attempted=moves_attempted,
            moves_accepted=moves_accepted,
            temperature_steps=temperature_steps,
            objective_cost=total_cost + timing_cost,
            telemetry=telemetry,
        )
    return PlacementResult(
        placement=placement,
        cost=total_cost,
        initial_cost=initial_cost,
        moves_attempted=moves_attempted,
        moves_accepted=moves_accepted,
        temperature_steps=temperature_steps,
        telemetry=telemetry,
    )


# -- reference kernel (original implementation, benchmark baseline) -------------


class _AnnealingState:
    """Book-keeping for full-recompute HPWL evaluation (reference kernel)."""

    def __init__(self, netlist: PhysicalNetlist, placement: Placement) -> None:
        self.netlist = netlist
        self.placement = placement
        self.nets_of_block: Dict[int, List[int]] = {b.id: [] for b in netlist.blocks}
        for net in netlist.nets:
            for b in {net.driver, *net.sinks}:
                self.nets_of_block[b].append(net.id)
        self.net_cost: List[int] = [0] * len(netlist.nets)
        for net in netlist.nets:
            self.net_cost[net.id] = self._compute_net_cost(net.id)
        self.total_cost = sum(self.net_cost)

    def _compute_net_cost(self, net_id: int) -> int:
        net = self.netlist.nets[net_id]
        blocks = [net.driver] + net.sinks
        xs = [self.placement.block_site[b].x for b in blocks]
        ys = [self.placement.block_site[b].y for b in blocks]
        return _net_hpwl(xs, ys)

    def delta_for_nets(self, net_ids: List[int]) -> Tuple[int, Dict[int, int]]:
        new_costs = {nid: self._compute_net_cost(nid) for nid in net_ids}
        delta = sum(new_costs[nid] - self.net_cost[nid] for nid in net_ids)
        return delta, new_costs

    def commit(self, new_costs: Dict[int, int]) -> None:
        for nid, cost in new_costs.items():
            self.total_cost += cost - self.net_cost[nid]
            self.net_cost[nid] = cost


def _place_reference(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
) -> PlacementResult:
    """Original annealing loop: recompute affected nets' HPWL from pin lists."""
    rng = random.Random(seed)
    placement = random_placement(netlist, arch, seed=seed)
    state = _AnnealingState(netlist, placement)
    initial_cost = state.total_cost

    logic_blocks = [b.id for b in netlist.blocks if b.needs_logic_site]
    io_blocks = [b.id for b in netlist.blocks if b.kind == "io"]
    logic_sites = list(arch.clb_sites())
    io_sites = list(arch.io_sites())

    site_occupant: Dict[Tuple, Optional[int]] = {}
    for s in logic_sites + io_sites:
        site_occupant[s.as_tuple()] = None
    for bid, site in placement.block_site.items():
        site_occupant[site.as_tuple()] = bid

    movable_groups = []
    if logic_blocks:
        movable_groups.append(("logic", logic_blocks, logic_sites))
    if io_blocks:
        movable_groups.append(("io", io_blocks, io_sites))
    if not movable_groups:
        return PlacementResult(placement, 0, 0, 0, 0, 0)

    num_blocks = len(logic_blocks) + len(io_blocks)
    moves_per_temp = _moves_per_temperature(num_blocks, effort, inner_num)
    temperature = _initial_temperature(initial_cost, len(netlist.nets))
    device_span = float(max(arch.width, arch.height))
    range_limit = device_span

    moves_attempted = 0
    moves_accepted = 0
    temperature_steps = 0
    tl_temperature: List[float] = []
    tl_cost: List[int] = []
    tl_acceptance: List[float] = []

    def pick_move():
        group = movable_groups[rng.randrange(len(movable_groups))]
        _, blocks, sites = group
        block = blocks[rng.randrange(len(blocks))]
        cur = placement.block_site[block]
        for _ in range(8):
            target = sites[rng.randrange(len(sites))]
            if target.kind != cur.kind:
                continue
            if abs(target.x - cur.x) + abs(target.y - cur.y) > range_limit * 2:
                continue
            if target.as_tuple() != cur.as_tuple():
                return block, cur, target
        return None

    while temperature_steps < 200:
        accepted_this_temp = 0
        for _ in range(moves_per_temp):
            move = pick_move()
            if move is None:
                continue
            block, cur, target = move
            moves_attempted += 1
            occupant = site_occupant[target.as_tuple()]

            affected = set(state.nets_of_block[block])
            if occupant is not None:
                affected.update(state.nets_of_block[occupant])

            # tentatively apply
            placement.block_site[block] = target
            if occupant is not None:
                placement.block_site[occupant] = cur
            delta, new_costs = state.delta_for_nets(list(affected))

            accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9))
            if accept:
                state.commit(new_costs)
                site_occupant[target.as_tuple()] = block
                site_occupant[cur.as_tuple()] = occupant
                moves_accepted += 1
                accepted_this_temp += 1
            else:
                placement.block_site[block] = cur
                if occupant is not None:
                    placement.block_site[occupant] = target

        temperature_steps += 1
        acceptance = accepted_this_temp / max(1, moves_per_temp)
        tl_temperature.append(temperature)
        tl_cost.append(state.total_cost)
        tl_acceptance.append(acceptance)
        temperature = _cool(temperature, acceptance)
        range_limit = _next_range_limit(range_limit, acceptance, device_span)
        if temperature < 0.005 * state.total_cost / max(1, len(netlist.nets)) or (
            acceptance < 0.01 and temperature_steps > 5
        ):
            break

    return PlacementResult(
        placement=placement,
        cost=state.total_cost,
        initial_cost=initial_cost,
        moves_attempted=moves_attempted,
        moves_accepted=moves_accepted,
        temperature_steps=temperature_steps,
        telemetry=_placement_telemetry(
            "reference", tl_temperature, tl_cost, tl_acceptance,
            moves_attempted, moves_accepted,
        ),
    )
