"""TPaR-style physical CAD: placement (TPLACE), routing (TROUTE), metrics, timing."""

from .cache import CacheIOError, PaRCache
from .flow import (
    PaRResult,
    best_placement,
    cached_route,
    place_and_route,
    placement_sweep,
)
from .forest import RouteForest, build_route_forest
from .metrics import (
    ChannelWidthError,
    MinChannelWidthResult,
    channel_occupancy,
    minimum_channel_width,
)
from .netlist import Block, Net, PhysicalNetlist, from_mapped_network
from .placement import Placement, PlacementResult, hpwl, place, random_placement
from .routing import NetRoute, RoutingResult, route, route_resilient
from .timing import TimingReport, analyze_timing

__all__ = [
    "PaRCache",
    "CacheIOError",
    "ChannelWidthError",
    "route_resilient",
    "PaRResult",
    "place_and_route",
    "cached_route",
    "placement_sweep",
    "best_placement",
    "RouteForest",
    "build_route_forest",
    "MinChannelWidthResult",
    "channel_occupancy",
    "minimum_channel_width",
    "Block",
    "Net",
    "PhysicalNetlist",
    "from_mapped_network",
    "Placement",
    "PlacementResult",
    "hpwl",
    "place",
    "random_placement",
    "NetRoute",
    "RoutingResult",
    "route",
    "TimingReport",
    "analyze_timing",
]
