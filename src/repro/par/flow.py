"""TPaR flow driver: placement + routing + metrics for a mapped network.

This is the physical half of the paper's evaluation: given a technology
mapped Processing Element (conventional or fully parameterized), it sizes an
FPGA, places the blocks, routes the nets and reports the quantities of
Table I (wirelength, channel width, logic depth) plus timing estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..fpga.architecture import FPGAArchitecture, auto_size
from ..fpga.device import Device, build_device
from ..techmap.mapping import MappedNetwork
from .metrics import MinChannelWidthResult, channel_occupancy, minimum_channel_width
from .netlist import PhysicalNetlist, from_mapped_network
from .placement import PlacementResult, place
from .routing import RoutingResult, route
from .timing import TimingReport, analyze_timing

__all__ = ["PaRResult", "place_and_route"]


@dataclass
class PaRResult:
    """Complete place-and-route outcome for one mapped network."""

    network: MappedNetwork
    netlist: PhysicalNetlist
    device: Device
    placement: PlacementResult
    routing: RoutingResult
    timing: TimingReport
    min_channel_width: Optional[MinChannelWidthResult] = None

    @property
    def wirelength(self) -> int:
        return self.routing.wirelength

    @property
    def logic_depth(self) -> int:
        return self.timing.logic_depth

    def summary(self) -> Dict[str, float]:
        """Key metrics as a flat dict (used by the Table I benchmark)."""
        out = {
            "luts": self.network.num_luts(),
            "tluts": self.network.num_tluts(),
            "tcons": self.network.num_tcons(),
            "logic_depth": self.logic_depth,
            "wirelength": self.wirelength,
            "channel_width": self.device.arch.channel_width,
            "critical_path_ns": self.timing.critical_path_ns,
            "placement_hpwl": self.placement.cost,
            "array_side": self.device.arch.width,
            "routed": self.routing.success,
        }
        if self.min_channel_width is not None:
            out["min_channel_width"] = self.min_channel_width.min_channel_width
        return out


def place_and_route(
    network: MappedNetwork,
    arch: Optional[FPGAArchitecture] = None,
    channel_width: int = 10,
    placement_effort: float = 1.0,
    router_iterations: int = 25,
    find_min_channel_width: bool = False,
    min_cw_bounds: tuple = (2, 32),
    seed: int = 0,
) -> PaRResult:
    """Run the full TPaR flow (TPLACE + TROUTE) on a mapped network.

    Parameters
    ----------
    network:
        Output of :func:`~repro.techmap.map_conventional` or
        :func:`~repro.techmap.map_parameterized`.
    arch:
        Target architecture.  When omitted the array is auto-sized for the
        design at the requested ``channel_width`` (the paper's experiments use
        the VPR auto-sizing with W = 10).
    placement_effort:
        Scales annealing effort; lower is faster but noisier.
    find_min_channel_width:
        Additionally run the binary search for the minimum channel width
        (Table I's CW column).  This re-routes the design several times.
    """
    netlist = from_mapped_network(network)
    num_logic = netlist.num_logic_blocks() + netlist.num_ff_blocks()
    num_ios = netlist.num_io_blocks()
    if arch is None:
        arch = auto_size(num_logic, num_ios, channel_width=channel_width)
    device = build_device(arch)

    placement = place(netlist, arch, seed=seed, effort=placement_effort)
    routing = route(netlist, placement.placement, device, max_iterations=router_iterations)
    timing = analyze_timing(network, netlist, routing, device)

    min_cw = None
    if find_min_channel_width:
        min_cw = minimum_channel_width(
            netlist, placement.placement, arch, low=min_cw_bounds[0], high=min_cw_bounds[1]
        )

    return PaRResult(
        network=network,
        netlist=netlist,
        device=device,
        placement=placement,
        routing=routing,
        timing=timing,
        min_channel_width=min_cw,
    )
