"""TPaR flow driver: placement + routing + metrics for a mapped network.

This is the physical half of the paper's evaluation: given a technology
mapped Processing Element (conventional or fully parameterized), it sizes an
FPGA, places the blocks, routes the nets and reports the quantities of
Table I (wirelength, channel width, logic depth) plus timing estimates.

Two parallel/caching facilities ride on top of the single-shot flow:

* :func:`placement_sweep` anneals one netlist across many seeds -- in a
  ``concurrent.futures`` process pool when ``workers`` > 1 -- and memoizes
  each (netlist, arch, seed) placement in an on-disk
  :class:`~repro.par.cache.PaRCache`, so multi-seed quality baselines are
  computed once per machine;
* :func:`place_and_route` forwards ``workers``/``cache`` to the
  minimum-channel-width search (see :mod:`repro.par.metrics`), which is the
  dominant cost of the Table I/II benchmarks.

Since PR 4 the flow also carries the timing axis: every result embeds a
full STA (:attr:`PaRResult.sta`, from :mod:`repro.timing`) and
``objective="timing"`` switches placement and routing to the
criticality-driven cost functions (:func:`timing_driven_placement`,
``route(objective="timing")``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fpga.architecture import FPGAArchitecture, auto_size
from ..fpga.device import Device, build_device
from ..obs.trace import span, traced
from ..techmap.mapping import MappedNetwork
from ..timing.delays import structural_edge_delays
from ..timing.graph import build_timing_graph
from ..timing.sta import (
    TimingAnalysis,
    analyze,
    net_criticality_from_placement,
    scan_edge_criticality,
)
from ..util.resilience import FaultInjected, count_events, inject, record_event
from .cache import PaRCache
from .metrics import MinChannelWidthResult, minimum_channel_width
from .netlist import PhysicalNetlist, from_mapped_network
from .placement import Placement, PlacementResult, TimingCost, place
from .routing import (
    AUTO_KERNEL,
    RoutingResult,
    route_resilient,
    routing_from_payload,
    routing_to_payload,
)
from .timing import TimingReport, report_from_analysis

__all__ = [
    "PaRResult",
    "place_and_route",
    "cached_route",
    "timing_driven_placement",
    "placement_sweep",
    "best_placement",
]


@dataclass
class PaRResult:
    """Complete place-and-route outcome for one mapped network."""

    network: MappedNetwork
    netlist: PhysicalNetlist
    device: Device
    placement: PlacementResult
    routing: RoutingResult
    timing: TimingReport
    min_channel_width: Optional[MinChannelWidthResult] = None
    #: full STA over the routed design (arrival/slack/criticality arrays,
    #: critical-path breakdown); the legacy ``timing`` report above is
    #: derived from it.
    sta: Optional[TimingAnalysis] = None
    objective: str = "wirelength"
    #: structured recovery log: every fault hit, retry, cache fallback,
    #: pool resubmit and kernel degradation the flow absorbed while
    #: producing this result (see RESILIENCE.md for the event taxonomy).
    #: Empty on a fault-free run.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: per-run observability snapshot (see OBSERVABILITY.md): the routing
    #: and placement convergence telemetry, the cache counters that served
    #: this run, and per-kind recovery-event counts.  Never serialized into
    #: cache payloads; ``None`` only for results built outside
    #: :func:`place_and_route`.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def wirelength(self) -> int:
        return self.routing.wirelength

    @property
    def logic_depth(self) -> int:
        return self.timing.logic_depth

    @property
    def degraded(self) -> bool:
        """True when the routing kernel degradation chain was taken."""
        return count_events(self.events, "degraded-kernel") > 0

    def summary(self) -> Dict[str, float]:
        """Key metrics as a flat dict (used by the Table I benchmark)."""
        out = {
            "luts": self.network.num_luts(),
            "tluts": self.network.num_tluts(),
            "tcons": self.network.num_tcons(),
            "logic_depth": self.logic_depth,
            "wirelength": self.wirelength,
            "channel_width": self.device.arch.channel_width,
            "critical_path_ns": self.timing.critical_path_ns,
            "placement_hpwl": self.placement.cost,
            "array_side": self.device.arch.width,
            "routed": self.routing.success,
            "objective": self.objective,
            "recovery_events": len(self.events),
            "degraded_kernel": count_events(self.events, "degraded-kernel"),
        }
        if self.sta is not None:
            out["worst_slack_ns"] = self.sta.summary()["worst_slack_ns"]
        if self.min_channel_width is not None:
            out["min_channel_width"] = self.min_channel_width.min_channel_width
        cache_stats = (self.telemetry or {}).get("cache")
        if cache_stats is not None:
            out["cache_hits"] = cache_stats["hits"]
            out["cache_misses"] = cache_stats["misses"]
            out["cache_hit_rate"] = cache_stats["hit_rate"]
        return out


@traced("par.cached_route")
def cached_route(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    cache: Optional[PaRCache] = None,
    max_iterations: int = 25,
    kernel: str = "auto",
    objective: str = "wirelength",
    criticality_exponent: float = 1.0,
    deadline_s: Optional[float] = None,
    degrade: bool = True,
    events: Optional[List[Dict[str, Any]]] = None,
) -> RoutingResult:
    """Resilient :func:`~repro.par.routing.route` with on-disk memoization.

    The cache value carries the flat route forest next to the metrics, so a
    hit re-hydrates the *full* :class:`RoutingResult` -- route trees
    included -- instead of re-routing; reconfiguration experiments that
    re-run the same (netlist, placement, architecture) triple pay the
    route once per machine.  Kernels without a forest (``fast`` /
    ``reference``) and corrupt or pre-forest cache entries degrade to a
    plain route call.  Routing is deterministic for fixed inputs, so a
    re-hydrated result is the one a fresh route would return.

    Failure semantics (all recorded into ``events``): a corrupt cache
    entry or a bad forest payload falls back to a fresh route
    (``cache-fallback``); the route itself runs under
    :func:`~repro.par.routing.route_resilient` with a ``deadline_s``
    per-kernel budget and the astar->fast degradation chain (wavefront
    only enters the chain when explicitly requested).
    A result produced by a *degraded* kernel is never stored under the
    requested kernel's key, so one bad run cannot poison the cache for
    fault-free reruns.
    """
    resolved = kernel
    if resolved == "auto":
        resolved = AUTO_KERNEL
    key = None
    if cache is not None and kernel not in ("fast", "reference"):
        key = PaRCache.route_key(
            netlist,
            placement,
            device.arch,
            device.arch.channel_width,
            max_iterations,
            kernel,
            objective=objective,
            tag=f"x{criticality_exponent}" if objective == "timing" else "",
        )
        hit = cache.get(key, events=events)
        if hit is not None:
            result = None
            if inject("cache.hydrate") is None:
                result = routing_from_payload(hit)
            if result is not None and (
                result.kernel is None or result.kernel == resolved
            ):
                # Re-hydrated results carry no convergence arrays (those are
                # never serialized); mark the provenance instead.
                result.telemetry = {"from_cache": True, "kernel": result.kernel}
                return result
            # Entry exists but cannot be trusted (corrupt forest payload,
            # injected hydration fault, or a kernel mismatch from a
            # degraded historic write): route fresh and overwrite it.
            record_event(events, "cache-fallback", site="cache.hydrate", key=key)
    result = route_resilient(
        netlist,
        placement,
        device,
        max_iterations=max_iterations,
        kernel=kernel,
        objective=objective,
        criticality_exponent=criticality_exponent,
        deadline_s=deadline_s,
        degrade=degrade,
        events=events,
    )
    if key is not None and result.kernel == resolved:
        payload = routing_to_payload(result)
        if payload is not None:
            cache.put(key, payload, events=events)
    return result


@traced("par.flow")
def place_and_route(
    network: MappedNetwork,
    arch: Optional[FPGAArchitecture] = None,
    channel_width: int = 10,
    placement_effort: float = 1.0,
    router_iterations: int = 25,
    find_min_channel_width: bool = False,
    min_cw_bounds: tuple = (2, 32),
    seed: int = 0,
    placement_kernel: Optional[str] = None,
    route_kernel: str = "auto",
    min_cw_route_kernel: str = "auto",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
    objective: str = "wirelength",
    timing_tradeoff: Optional[float] = None,
    timing_passes: int = 2,
    timing_placer: str = "incremental",
    route_deadline_s: Optional[float] = None,
) -> PaRResult:
    """Run the full TPaR flow (TPLACE + TROUTE) on a mapped network.

    Parameters
    ----------
    network:
        Output of :func:`~repro.techmap.map_conventional` or
        :func:`~repro.techmap.map_parameterized`.
    arch:
        Target architecture.  When omitted the array is auto-sized for the
        design at the requested ``channel_width`` (the paper's experiments use
        the VPR auto-sizing with W = 10).
    placement_effort:
        Scales annealing effort; lower is faster but noisier.
    placement_kernel:
        Annealing kernel; default ``incremental`` under the wirelength
        objective, ``batched`` under the timing objective (the only kernel
        that accepts per-net weights).
    find_min_channel_width:
        Additionally run the binary search for the minimum channel width
        (Table I's CW column).  This re-routes the design several times;
        ``workers`` parallelizes the probes and ``cache`` memoizes them
        (defaults to ``PaRCache.from_env()``).  The probes use
        ``min_cw_route_kernel`` (default ``auto``, resolving to the scalar
        astar kernel below paper scale): widths below the minimum are
        non-convergent by construction, which is the scalar kernel's fast
        case -- see :func:`repro.par.metrics.minimum_channel_width`.
    objective:
        ``"wirelength"`` (the seed behavior) or ``"timing"``: placement runs
        :func:`timing_driven_placement` (criticality-weighted annealing,
        incremental-STA by default -- ``timing_placer`` selects the mode)
        and routing runs the VPR-style blended cost
        ``crit * delay + (1 - crit) * congestion`` with per-iteration
        criticality updates over the flat route forest.
        ``timing_tradeoff`` scales the net weights, ``timing_passes`` the
        number of re-weighting anneals of the ``candidates`` placer mode.
        Every result carries the full STA in :attr:`PaRResult.sta` either
        way.

    With a ``cache`` (or ``REPRO_PAR_CACHE`` set) the main route is served
    through :func:`cached_route`: repeated flows over the same placed
    design re-hydrate their route trees from disk instead of re-routing.

    The flow is *resilient*: cache rot falls back to recomputation, a
    crashed pool worker in the min-channel-width search resubmits its
    probes serially, and ``route_deadline_s`` bounds each routing kernel's
    wall time with automatic degradation down the
    astar->fast chain.  Every recovery taken is recorded in
    :attr:`PaRResult.events`; a fault-free run has an empty list and is
    bit-identical to the pre-resilience flow.
    """
    if objective not in ("wirelength", "timing"):
        raise ValueError(f"unknown PAR objective {objective!r}")
    if placement_kernel is None:
        placement_kernel = "batched" if objective == "timing" else "incremental"
    netlist = from_mapped_network(network)
    num_logic = netlist.num_logic_blocks() + netlist.num_ff_blocks()
    num_ios = netlist.num_io_blocks()
    if arch is None:
        arch = auto_size(num_logic, num_ios, channel_width=channel_width)
    device = build_device(arch)
    if cache is None:
        cache = PaRCache.from_env()

    if objective == "timing" and placement_kernel == "batched":
        placement = timing_driven_placement(
            netlist,
            arch,
            seed=seed,
            effort=placement_effort,
            tradeoff=timing_tradeoff,
            passes=timing_passes,
            mode=timing_placer,
        )
    else:
        placement = place(
            netlist,
            arch,
            seed=seed,
            effort=placement_effort,
            kernel=placement_kernel,
        )
    events: List[Dict[str, Any]] = []
    routing = cached_route(
        netlist,
        placement.placement,
        device,
        cache=cache,
        max_iterations=router_iterations,
        kernel=route_kernel,
        objective=objective,
        criticality_exponent=2.0 if objective == "timing" else 1.0,
        deadline_s=route_deadline_s,
        events=events,
    )
    sta = analyze(netlist, routing, device, placement=placement.placement)
    timing = report_from_analysis(sta, network, routing, device)

    min_cw = None
    if find_min_channel_width:
        min_cw = minimum_channel_width(
            netlist,
            placement.placement,
            arch,
            low=min_cw_bounds[0],
            high=min_cw_bounds[1],
            route_kernel=min_cw_route_kernel,
            workers=workers,
            cache=cache,
        )
        events.extend(min_cw.events)

    # Per-run observability snapshot: the kernels' convergence telemetry,
    # the cache counters, and the recovery events folded to per-kind counts.
    telemetry: Dict[str, Any] = {
        "route": routing.telemetry,
        "place": placement.telemetry,
    }
    if cache is not None:
        cache_stats: Dict[str, Any] = dict(cache.stats())
        cache_stats["hit_rate"] = cache.hit_rate()
        telemetry["cache"] = cache_stats
    if events:
        by_kind: Dict[str, int] = {}
        for ev in events:
            kind = ev.get("event", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        telemetry["events"] = by_kind

    return PaRResult(
        network=network,
        netlist=netlist,
        device=device,
        placement=placement,
        routing=routing,
        timing=timing,
        min_channel_width=min_cw,
        sta=sta,
        objective=objective,
        events=events,
        telemetry=telemetry,
    )


#: Default criticality tradeoff per placer mode.  The incremental mode's
#: per-connection ``crit * distance`` term is re-timed in the loop, so a
#: stale weight decays as soon as its connection stops being critical --
#: it tolerates (and measures best at) a sharper pull than the frozen
#: between-anneal net weights of the candidates mode.
_MODE_TRADEOFF = {"incremental": 4.0, "candidates": 3.0}


def timing_driven_placement(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
    tradeoff: Optional[float] = None,
    passes: int = 2,
    exponent: float = 2.0,
    mode: str = "incremental",
    retime_every: Optional[int] = None,
) -> PlacementResult:
    """Criticality-driven annealing; incremental-STA by default.

    ``mode="incremental"`` (default) is the VPR-style incremental-STA
    placer: **one** ``batched`` anneal whose objective is plain HPWL plus a
    per-connection ``criticality * distance`` term over the timing graph's
    flat edge arrays (:class:`repro.par.placement.TimingCost`).  Every
    ``retime_every`` accepted moves (default: half a temperature step) the
    live block coordinates feed a placement-estimate STA
    (:func:`repro.timing.sta.scan_edge_criticality`, pure NumPy) and the
    per-connection weights are refreshed in place -- criticality chases
    the anneal instead of being frozen between candidate anneals, and each
    *sink* is priced by its own slack rather than by its net's worst one.
    One anneal replaces the candidate recipe's four (~0.3x the placement
    time, measured in ``BENCH_hotpaths.json`` and gated by
    ``check_quality.py``).

    ``mode="candidates"`` is PR 4's recipe, kept as the comparison
    baseline: anneal an unweighted candidate, a structurally-weighted
    candidate and ``passes`` re-weighted candidates (net-level weights,
    criticalities frozen *between* anneals), then pick the best estimated
    critical path.

    ``tradeoff`` defaults per mode (see ``_MODE_TRADEOFF``).
    """
    if tradeoff is None:
        tradeoff = _MODE_TRADEOFF.get(mode, 3.0)
    graph = build_timing_graph(netlist, arch.lut_delay_ns)

    def estimate(result: PlacementResult) -> Tuple[float, List[float]]:
        return net_criticality_from_placement(graph, result.placement, arch, exponent=exponent)

    def fold_structural() -> np.ndarray:
        _dmax, crit = scan_edge_criticality(graph, structural_edge_delays(graph, arch))
        if exponent != 1.0:
            crit = crit**exponent
        net_crit = np.zeros(len(netlist.nets))
        if graph.num_edges:
            np.maximum.at(net_crit, graph.edge_net, crit)
        return net_crit

    if mode == "incremental":

        def conn_criticality(block_x: List[int], block_y: List[int]) -> np.ndarray:
            from ..timing.delays import estimated_edge_delays_from_coords

            delays = estimated_edge_delays_from_coords(graph, block_x, block_y, arch)[0]
            _cp, crit = scan_edge_criticality(graph, delays)
            return crit**exponent if exponent != 1.0 else crit

        return place(
            netlist,
            arch,
            seed=seed,
            effort=effort,
            inner_num=inner_num,
            kernel="batched",
            timing=TimingCost(
                conn_src=graph.edge_src.tolist(),
                conn_dst=graph.edge_dst.tolist(),
                criticality=conn_criticality,
                tradeoff=tradeoff,
                retime_every=retime_every,
            ),
        )

    if mode != "candidates":
        raise ValueError(f"unknown timing placement mode {mode!r}")

    candidates: List[Tuple[float, PlacementResult]] = []
    base = place(netlist, arch, seed=seed, effort=effort, inner_num=inner_num, kernel="batched")
    best_cp, best_crit = estimate(base)
    candidates.append((best_cp, base))

    struct_w = [1.0 + tradeoff * c for c in fold_structural()]
    cand = place(
        netlist,
        arch,
        seed=seed,
        effort=effort,
        inner_num=inner_num,
        kernel="batched",
        net_weights=struct_w,
    )
    cp, crit = estimate(cand)
    if cp < best_cp:
        best_cp, best_crit = cp, crit
    candidates.append((cp, cand))

    for i in range(1, passes + 1):
        weights = [1.0 + tradeoff * c for c in best_crit]
        cand = place(
            netlist,
            arch,
            seed=seed + 1000 * i,
            effort=effort,
            inner_num=inner_num,
            kernel="batched",
            net_weights=weights,
        )
        cp, crit = estimate(cand)
        if cp < best_cp:
            best_cp, best_crit = cp, crit
        candidates.append((cp, cand))

    return min(candidates, key=lambda t: t[0])[1]


def _place_seed_task(args: Tuple) -> Tuple[int, Dict]:
    """Pool worker: anneal one seed, return JSON-serializable placement data."""
    netlist, arch, seed, effort, inner_num, kernel = args
    fault = inject("sweep.place")
    if fault == "crash":
        # Simulated hard worker death: kills the process without unwinding,
        # which the parent sees as a BrokenProcessPool.
        os._exit(13)
    if fault is not None:
        raise FaultInjected("sweep.place", kind=fault)
    result = place(netlist, arch, seed=seed, effort=effort, inner_num=inner_num, kernel=kernel)
    return seed, _placement_payload(result)


def _placement_payload(result: PlacementResult) -> Dict:
    return {
        "cost": result.cost,
        "initial_cost": result.initial_cost,
        "moves_attempted": result.moves_attempted,
        "moves_accepted": result.moves_accepted,
        "temperature_steps": result.temperature_steps,
        "sites": {
            str(bid): [s.x, s.y, s.kind, s.subtile]
            for bid, s in result.placement.block_site.items()
        },
    }


def _placement_from_payload(payload: Dict) -> PlacementResult:
    from ..fpga.architecture import Site

    placement = Placement(
        {
            int(bid): Site(x=v[0], y=v[1], kind=v[2], subtile=v[3])
            for bid, v in payload["sites"].items()
        }
    )
    return PlacementResult(
        placement=placement,
        cost=int(payload["cost"]),
        initial_cost=int(payload["initial_cost"]),
        moves_attempted=int(payload["moves_attempted"]),
        moves_accepted=int(payload["moves_accepted"]),
        temperature_steps=int(payload["temperature_steps"]),
    )


def placement_sweep(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seeds: Sequence[int],
    effort: float = 1.0,
    inner_num: float = 1.0,
    kernel: str = "batched",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
    events: Optional[List[Dict[str, Any]]] = None,
) -> List[PlacementResult]:
    """Anneal ``netlist`` once per seed, in parallel, with on-disk memoization.

    Returns one :class:`PlacementResult` per seed, in ``seeds`` order.  Each
    (netlist, arch, seed, effort, kernel) combination is placed at most once
    per cache directory; repeated sweeps (quality baselines, benchmark
    harness re-runs) are served from disk.

    A worker that crashes or raises does not lose the sweep: its seeds are
    resubmitted *serially* in the parent process (recorded as
    ``pool-failure`` + ``serial-resubmit`` events), and annealing is
    deterministic per seed, so the recovered sweep equals a ``workers=1``
    run.
    """
    if cache is None:
        cache = PaRCache.from_env()
    results: Dict[int, PlacementResult] = {}
    todo: List[int] = []
    keys: Dict[int, str] = {}
    for seed in seeds:
        if cache is not None:
            keys[seed] = PaRCache.place_key(netlist, arch, seed, effort, inner_num, kernel)
            hit = cache.get(keys[seed], events=events)
            if hit is not None:
                results[seed] = _placement_from_payload(hit)
                continue
        todo.append(seed)

    tasks = [(netlist, arch, seed, effort, inner_num, kernel) for seed in todo]
    outcomes: List[Tuple[int, Dict]] = []
    failed: List[Tuple] = []
    if workers and workers > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            futures = [(pool.submit(_place_seed_task, task), task) for task in tasks]
            for future, task in futures:
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    # Worker crash (BrokenProcessPool), injected fault, or a
                    # genuine placement error: defer to the serial pass.  A
                    # deterministic error reproduces there, now with a
                    # usable traceback in the parent.
                    record_event(events, "pool-failure", site="sweep.place",
                                 seed=task[2],
                                 error=f"{type(exc).__name__}: {exc}")
                    failed.append(task)
    else:
        failed = tasks
    for task in failed:
        outcomes.append(_place_seed_task(task))
    if failed and failed is not tasks:
        record_event(events, "serial-resubmit", site="sweep.place",
                     seeds=[t[2] for t in failed])
    for seed, payload in outcomes:
        results[seed] = _placement_from_payload(payload)
        if cache is not None:
            cache.put(keys.get(seed) or PaRCache.place_key(
                netlist, arch, seed, effort, inner_num, kernel
            ), payload, events=events)

    return [results[seed] for seed in seeds]


def best_placement(results: Sequence[PlacementResult]) -> PlacementResult:
    """The lowest-HPWL result of a sweep (ties -> first in sequence order)."""
    if not results:
        raise ValueError("empty placement sweep")
    return min(results, key=lambda r: r.cost)
