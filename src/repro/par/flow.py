"""TPaR flow driver: placement + routing + metrics for a mapped network.

This is the physical half of the paper's evaluation: given a technology
mapped Processing Element (conventional or fully parameterized), it sizes an
FPGA, places the blocks, routes the nets and reports the quantities of
Table I (wirelength, channel width, logic depth) plus timing estimates.

Two parallel/caching facilities ride on top of the single-shot flow:

* :func:`placement_sweep` anneals one netlist across many seeds -- in a
  ``concurrent.futures`` process pool when ``workers`` > 1 -- and memoizes
  each (netlist, arch, seed) placement in an on-disk
  :class:`~repro.par.cache.PaRCache`, so multi-seed quality baselines are
  computed once per machine;
* :func:`place_and_route` forwards ``workers``/``cache`` to the
  minimum-channel-width search (see :mod:`repro.par.metrics`), which is the
  dominant cost of the Table I/II benchmarks.

Since PR 4 the flow also carries the timing axis: every result embeds a
full STA (:attr:`PaRResult.sta`, from :mod:`repro.timing`) and
``objective="timing"`` switches placement and routing to the
criticality-driven cost functions (:func:`timing_driven_placement`,
``route(objective="timing")``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fpga.architecture import FPGAArchitecture, auto_size
from ..fpga.device import Device, build_device
from ..techmap.mapping import MappedNetwork
from ..timing.graph import build_timing_graph
from ..timing.sta import (
    TimingAnalysis,
    analyze,
    net_criticality_from_placement,
    structural_net_criticality,
)
from .cache import PaRCache
from .metrics import MinChannelWidthResult, minimum_channel_width
from .netlist import PhysicalNetlist, from_mapped_network
from .placement import Placement, PlacementResult, place
from .routing import RoutingResult, route
from .timing import TimingReport, report_from_analysis

__all__ = [
    "PaRResult",
    "place_and_route",
    "timing_driven_placement",
    "placement_sweep",
    "best_placement",
]


@dataclass
class PaRResult:
    """Complete place-and-route outcome for one mapped network."""

    network: MappedNetwork
    netlist: PhysicalNetlist
    device: Device
    placement: PlacementResult
    routing: RoutingResult
    timing: TimingReport
    min_channel_width: Optional[MinChannelWidthResult] = None
    #: full STA over the routed design (arrival/slack/criticality arrays,
    #: critical-path breakdown); the legacy ``timing`` report above is
    #: derived from it.
    sta: Optional[TimingAnalysis] = None
    objective: str = "wirelength"

    @property
    def wirelength(self) -> int:
        return self.routing.wirelength

    @property
    def logic_depth(self) -> int:
        return self.timing.logic_depth

    def summary(self) -> Dict[str, float]:
        """Key metrics as a flat dict (used by the Table I benchmark)."""
        out = {
            "luts": self.network.num_luts(),
            "tluts": self.network.num_tluts(),
            "tcons": self.network.num_tcons(),
            "logic_depth": self.logic_depth,
            "wirelength": self.wirelength,
            "channel_width": self.device.arch.channel_width,
            "critical_path_ns": self.timing.critical_path_ns,
            "placement_hpwl": self.placement.cost,
            "array_side": self.device.arch.width,
            "routed": self.routing.success,
            "objective": self.objective,
        }
        if self.sta is not None:
            out["worst_slack_ns"] = self.sta.summary()["worst_slack_ns"]
        if self.min_channel_width is not None:
            out["min_channel_width"] = self.min_channel_width.min_channel_width
        return out


def place_and_route(
    network: MappedNetwork,
    arch: Optional[FPGAArchitecture] = None,
    channel_width: int = 10,
    placement_effort: float = 1.0,
    router_iterations: int = 25,
    find_min_channel_width: bool = False,
    min_cw_bounds: tuple = (2, 32),
    seed: int = 0,
    placement_kernel: Optional[str] = None,
    route_kernel: str = "wavefront",
    min_cw_route_kernel: str = "auto",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
    objective: str = "wirelength",
    timing_tradeoff: float = 3.0,
    timing_passes: int = 2,
) -> PaRResult:
    """Run the full TPaR flow (TPLACE + TROUTE) on a mapped network.

    Parameters
    ----------
    network:
        Output of :func:`~repro.techmap.map_conventional` or
        :func:`~repro.techmap.map_parameterized`.
    arch:
        Target architecture.  When omitted the array is auto-sized for the
        design at the requested ``channel_width`` (the paper's experiments use
        the VPR auto-sizing with W = 10).
    placement_effort:
        Scales annealing effort; lower is faster but noisier.
    placement_kernel:
        Annealing kernel; default ``incremental`` under the wirelength
        objective, ``batched`` under the timing objective (the only kernel
        that accepts per-net weights).
    find_min_channel_width:
        Additionally run the binary search for the minimum channel width
        (Table I's CW column).  This re-routes the design several times;
        ``workers`` parallelizes the probes and ``cache`` memoizes them
        (defaults to ``PaRCache.from_env()``).  The probes use
        ``min_cw_route_kernel`` (default ``auto``, resolving to the scalar
        astar kernel below paper scale): widths below the minimum are
        non-convergent by construction, which is the scalar kernel's fast
        case -- see :func:`repro.par.metrics.minimum_channel_width`.
    objective:
        ``"wirelength"`` (the seed behavior) or ``"timing"``: placement runs
        :func:`timing_driven_placement` (criticality-weighted annealing with
        iterative re-weighting, best candidate by estimated critical path)
        and routing runs the VPR-style blended cost
        ``crit * delay + (1 - crit) * congestion`` with per-iteration
        criticality updates.  ``timing_tradeoff`` scales the net weights,
        ``timing_passes`` the number of re-weighting anneals.  Every result
        carries the full STA in :attr:`PaRResult.sta` either way.
    """
    if objective not in ("wirelength", "timing"):
        raise ValueError(f"unknown PAR objective {objective!r}")
    if placement_kernel is None:
        placement_kernel = "batched" if objective == "timing" else "incremental"
    netlist = from_mapped_network(network)
    num_logic = netlist.num_logic_blocks() + netlist.num_ff_blocks()
    num_ios = netlist.num_io_blocks()
    if arch is None:
        arch = auto_size(num_logic, num_ios, channel_width=channel_width)
    device = build_device(arch)
    if cache is None:
        cache = PaRCache.from_env()

    if objective == "timing" and placement_kernel == "batched":
        placement = timing_driven_placement(
            netlist, arch, seed=seed, effort=placement_effort,
            tradeoff=timing_tradeoff, passes=timing_passes,
        )
    else:
        placement = place(
            netlist, arch, seed=seed, effort=placement_effort,
            kernel=placement_kernel,
        )
    routing = route(
        netlist, placement.placement, device,
        max_iterations=router_iterations, kernel=route_kernel,
        objective=objective, criticality_exponent=2.0 if objective == "timing" else 1.0,
    )
    sta = analyze(netlist, routing, device, placement=placement.placement)
    timing = report_from_analysis(sta, network, routing, device)

    min_cw = None
    if find_min_channel_width:
        min_cw = minimum_channel_width(
            netlist, placement.placement, arch,
            low=min_cw_bounds[0], high=min_cw_bounds[1],
            route_kernel=min_cw_route_kernel, workers=workers, cache=cache,
        )

    return PaRResult(
        network=network,
        netlist=netlist,
        device=device,
        placement=placement,
        routing=routing,
        timing=timing,
        min_channel_width=min_cw,
        sta=sta,
        objective=objective,
    )


def timing_driven_placement(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seed: int = 0,
    effort: float = 1.0,
    inner_num: float = 1.0,
    tradeoff: float = 3.0,
    passes: int = 2,
    exponent: float = 2.0,
) -> PlacementResult:
    """Criticality-weighted annealing with iterative re-weighting.

    VPR-style timing-driven placement adapted to the one-shot annealer: a
    small set of candidate placements is annealed and the one with the best
    *estimated* critical path (distance-based STA, no routing) wins:

    1. the plain unweighted ``batched`` anneal -- the timing flow can never
       pick a placement worse for timing than the wirelength flow's;
    2. an anneal weighted ``1 + tradeoff * crit^exponent`` by the
       *structural* pre-placement criticalities;
    3. ``passes`` further anneals re-weighted by the estimated criticality
       of the best candidate so far (decorrelated annealing streams).

    Net weights pull critical nets shorter at some cost to others; the
    estimate-driven selection is what makes the tradeoff robust across
    seeds -- annealing noise turns into a ``min()`` instead of a gamble.
    Measured on the bench PE workload this recipe cuts the routed critical
    path by ~14% on average (max seed still improving) at < 1.01x the
    reference-route wirelength; see ``BENCH_hotpaths.json``.
    """
    graph = build_timing_graph(netlist, arch.lut_delay_ns)

    def estimate(result: PlacementResult) -> Tuple[float, List[float]]:
        return net_criticality_from_placement(
            graph, result.placement, arch, exponent=exponent
        )

    candidates: List[Tuple[float, PlacementResult]] = []
    base = place(netlist, arch, seed=seed, effort=effort, inner_num=inner_num,
                 kernel="batched")
    best_cp, best_crit = estimate(base)
    candidates.append((best_cp, base))

    struct_w = [
        1.0 + tradeoff * c**exponent
        for c in structural_net_criticality(netlist, arch)
    ]
    cand = place(netlist, arch, seed=seed, effort=effort, inner_num=inner_num,
                 kernel="batched", net_weights=struct_w)
    cp, crit = estimate(cand)
    if cp < best_cp:
        best_cp, best_crit = cp, crit
    candidates.append((cp, cand))

    for i in range(1, passes + 1):
        weights = [1.0 + tradeoff * c for c in best_crit]
        cand = place(
            netlist, arch, seed=seed + 1000 * i, effort=effort,
            inner_num=inner_num, kernel="batched", net_weights=weights,
        )
        cp, crit = estimate(cand)
        if cp < best_cp:
            best_cp, best_crit = cp, crit
        candidates.append((cp, cand))

    return min(candidates, key=lambda t: t[0])[1]


def _place_seed_task(args: Tuple) -> Tuple[int, Dict]:
    """Pool worker: anneal one seed, return JSON-serializable placement data."""
    netlist, arch, seed, effort, inner_num, kernel = args
    result = place(
        netlist, arch, seed=seed, effort=effort, inner_num=inner_num, kernel=kernel
    )
    return seed, _placement_payload(result)


def _placement_payload(result: PlacementResult) -> Dict:
    return {
        "cost": result.cost,
        "initial_cost": result.initial_cost,
        "moves_attempted": result.moves_attempted,
        "moves_accepted": result.moves_accepted,
        "temperature_steps": result.temperature_steps,
        "sites": {
            str(bid): [s.x, s.y, s.kind, s.subtile]
            for bid, s in result.placement.block_site.items()
        },
    }


def _placement_from_payload(payload: Dict) -> PlacementResult:
    from ..fpga.architecture import Site

    placement = Placement(
        {
            int(bid): Site(x=v[0], y=v[1], kind=v[2], subtile=v[3])
            for bid, v in payload["sites"].items()
        }
    )
    return PlacementResult(
        placement=placement,
        cost=int(payload["cost"]),
        initial_cost=int(payload["initial_cost"]),
        moves_attempted=int(payload["moves_attempted"]),
        moves_accepted=int(payload["moves_accepted"]),
        temperature_steps=int(payload["temperature_steps"]),
    )


def placement_sweep(
    netlist: PhysicalNetlist,
    arch: FPGAArchitecture,
    seeds: Sequence[int],
    effort: float = 1.0,
    inner_num: float = 1.0,
    kernel: str = "batched",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
) -> List[PlacementResult]:
    """Anneal ``netlist`` once per seed, in parallel, with on-disk memoization.

    Returns one :class:`PlacementResult` per seed, in ``seeds`` order.  Each
    (netlist, arch, seed, effort, kernel) combination is placed at most once
    per cache directory; repeated sweeps (quality baselines, benchmark
    harness re-runs) are served from disk.
    """
    if cache is None:
        cache = PaRCache.from_env()
    results: Dict[int, PlacementResult] = {}
    todo: List[int] = []
    keys: Dict[int, str] = {}
    for seed in seeds:
        if cache is not None:
            keys[seed] = PaRCache.place_key(netlist, arch, seed, effort, inner_num, kernel)
            hit = cache.get(keys[seed])
            if hit is not None:
                results[seed] = _placement_from_payload(hit)
                continue
        todo.append(seed)

    tasks = [(netlist, arch, seed, effort, inner_num, kernel) for seed in todo]
    if workers and workers > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            outcomes = list(pool.map(_place_seed_task, tasks))
    else:
        outcomes = [_place_seed_task(task) for task in tasks]
    for seed, payload in outcomes:
        results[seed] = _placement_from_payload(payload)
        if cache is not None:
            cache.put(keys.get(seed) or PaRCache.place_key(
                netlist, arch, seed, effort, inner_num, kernel
            ), payload)

    return [results[seed] for seed in seeds]


def best_placement(results: Sequence[PlacementResult]) -> PlacementResult:
    """The lowest-HPWL result of a sweep (ties -> first in sequence order)."""
    if not results:
        raise ValueError("empty placement sweep")
    return min(results, key=lambda r: r.cost)
