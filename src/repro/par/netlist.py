"""Physical netlist: the block/net view consumed by placement and routing.

The technology-mapped network (LUTs, TLUTs, TCONs) is lowered to a *physical
netlist* of placeable blocks and point-to-multipoint nets:

* every LUT and TLUT becomes a logic block (one per tile on the 4-LUT
  architecture);
* primary inputs and outputs become IO blocks on the device perimeter;
* in the **conventional** flow, parameter inputs become flip-flop blocks --
  the settings registers are realized on logic-cell flip-flops, occupying
  logic tiles, exactly the overhead the paper's Table II talks about;
* in the **fully parameterized** flow, parameter inputs disappear entirely
  (they live in configuration memory) and TCONs are collapsed into the nets
  they pass through -- they are realized on routing switches, not on blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..techmap.mapping import MappedNetwork, NodeKind

__all__ = ["Block", "Net", "PhysicalNetlist", "from_mapped_network"]


@dataclass
class Block:
    """A placeable block of the physical netlist."""

    id: int
    name: str
    kind: str                  # "clb", "ff" or "io"
    mapped_node: Optional[int] = None  #: originating mapped-network node (if any)

    @property
    def needs_logic_site(self) -> bool:
        return self.kind in ("clb", "ff")


@dataclass
class Net:
    """A signal from one driver block to one or more sink blocks."""

    id: int
    name: str
    driver: int
    sinks: List[int] = field(default_factory=list)

    @property
    def num_terminals(self) -> int:
        return 1 + len(self.sinks)


@dataclass
class PhysicalNetlist:
    """Blocks plus nets, with bookkeeping used by the resource accounting."""

    name: str
    blocks: List[Block] = field(default_factory=list)
    nets: List[Net] = field(default_factory=list)
    #: number of tunable connections absorbed into nets (parameterized flow)
    num_tcons_absorbed: int = 0

    def add_block(self, name: str, kind: str, mapped_node: Optional[int] = None) -> int:
        bid = len(self.blocks)
        self.blocks.append(Block(bid, name, kind, mapped_node))
        return bid

    def add_net(self, name: str, driver: int, sinks: List[int]) -> int:
        nid = len(self.nets)
        self.nets.append(Net(nid, name, driver, list(sinks)))
        return nid

    # -- statistics -------------------------------------------------------------

    def num_logic_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.kind == "clb")

    def num_ff_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.kind == "ff")

    def num_io_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.kind == "io")

    def blocks_of_kind(self, kind: str) -> List[Block]:
        return [b for b in self.blocks if b.kind == kind]

    def validate(self) -> None:
        ids = set(range(len(self.blocks)))
        for net in self.nets:
            if net.driver not in ids:
                raise ValueError(f"net {net.name!r}: missing driver block {net.driver}")
            for s in net.sinks:
                if s not in ids:
                    raise ValueError(f"net {net.name!r}: missing sink block {s}")
            if not net.sinks:
                raise ValueError(f"net {net.name!r} has no sinks")


def from_mapped_network(
    network: MappedNetwork,
    name: Optional[str] = None,
    tcon_selection: str = "first",
) -> PhysicalNetlist:
    """Lower a mapped network to a physical netlist.

    Parameters
    ----------
    network:
        The technology-mapped network (conventional or parameterized).
    tcon_selection:
        How to resolve each TCON to a concrete pass-through for physical
        implementation: ``"first"`` uses its first data input, which is the
        representative specialization placed and routed by the generic stage.
    """
    if tcon_selection != "first":
        raise ValueError("only the 'first' TCON selection policy is implemented")
    netlist = PhysicalNetlist(name or network.source.name)

    # -- blocks -----------------------------------------------------------------
    node_to_block: Dict[int, Optional[int]] = {}
    for nid, node in enumerate(network.nodes):
        if node.kind in (NodeKind.LUT, NodeKind.TLUT):
            node_to_block[nid] = netlist.add_block(
                node.name or f"lut{nid}", "clb", mapped_node=nid
            )
        elif node.kind == NodeKind.INPUT:
            node_to_block[nid] = netlist.add_block(node.name or f"in{nid}", "io", nid)
        elif node.kind == NodeKind.PARAM:
            # Conventional flow only: the settings-register bit is a flip-flop
            # realized in a logic tile.
            node_to_block[nid] = netlist.add_block(node.name or f"param{nid}", "ff", nid)
        else:
            # constants and TCONs do not become blocks
            node_to_block[nid] = None

    # -- TCON pass-through resolution --------------------------------------------
    def resolve(nid: int) -> Optional[int]:
        node = network.nodes[nid]
        if node.kind == NodeKind.TCON:
            netlist_counted.add(nid)
            if not node.inputs:
                return None
            return resolve(node.inputs[0])
        if node.kind in (NodeKind.CONST0, NodeKind.CONST1):
            return None
        return nid

    netlist_counted: Set[int] = set()

    # -- nets --------------------------------------------------------------------
    # Collect sinks per driving mapped node.
    sinks_per_driver: Dict[int, List[int]] = {}
    for nid, node in enumerate(network.nodes):
        if node.kind not in (NodeKind.LUT, NodeKind.TLUT):
            continue
        block = node_to_block[nid]
        for inp in node.inputs:
            driver = resolve(inp)
            if driver is None:
                continue  # constant inputs need no routing
            sinks_per_driver.setdefault(driver, []).append(block)

    # Primary outputs become IO sink blocks.
    for out_name, out_nid in network.outputs.items():
        out_block = netlist.add_block(out_name, "io", None)
        driver = resolve(out_nid)
        if driver is None:
            continue
        sinks_per_driver.setdefault(driver, []).append(out_block)

    for driver_nid, sink_blocks in sinks_per_driver.items():
        driver_block = node_to_block.get(driver_nid)
        if driver_block is None:
            continue
        driver_name = network.nodes[driver_nid].name or f"n{driver_nid}"
        # Deduplicate sinks while preserving order; a block may consume the
        # same signal on several pins but the router targets its SINK once.
        unique_sinks = list(dict.fromkeys(s for s in sink_blocks if s != driver_block))
        if not unique_sinks:
            continue
        netlist.add_net(driver_name, driver_block, unique_sinks)

    netlist.num_tcons_absorbed = len(netlist_counted)
    netlist.validate()
    return netlist
