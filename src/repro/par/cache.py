"""On-disk result cache for place-and-route experiments.

The Table I/II evaluations and the reconfiguration benchmarks route the same
(netlist, placement, architecture) triples over and over -- a
`minimum_channel_width` binary search alone routes the design at half a dozen
widths, and every harness re-run repeats all of it.  This module provides a
small content-addressed JSON cache so those results are computed once:

* keys are SHA-256 fingerprints of the *semantic* inputs (block kinds and net
  connectivity, placement sites, architecture parameters, router/placer
  settings, and an algorithm-version tag that must be bumped whenever a
  kernel change invalidates old results);
* values are plain JSON dicts of the metrics the flows need (routing success,
  wirelength, iterations; placement cost and sites) -- never pickled code;
* writes are atomic (tmp file + ``os.replace``), so a cache shared by the
  worker processes of a pool stays consistent.

The cache is opt-in: pass a :class:`PaRCache` (or a directory path) to the
entry points in :mod:`repro.par.metrics` / :mod:`repro.par.flow`, or set the
``REPRO_PAR_CACHE`` environment variable to a directory to enable it
globally (``PaRCache.from_env()``).

Invariants:

* **A hit reproduces a fresh compute bit-for-bit.**  Keys fingerprint
  every semantic input plus ``ROUTE_ALGO_VERSION`` / ``PLACE_ALGO_VERSION``;
  any kernel change that alters a trajectory must bump its version so old
  entries read as misses, never as wrong answers.  Degraded results
  (kernel fallbacks, see :func:`repro.par.routing.route_resilient`) are
  never written, so one faulty run cannot poison fault-free reruns.
* **Artifacts are backend-neutral.**  Values are plain JSON metrics plus
  serialized route forests -- never pickled code, never a record of which
  (native or Python) backend produced them; caches are interchangeable
  across ``REPRO_NATIVE`` settings.
* **The cache can only make runs faster or equal, never incorrect.**
  Reads that fail (missing, truncated, corrupt, injected fault) count as
  misses and recompute; writes are atomic (tmp + ``os.replace``) with
  last-write-wins among concurrent writers; a failed write warns once and
  drops.  ``strict=True`` turns absorption into :class:`CacheIOError` for
  callers that need to fail loud.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..fpga.architecture import FPGAArchitecture
from ..obs import metrics as obs_metrics
from ..util.resilience import inject, record_event
from .netlist import PhysicalNetlist
from .placement import Placement

__all__ = ["PaRCache", "CacheIOError", "ROUTE_ALGO_VERSION", "PLACE_ALGO_VERSION"]


class CacheIOError(OSError):
    """A cache read/write failed and the cache was opened with ``strict=True``."""

#: Bump when a routing kernel change makes cached route metrics stale.
#: v4: route values carry the serialized flat route forest (the actual
#: route trees, see :mod:`repro.par.forest`) next to the metrics, so cache
#: hits re-hydrate routes instead of re-routing; metrics-only v3 entries
#: must read as misses.
ROUTE_ALGO_VERSION = 4
#: Bump when a placement kernel change makes cached placements stale.
PLACE_ALGO_VERSION = 2


def _netlist_fingerprint(netlist: PhysicalNetlist) -> str:
    h = hashlib.sha256()
    for b in netlist.blocks:
        h.update(f"b{b.id}:{b.kind};".encode())
    for n in netlist.nets:
        h.update(f"n{n.id}:{n.driver}>{','.join(map(str, n.sinks))};".encode())
    return h.hexdigest()[:16]


def _placement_fingerprint(placement: Placement) -> str:
    h = hashlib.sha256()
    for bid in sorted(placement.block_site):
        s = placement.block_site[bid]
        h.update(f"{bid}@{s.x},{s.y},{s.kind},{s.subtile};".encode())
    return h.hexdigest()[:16]


def _arch_fingerprint(arch: FPGAArchitecture) -> str:
    return (
        f"{arch.width}x{arch.height}w{arch.channel_width}l{arch.lut_inputs}"
        f"io{arch.io_capacity}fi{arch.fc_in}fo{arch.fc_out}"
    )


class PaRCache:
    """Content-addressed JSON store for PAR metrics, safe for process pools."""

    #: Directories already warned about for dropped writes (process-wide, so
    #: a pool of caches over one shared directory warns once, not per worker).
    _warned_dirs: set = set()

    def __init__(self, directory: Union[str, Path], strict: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.strict = strict
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.dropped_writes = 0

    @classmethod
    def from_env(cls) -> Optional["PaRCache"]:
        """Cache at ``$REPRO_PAR_CACHE`` when set, else ``None`` (disabled)."""
        directory = os.environ.get("REPRO_PAR_CACHE")
        return cls(directory) if directory else None

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits/misses plus the failure-path tallies.

        ``read_errors`` counts entries that existed but could not be decoded
        (corrupt/truncated JSON, permission errors); ``dropped_writes`` counts
        ``put()`` calls that failed and were discarded.  Both are zero on a
        healthy cache directory.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "read_errors": self.read_errors,
            "dropped_writes": self.dropped_writes,
        }

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- generic key/value store ------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(
        self, key: str, events: Optional[List[Dict[str, Any]]] = None
    ) -> Optional[Dict[str, Any]]:
        """Value stored under ``key``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (logged in
        ``stats()`` / ``events``) unless the cache is ``strict``.
        """
        path = self._path(key)
        try:
            fault = inject("cache.read")
            if fault == "corrupt":
                raise ValueError(f"injected corrupt cache entry for {key}")
            if fault is not None:
                raise OSError(f"injected cache read fault ({fault}) for {key}")
            with open(path, "r", encoding="utf-8") as fh:
                value = json.load(fh)
        except FileNotFoundError:
            # A plain miss: the entry was never written.  Not an error.
            self.misses += 1
            obs_metrics.add("cache.misses")
            return None
        except (OSError, ValueError) as exc:
            # The entry exists but cannot be decoded -- a rotted shared
            # directory, a torn write from a non-atomic producer, or an
            # injected fault.  Treat as a miss and recompute.
            self.misses += 1
            self.read_errors += 1
            obs_metrics.merge({"cache.misses": 1, "cache.read_errors": 1})
            record_event(events, "cache-read-error", site="cache.read",
                         key=key, error=f"{type(exc).__name__}: {exc}")
            if self.strict:
                raise CacheIOError(f"cache read failed for {key}: {exc}") from exc
            return None
        self.hits += 1
        obs_metrics.add("cache.hits")
        return value

    def put(
        self,
        key: str,
        value: Dict[str, Any],
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> bool:
        """Atomically store ``value`` under ``key``; ``False`` if dropped.

        Failed writes warn once per directory and count in ``stats()``
        (or raise :class:`CacheIOError` when ``strict``).
        """
        path = self._path(key)
        tmp = None
        try:
            fault = inject("cache.write")
            if fault is not None:
                raise OSError(f"injected cache write fault ({fault}) for {key}")
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh)
            os.replace(tmp, path)
            return True
        except OSError as exc:
            # The cache is an optimization: a full disk or an unwritable
            # shared directory must never fail the flow that uses it.  The
            # drop is counted, surfaced in stats()/events, and warned about
            # once per directory so a rotted nightly cache is noticed.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.dropped_writes += 1
            obs_metrics.add("cache.dropped_writes")
            record_event(events, "cache-write-dropped", site="cache.write",
                         key=key, error=f"{type(exc).__name__}: {exc}")
            dir_key = str(self.directory)
            if dir_key not in PaRCache._warned_dirs:
                PaRCache._warned_dirs.add(dir_key)
                warnings.warn(
                    f"PaRCache dropped a write to {dir_key} ({exc}); further "
                    "drops to this directory are counted in cache.stats() "
                    "but not warned about again",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if self.strict:
                raise CacheIOError(f"cache write failed for {key}: {exc}") from exc
            return False

    # -- domain keys ------------------------------------------------------------

    @staticmethod
    def route_key(
        netlist: PhysicalNetlist,
        placement: Placement,
        arch: FPGAArchitecture,
        channel_width: int,
        max_iterations: int,
        kernel: str,
        objective: str = "wirelength",
        tag: str = "",
    ) -> str:
        """Content key of one route.  ``tag`` folds in extra knobs that
        change the routed result (e.g. the timing objective's criticality
        exponent) without widening the signature for every caller."""
        material = "|".join(
            (
                f"route-v{ROUTE_ALGO_VERSION}",
                _netlist_fingerprint(netlist),
                _placement_fingerprint(placement),
                _arch_fingerprint(arch),
                f"w{channel_width}i{max_iterations}k{kernel}o{objective}{tag}",
            )
        )
        return "route-" + hashlib.sha256(material.encode()).hexdigest()[:32]

    @staticmethod
    def place_key(
        netlist: PhysicalNetlist,
        arch: FPGAArchitecture,
        seed: int,
        effort: float,
        inner_num: float,
        kernel: str,
    ) -> str:
        """Versioned content key of one placement run's semantic inputs."""
        material = "|".join(
            (
                f"place-v{PLACE_ALGO_VERSION}",
                _netlist_fingerprint(netlist),
                _arch_fingerprint(arch),
                f"s{seed}e{effort}n{inner_num}k{kernel}",
            )
        )
        return "place-" + hashlib.sha256(material.encode()).hexdigest()[:32]
