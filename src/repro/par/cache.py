"""On-disk result cache for place-and-route experiments.

The Table I/II evaluations and the reconfiguration benchmarks route the same
(netlist, placement, architecture) triples over and over -- a
`minimum_channel_width` binary search alone routes the design at half a dozen
widths, and every harness re-run repeats all of it.  This module provides a
small content-addressed JSON cache so those results are computed once:

* keys are SHA-256 fingerprints of the *semantic* inputs (block kinds and net
  connectivity, placement sites, architecture parameters, router/placer
  settings, and an algorithm-version tag that must be bumped whenever a
  kernel change invalidates old results);
* values are plain JSON dicts of the metrics the flows need (routing success,
  wirelength, iterations; placement cost and sites) -- never pickled code;
* writes are atomic (tmp file + ``os.replace``), so a cache shared by the
  worker processes of a pool stays consistent.

The cache is opt-in: pass a :class:`PaRCache` (or a directory path) to the
entry points in :mod:`repro.par.metrics` / :mod:`repro.par.flow`, or set the
``REPRO_PAR_CACHE`` environment variable to a directory to enable it
globally (``PaRCache.from_env()``).

Storage is pluggable: :class:`PaRCache` handles keys, accounting and
failure absorption over a :class:`CacheBackend` -- a two-method raw store
(``read``/``write``) with :class:`LocalDirBackend` (the original on-disk
tier) and :class:`MemoryBackend` (in-process, used by the service daemon's
tests and ephemeral tiers) provided here; a remote/sharded tier plugs in
behind the same protocol without touching any caller.

Invariants:

* **A hit reproduces a fresh compute bit-for-bit.**  Keys fingerprint
  every semantic input plus ``ROUTE_ALGO_VERSION`` / ``PLACE_ALGO_VERSION``;
  any kernel change that alters a trajectory must bump its version so old
  entries read as misses, never as wrong answers.  Degraded results
  (kernel fallbacks, see :func:`repro.par.routing.route_resilient`) are
  never written, so one faulty run cannot poison fault-free reruns.
* **Artifacts are backend-neutral.**  Values are plain JSON metrics plus
  serialized route forests -- never pickled code, never a record of which
  (native or Python) backend produced them; caches are interchangeable
  across ``REPRO_NATIVE`` settings.
* **The cache can only make runs faster or equal, never incorrect.**
  Reads that fail (missing, truncated, corrupt, injected fault) count as
  misses and recompute; writes are atomic (tmp + ``os.replace``) with
  last-write-wins among concurrent writers; a failed write warns once and
  drops.  ``strict=True`` turns absorption into :class:`CacheIOError` for
  callers that need to fail loud.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..fpga.architecture import FPGAArchitecture
from ..obs import metrics as obs_metrics
from ..util.resilience import inject, record_event
from .netlist import PhysicalNetlist
from .placement import Placement

__all__ = [
    "PaRCache",
    "CacheIOError",
    "CacheBackend",
    "LocalDirBackend",
    "MemoryBackend",
    "ROUTE_ALGO_VERSION",
    "PLACE_ALGO_VERSION",
]


class CacheIOError(OSError):
    """A cache read/write failed and the cache was opened with ``strict=True``."""

#: Bump when a routing kernel change makes cached route metrics stale.
#: v4: route values carry the serialized flat route forest (the actual
#: route trees, see :mod:`repro.par.forest`) next to the metrics, so cache
#: hits re-hydrate routes instead of re-routing; metrics-only v3 entries
#: must read as misses.
ROUTE_ALGO_VERSION = 4
#: Bump when a placement kernel change makes cached placements stale.
PLACE_ALGO_VERSION = 2


def _netlist_fingerprint(netlist: PhysicalNetlist) -> str:
    h = hashlib.sha256()
    for b in netlist.blocks:
        h.update(f"b{b.id}:{b.kind};".encode())
    for n in netlist.nets:
        h.update(f"n{n.id}:{n.driver}>{','.join(map(str, n.sinks))};".encode())
    return h.hexdigest()[:16]


def _placement_fingerprint(placement: Placement) -> str:
    h = hashlib.sha256()
    for bid in sorted(placement.block_site):
        s = placement.block_site[bid]
        h.update(f"{bid}@{s.x},{s.y},{s.kind},{s.subtile};".encode())
    return h.hexdigest()[:16]


def _arch_fingerprint(arch: FPGAArchitecture) -> str:
    return (
        f"{arch.width}x{arch.height}w{arch.channel_width}l{arch.lut_inputs}"
        f"io{arch.io_capacity}fi{arch.fc_in}fo{arch.fc_out}"
    )


class CacheBackend:
    """Raw key -> JSON-dict store behind :class:`PaRCache`.

    The protocol is deliberately two methods plus a label, so a remote or
    sharded tier is a drop-in: :meth:`read` returns the stored value or
    ``None`` for a *plain* miss (never written) and raises ``OSError`` /
    ``ValueError`` for an entry that exists but cannot be trusted;
    :meth:`write` stores atomically with last-write-wins semantics among
    concurrent writers and raises ``OSError`` on failure.  All accounting,
    fault injection and error absorption stay in :class:`PaRCache` -- a
    backend only moves bytes.
    """

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        """Value stored under ``key``; ``None`` when never written."""
        raise NotImplementedError

    def write(self, key: str, value: Dict[str, Any]) -> None:
        """Atomically store ``value`` under ``key`` (last write wins)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Stable human-readable label (used for warn-once bookkeeping)."""
        return type(self).__name__


class LocalDirBackend(CacheBackend):
    """One JSON file per key in a local directory; atomic temp+rename writes."""

    def __init__(self, directory: Union[str, Path]) -> None:
        """Create (if needed) and wrap ``directory``."""
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        """Parse the entry file; ``None`` if absent, raises if undecodable."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def write(self, key: str, value: Dict[str, Any]) -> None:
        """Write via ``mkstemp`` + ``os.replace`` so pools never see torn files."""
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh)
            os.replace(tmp, self._path(key))
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise

    def describe(self) -> str:
        """The wrapped directory path."""
        return str(self.directory)


class MemoryBackend(CacheBackend):
    """Process-local dict store: ephemeral tiers, backend-protocol tests.

    Values are deep-copied through JSON on both paths so callers cannot
    alias cache state -- the semantics match the on-disk tier exactly.
    """

    def __init__(self) -> None:
        """Create an empty store."""
        self._store: Dict[str, str] = {}

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        """Decode the stored JSON text (``None`` when never written)."""
        text = self._store.get(key)
        return None if text is None else json.loads(text)

    def write(self, key: str, value: Dict[str, Any]) -> None:
        """Store the value as JSON text (atomic by the GIL)."""
        self._store[key] = json.dumps(value)


class PaRCache:
    """Content-addressed JSON store for PAR metrics, safe for process pools."""

    #: Backends already warned about for dropped writes (process-wide, so
    #: a pool of caches over one shared directory warns once, not per worker).
    _warned_dirs: set = set()

    def __init__(
        self,
        directory: Union[str, Path, CacheBackend],
        strict: bool = False,
    ) -> None:
        if isinstance(directory, CacheBackend):
            self.backend = directory
            self.directory = getattr(directory, "directory", None)
        else:
            self.backend = LocalDirBackend(directory)
            self.directory = self.backend.directory
        self.strict = strict
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.dropped_writes = 0

    @classmethod
    def from_env(cls) -> Optional["PaRCache"]:
        """Cache at ``$REPRO_PAR_CACHE`` when set, else ``None`` (disabled)."""
        directory = os.environ.get("REPRO_PAR_CACHE")
        return cls(directory) if directory else None

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits/misses plus the failure-path tallies.

        ``read_errors`` counts entries that existed but could not be decoded
        (corrupt/truncated JSON, permission errors); ``dropped_writes`` counts
        ``put()`` calls that failed and were discarded.  Both are zero on a
        healthy cache directory.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "read_errors": self.read_errors,
            "dropped_writes": self.dropped_writes,
        }

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- generic key/value store ------------------------------------------------

    def _path(self, key: str) -> Path:
        if self.directory is None:
            raise TypeError(f"{self.backend.describe()} backend has no paths")
        return self.directory / f"{key}.json"

    def get(
        self, key: str, events: Optional[List[Dict[str, Any]]] = None
    ) -> Optional[Dict[str, Any]]:
        """Value stored under ``key``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (logged in
        ``stats()`` / ``events``) unless the cache is ``strict``.
        """
        try:
            fault = inject("cache.read")
            if fault == "corrupt":
                raise ValueError(f"injected corrupt cache entry for {key}")
            if fault is not None:
                raise OSError(f"injected cache read fault ({fault}) for {key}")
            value = self.backend.read(key)
            if value is None:
                # A plain miss: the entry was never written.  Not an error.
                self.misses += 1
                obs_metrics.add("cache.misses")
                return None
        except (OSError, ValueError) as exc:
            # The entry exists but cannot be decoded -- a rotted shared
            # directory, a torn write from a non-atomic producer, or an
            # injected fault.  Treat as a miss and recompute.
            self.misses += 1
            self.read_errors += 1
            obs_metrics.merge({"cache.misses": 1, "cache.read_errors": 1})
            record_event(events, "cache-read-error", site="cache.read",
                         key=key, error=f"{type(exc).__name__}: {exc}")
            if self.strict:
                raise CacheIOError(f"cache read failed for {key}: {exc}") from exc
            return None
        self.hits += 1
        obs_metrics.add("cache.hits")
        return value

    def put(
        self,
        key: str,
        value: Dict[str, Any],
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> bool:
        """Atomically store ``value`` under ``key``; ``False`` if dropped.

        Failed writes warn once per directory and count in ``stats()``
        (or raise :class:`CacheIOError` when ``strict``).
        """
        try:
            fault = inject("cache.write")
            if fault is not None:
                raise OSError(f"injected cache write fault ({fault}) for {key}")
            self.backend.write(key, value)
            return True
        except OSError as exc:
            # The cache is an optimization: a full disk or an unwritable
            # shared directory must never fail the flow that uses it.  The
            # drop is counted, surfaced in stats()/events, and warned about
            # once per directory so a rotted nightly cache is noticed.
            self.dropped_writes += 1
            obs_metrics.add("cache.dropped_writes")
            record_event(events, "cache-write-dropped", site="cache.write",
                         key=key, error=f"{type(exc).__name__}: {exc}")
            dir_key = self.backend.describe()
            if dir_key not in PaRCache._warned_dirs:
                PaRCache._warned_dirs.add(dir_key)
                warnings.warn(
                    f"PaRCache dropped a write to {dir_key} ({exc}); further "
                    "drops to this directory are counted in cache.stats() "
                    "but not warned about again",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if self.strict:
                raise CacheIOError(f"cache write failed for {key}: {exc}") from exc
            return False

    # -- domain keys ------------------------------------------------------------

    @staticmethod
    def route_key(
        netlist: PhysicalNetlist,
        placement: Placement,
        arch: FPGAArchitecture,
        channel_width: int,
        max_iterations: int,
        kernel: str,
        objective: str = "wirelength",
        tag: str = "",
    ) -> str:
        """Content key of one route.  ``tag`` folds in extra knobs that
        change the routed result (e.g. the timing objective's criticality
        exponent) without widening the signature for every caller."""
        material = "|".join(
            (
                f"route-v{ROUTE_ALGO_VERSION}",
                _netlist_fingerprint(netlist),
                _placement_fingerprint(placement),
                _arch_fingerprint(arch),
                f"w{channel_width}i{max_iterations}k{kernel}o{objective}{tag}",
            )
        )
        return "route-" + hashlib.sha256(material.encode()).hexdigest()[:32]

    @staticmethod
    def place_key(
        netlist: PhysicalNetlist,
        arch: FPGAArchitecture,
        seed: int,
        effort: float,
        inner_num: float,
        kernel: str,
    ) -> str:
        """Versioned content key of one placement run's semantic inputs."""
        material = "|".join(
            (
                f"place-v{PLACE_ALGO_VERSION}",
                _netlist_fingerprint(netlist),
                _arch_fingerprint(arch),
                f"s{seed}e{effort}n{inner_num}k{kernel}",
            )
        )
        return "place-" + hashlib.sha256(material.encode()).hexdigest()[:32]
