"""Post-PaR timing analysis (legacy wrapper over :mod:`repro.timing`).

Historically this module carried its own coarse wire-count estimate; it is
now a thin wrapper over the vectorized STA engine in :mod:`repro.timing`,
which times every routed connection exactly along its route-tree path.  The
:class:`TimingReport` fields are unchanged, and ``logic_depth`` remains
bit-compatible with the mapped network's LUT depth (the quantity of the
paper's Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..fpga.device import Device
from ..techmap.mapping import MappedNetwork
from ..timing.sta import TimingAnalysis, analyze
from .netlist import PhysicalNetlist
from .placement import Placement
from .routing import RoutingResult

__all__ = ["TimingReport", "analyze_timing", "report_from_analysis"]


@dataclass
class TimingReport:
    """Critical-path summary."""

    logic_depth: int               #: LUT levels on the longest path
    critical_path_ns: float        #: delay along the routed critical path
    mean_net_wirelength: float     #: average wires per routed net
    max_net_wirelength: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "logic_depth": self.logic_depth,
            "critical_path_ns": self.critical_path_ns,
            "mean_net_wirelength": self.mean_net_wirelength,
            "max_net_wirelength": self.max_net_wirelength,
        }


def report_from_analysis(
    analysis: TimingAnalysis,
    network: MappedNetwork,
    routing: Optional[RoutingResult],
    device: Device,
) -> TimingReport:
    """Fold a full STA analysis into the legacy :class:`TimingReport`.

    ``logic_depth`` comes from the mapped network's own levelization (the
    seed implementation's exact recursion), keeping the Table I depth column
    bit-compatible even for parameterized networks whose multi-input TCONs
    are resolved to a single representative wire in the physical netlist.
    """
    net_wires = []
    if routing is not None:
        rr = device.rr_graph
        net_wires = [len(r.wire_nodes(rr)) for r in routing.routes.values()]
    mean_wl = sum(net_wires) / len(net_wires) if net_wires else 0.0
    max_wl = max(net_wires) if net_wires else 0
    return TimingReport(
        logic_depth=network.depth(),
        critical_path_ns=analysis.critical_path_ns,
        mean_net_wirelength=mean_wl,
        max_net_wirelength=max_wl,
    )


def analyze_timing(
    network: MappedNetwork,
    netlist: PhysicalNetlist,
    routing: Optional[RoutingResult],
    device: Device,
    placement: Optional[Placement] = None,
) -> TimingReport:
    """Estimate the critical path of a placed-and-routed mapped network.

    Thin wrapper over :func:`repro.timing.analyze`.  ``placement`` sharpens
    the engine's estimates for unrouted nets (and is required for exact
    route-tree timing -- without it the engine falls back to structural
    one-hop estimates, matching the seed implementation's unrouted view).
    """
    analysis = analyze(netlist, routing, device, placement=placement)
    return report_from_analysis(analysis, network, routing, device)
