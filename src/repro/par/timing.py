"""Post-PaR timing analysis.

A simple static timing analysis over the mapped network using the
architecture's LUT and wire-segment delays plus the actual routed wire counts
per connection.  The paper reports logic-depth levels rather than nanosecond
delays; both are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..fpga.device import Device
from ..techmap.mapping import MappedNetwork, NodeKind
from .netlist import PhysicalNetlist
from .routing import RoutingResult

__all__ = ["TimingReport", "analyze_timing"]


@dataclass
class TimingReport:
    """Critical-path summary."""

    logic_depth: int               #: LUT levels on the longest path
    critical_path_ns: float        #: estimated delay using LUT + routed wire delays
    mean_net_wirelength: float     #: average wires per routed net
    max_net_wirelength: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "logic_depth": self.logic_depth,
            "critical_path_ns": self.critical_path_ns,
            "mean_net_wirelength": self.mean_net_wirelength,
            "max_net_wirelength": self.max_net_wirelength,
        }


def analyze_timing(
    network: MappedNetwork,
    netlist: PhysicalNetlist,
    routing: Optional[RoutingResult],
    device: Device,
) -> TimingReport:
    """Estimate the critical path of a placed-and-routed mapped network."""
    arch = device.arch
    rr = device.rr_graph

    # Wire count per net (0 when unrouted / no routing supplied).
    net_wires: Dict[int, int] = {}
    if routing is not None:
        for nid, net_route in routing.routes.items():
            net_wires[nid] = len(net_route.wire_nodes(rr))

    # Map every mapped node to the net its output drives (by driver block).
    node_to_block = {b.mapped_node: b.id for b in netlist.blocks if b.mapped_node is not None}
    driver_net: Dict[int, int] = {}
    for net in netlist.nets:
        driver_net[net.driver] = net.id

    def wire_delay_of(mapped_node: int) -> float:
        block = node_to_block.get(mapped_node)
        if block is None:
            return 0.0
        nid = driver_net.get(block)
        if nid is None:
            return 0.0
        wires = net_wires.get(nid)
        if wires is None:
            return arch.wire_delay_ns  # unrouted estimate: one segment
        # Approximate per-sink delay by the average segment count per sink.
        sinks = max(1, len(netlist.nets[nid].sinks))
        return arch.wire_delay_ns * (wires / sinks)

    arrival: List[float] = [0.0] * len(network.nodes)
    level: List[int] = [0] * len(network.nodes)
    for nid, node in enumerate(network.nodes):
        if node.kind in (NodeKind.LUT, NodeKind.TLUT):
            incoming = max(
                (arrival[i] + wire_delay_of(i) for i in node.inputs), default=0.0
            )
            arrival[nid] = incoming + arch.lut_delay_ns
            level[nid] = 1 + max((level[i] for i in node.inputs), default=0)
        elif node.kind == NodeKind.TCON:
            arrival[nid] = max(
                (arrival[i] + wire_delay_of(i) for i in node.inputs), default=0.0
            )
            level[nid] = max((level[i] for i in node.inputs), default=0)

    if network.outputs:
        crit = max(arrival[n] + wire_delay_of(n) for n in network.outputs.values())
        depth = max(level[n] for n in network.outputs.values())
    else:
        crit, depth = 0.0, 0

    wires_list = list(net_wires.values())
    mean_wl = sum(wires_list) / len(wires_list) if wires_list else 0.0
    max_wl = max(wires_list) if wires_list else 0

    return TimingReport(
        logic_depth=depth,
        critical_path_ns=crit,
        mean_net_wirelength=mean_wl,
        max_net_wirelength=max_wl,
    )
