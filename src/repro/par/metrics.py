"""Post-PaR metrics: wirelength, channel width, minimum-channel-width search.

These are the quantities of the paper's Table I PaR columns: total wirelength
(WL) of the routed design and the minimum channel width (CW) at which the
design still routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..fpga.architecture import FPGAArchitecture
from ..fpga.device import Device, build_device
from ..fpga.routing_graph import RRNodeType
from .netlist import PhysicalNetlist
from .placement import Placement, PlacementResult, place
from .routing import RoutingResult, route

__all__ = [
    "channel_occupancy",
    "minimum_channel_width",
    "MinChannelWidthResult",
]


def channel_occupancy(result: RoutingResult, device: Device) -> Dict[str, int]:
    """Peak and mean occupancy of the routing channels after routing."""
    rr = device.rr_graph
    occ = np.zeros(rr.num_nodes, dtype=np.int64)
    for net_route in result.routes.values():
        for n in net_route.nodes:
            occ[n] += 1
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    wires = occ[wire_mask]
    return {
        "peak": int(wires.max()) if wires.size else 0,
        "used": int(np.count_nonzero(wires)),
        "total": int(wires.size),
    }


@dataclass
class MinChannelWidthResult:
    """Outcome of the minimum-channel-width binary search."""

    min_channel_width: int
    attempts: Dict[int, bool]
    wirelength_at_min: int

    def describe(self) -> str:
        tried = ", ".join(f"W={w}:{'ok' if ok else 'fail'}" for w, ok in sorted(self.attempts.items()))
        return f"min CW = {self.min_channel_width} ({tried})"


def minimum_channel_width(
    netlist: PhysicalNetlist,
    placement: Placement,
    base_arch: FPGAArchitecture,
    low: int = 2,
    high: int = 32,
    max_router_iterations: int = 12,
) -> MinChannelWidthResult:
    """Binary-search the smallest channel width at which the placed design routes.

    The placement is kept fixed across channel widths (the paper's comparison
    holds the architecture constant apart from W), which is also how VPR's
    binary search operates.
    """
    attempts: Dict[int, bool] = {}
    wl_at: Dict[int, int] = {}

    def try_width(width: int) -> bool:
        if width in attempts:
            return attempts[width]
        device = build_device(base_arch.with_channel_width(width))
        try:
            result = route(
                netlist, placement, device, max_iterations=max_router_iterations
            )
            ok = result.success
            if ok:
                wl_at[width] = result.wirelength
        except RuntimeError:
            ok = False
        attempts[width] = ok
        return ok

    # Ensure the upper bound routes; widen if necessary.
    hi = high
    while not try_width(hi):
        hi *= 2
        if hi > 512:
            raise RuntimeError("design does not route even with an extremely wide channel")
    lo = low
    if try_width(lo):
        best = lo
    else:
        best = hi
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if try_width(mid):
                hi = mid
                best = mid
            else:
                lo = mid
        best = hi
    return MinChannelWidthResult(
        min_channel_width=best,
        attempts=attempts,
        wirelength_at_min=wl_at.get(best, 0),
    )
