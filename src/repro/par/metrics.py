"""Post-PaR metrics: wirelength, channel width, minimum-channel-width search.

These are the quantities of the paper's Table I PaR columns: total wirelength
(WL) of the routed design and the minimum channel width (CW) at which the
design still routes.

The minimum-channel-width binary search is the most expensive metric -- it
routes the whole design once per probed width.  :func:`minimum_channel_width`
can therefore fan the probes out over a ``concurrent.futures`` process pool
(``workers=N``): each bisection round evaluates up to N interior widths
speculatively, cutting the number of sequential routing rounds from
``log2(hi - lo)`` to ``log_{N+1}(hi - lo)``.  Results are optionally
memoized in an on-disk :class:`repro.par.cache.PaRCache`, so harness re-runs
and neighbouring experiments (Table I/II, reconfiguration) reuse routes
instead of recomputing them.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fpga.architecture import FPGAArchitecture
from ..fpga.device import Device, build_device
from ..fpga.routing_graph import RRNodeType
from .cache import PaRCache
from .netlist import PhysicalNetlist
from .placement import Placement
from .routing import RoutingResult, route

__all__ = [
    "channel_occupancy",
    "minimum_channel_width",
    "MinChannelWidthResult",
]


def channel_occupancy(result: RoutingResult, device: Device) -> Dict[str, int]:
    """Peak and mean occupancy of the routing channels after routing."""
    rr = device.rr_graph
    occ = np.zeros(rr.num_nodes, dtype=np.int64)
    for net_route in result.routes.values():
        for n in net_route.nodes:
            occ[n] += 1
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    wires = occ[wire_mask]
    return {
        "peak": int(wires.max()) if wires.size else 0,
        "used": int(np.count_nonzero(wires)),
        "total": int(wires.size),
    }


@dataclass
class MinChannelWidthResult:
    """Outcome of the minimum-channel-width binary search."""

    min_channel_width: int
    attempts: Dict[int, bool]
    wirelength_at_min: int
    #: STA summary (critical_path_ns, logic_depth) of the route at the
    #: minimum width; ``None`` only for legacy cache entries that predate
    #: the timing subsystem (the cache version bump makes those misses).
    timing_at_min: Optional[Dict[str, float]] = None

    def describe(self) -> str:
        tried = ", ".join(
            f"W={w}:{'ok' if ok else 'fail'}" for w, ok in sorted(self.attempts.items())
        )
        return f"min CW = {self.min_channel_width} ({tried})"


def _route_width_task(args: Tuple) -> Tuple[int, bool, int, Optional[Dict]]:
    """Pool worker: route at one channel width.

    Returns ``(width, ok, wirelength, timing_summary)`` -- the timing
    summary rides along so the cache keeps the delay axis next to the
    wirelength metrics.  The STA runs only on converged routes: the search
    spends most of its probes on deliberately-congested widths whose
    timing would be both meaningless and wasted work.  Route *trees* are
    deliberately not serialized here: the probe keys (probe kernel, probe
    iteration budget) never coincide with a flow's route key, so a forest
    in these values would be JSON shipped across the pool and read by
    nobody -- re-hydration is :func:`repro.par.flow.cached_route`'s job.
    """
    from ..timing.sta import analyze

    netlist, placement, base_arch, width, max_iterations, kernel = args
    device = build_device(base_arch.with_channel_width(width))
    try:
        result = route(
            netlist,
            placement,
            device,
            max_iterations=max_iterations,
            kernel=kernel,
        )
    except RuntimeError:
        return width, False, 0, None
    timing = None
    if result.success:
        timing = analyze(netlist, result, device, placement=placement).summary()
    return width, result.success, result.wirelength, timing


def _interior_points(lo: int, hi: int, count: int) -> List[int]:
    """Up to ``count`` distinct widths strictly inside (lo, hi), evenly spread.

    ``count == 1`` degenerates to the classic binary-search midpoint.
    """
    count = min(count, hi - lo - 1)
    return sorted({lo + ((hi - lo) * (i + 1)) // (count + 1) for i in range(count)})


def minimum_channel_width(
    netlist: PhysicalNetlist,
    placement: Placement,
    base_arch: FPGAArchitecture,
    low: int = 2,
    high: int = 32,
    max_router_iterations: int = 12,
    route_kernel: str = "auto",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
) -> MinChannelWidthResult:
    """Binary-search the smallest channel width at which the placed design routes.

    The placement is kept fixed across channel widths (the paper's comparison
    holds the architecture constant apart from W), which is also how VPR's
    binary search operates.

    ``workers`` > 1 evaluates up to that many interior widths of each
    bisection round concurrently in a process pool (speculative bisection);
    the result is identical to the serial search whenever routability is
    monotone in W.  ``cache`` memoizes per-width outcomes on disk; pass a
    :class:`~repro.par.cache.PaRCache` or rely on ``PaRCache.from_env()`` at
    the call site.

    ``route_kernel`` defaults to ``auto`` (pick by RR-graph size, see
    :func:`repro.par.routing.route`), which resolves to the scalar ``astar``
    kernel at every width the probe sweep visits below paper scale.  That is
    the right default here even though ``wavefront`` is the router's
    default: the binary search spends most of its time on deliberately-
    congested widths below the minimum, where a probe is 15 iterations of
    non-convergent reroute storms -- the scalar kernel handles those far
    faster, while the wavefront kernel's strength is the converging route.
    The kernels agree on routability (all are gated to reference-class
    quality), so the found width is the same.
    """
    attempts: Dict[int, bool] = {}
    wl_at: Dict[int, int] = {}
    timing_at: Dict[int, Dict] = {}
    pool_size = max(1, workers or 1)

    def record(
        width: int,
        ok: bool,
        wirelength: int,
        timing: Optional[Dict] = None,
        from_cache: bool = False,
    ) -> None:
        attempts[width] = ok
        if ok:
            wl_at[width] = wirelength
            if timing is not None:
                timing_at[width] = timing
        if cache is not None and not from_cache:
            key = PaRCache.route_key(
                netlist,
                placement,
                base_arch,
                width,
                max_router_iterations,
                route_kernel,
            )
            value = {"success": ok, "wirelength": wirelength}
            if timing is not None:
                value["timing"] = timing
            cache.put(key, value)

    def evaluate(widths: List[int]) -> None:
        """Route every not-yet-attempted width, via cache/pool when possible."""
        todo = []
        for w in widths:
            if w in attempts:
                continue
            if cache is not None:
                key = PaRCache.route_key(
                    netlist,
                    placement,
                    base_arch,
                    w,
                    max_router_iterations,
                    route_kernel,
                )
                hit = cache.get(key)
                if hit is not None:
                    record(
                        w,
                        bool(hit["success"]),
                        int(hit["wirelength"]),
                        timing=hit.get("timing"),
                        from_cache=True,
                    )
                    continue
            todo.append(w)
        if not todo:
            return
        tasks = [
            (netlist, placement, base_arch, w, max_router_iterations, route_kernel)
            for w in todo
        ]
        if pool_size > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(pool_size, len(todo))) as pool:
                for w, ok, wl, timing in pool.map(_route_width_task, tasks):
                    record(w, ok, wl, timing)
        else:
            for task in tasks:
                w, ok, wl, timing = _route_width_task(task)
                record(w, ok, wl, timing)

    # Ensure the upper bound routes; widen if necessary.
    hi = high
    evaluate([hi, low] if pool_size > 1 else [hi])
    while not attempts[hi]:
        hi *= 2
        if hi > 512:
            raise RuntimeError("design does not route even with an extremely wide channel")
        evaluate([hi])
    evaluate([low])
    if attempts[low]:
        best = low
    else:
        lo = low
        while lo + 1 < hi:
            points = _interior_points(lo, hi, pool_size)
            evaluate(points)
            # Under monotone routability the points split fail | ok; narrow
            # the bracket to the tightest adjacent (fail, ok) pair seen.
            for w in points:
                if attempts[w]:
                    hi = min(hi, w)
                else:
                    lo = max(lo, w)
        best = hi
    return MinChannelWidthResult(
        min_channel_width=best,
        attempts=attempts,
        wirelength_at_min=wl_at.get(best, 0),
        timing_at_min=timing_at.get(best),
    )
