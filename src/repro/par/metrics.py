"""Post-PaR metrics: wirelength, channel width, minimum-channel-width search.

These are the quantities of the paper's Table I PaR columns: total wirelength
(WL) of the routed design and the minimum channel width (CW) at which the
design still routes.

The minimum-channel-width binary search is the most expensive metric -- it
routes the whole design once per probed width.  :func:`minimum_channel_width`
can therefore fan the probes out over a ``concurrent.futures`` process pool
(``workers=N``): each bisection round evaluates up to N interior widths
speculatively, cutting the number of sequential routing rounds from
``log2(hi - lo)`` to ``log_{N+1}(hi - lo)``.  Results are optionally
memoized in an on-disk :class:`repro.par.cache.PaRCache`, so harness re-runs
and neighbouring experiments (Table I/II, reconfiguration) reuse routes
instead of recomputing them.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..fpga.architecture import FPGAArchitecture
from ..fpga.device import Device, build_device
from ..fpga.routing_graph import RRNodeType
from ..util.resilience import FaultInjected, inject, record_event
from .cache import PaRCache
from .netlist import PhysicalNetlist
from .placement import Placement
from .routing import RoutingResult, route

__all__ = [
    "channel_occupancy",
    "minimum_channel_width",
    "MinChannelWidthResult",
    "ChannelWidthError",
]


class ChannelWidthError(RuntimeError):
    """The minimum-channel-width search gave up.

    Subclasses ``RuntimeError`` for backward compatibility; carries the
    probe history so callers can log *why* bisection failed -- one
    ``{"converged": bool, "iterations": int | None}`` entry per width
    probed before giving up (``iterations`` is ``None`` for probes served
    by a pre-resilience cache entry or aborted by a search error).
    """

    def __init__(
        self, message: str, probes: Optional[Dict[int, Dict[str, Any]]] = None
    ) -> None:
        super().__init__(message)
        self.probes: Dict[int, Dict[str, Any]] = dict(probes or {})


def channel_occupancy(result: RoutingResult, device: Device) -> Dict[str, int]:
    """Peak and mean occupancy of the routing channels after routing."""
    rr = device.rr_graph
    occ = np.zeros(rr.num_nodes, dtype=np.int64)
    for net_route in result.routes.values():
        for n in net_route.nodes:
            occ[n] += 1
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    wires = occ[wire_mask]
    return {
        "peak": int(wires.max()) if wires.size else 0,
        "used": int(np.count_nonzero(wires)),
        "total": int(wires.size),
    }


@dataclass
class MinChannelWidthResult:
    """Outcome of the minimum-channel-width binary search."""

    min_channel_width: int
    attempts: Dict[int, bool]
    wirelength_at_min: int
    #: STA summary (critical_path_ns, logic_depth) of the route at the
    #: minimum width; ``None`` only for legacy cache entries that predate
    #: the timing subsystem (the cache version bump makes those misses).
    timing_at_min: Optional[Dict[str, float]] = None
    #: structured recovery log of the search (pool failures, serial
    #: resubmits, cache read errors); empty on a fault-free run.
    events: List[Dict[str, Any]] = field(default_factory=list)

    def describe(self) -> str:
        tried = ", ".join(
            f"W={w}:{'ok' if ok else 'fail'}" for w, ok in sorted(self.attempts.items())
        )
        return f"min CW = {self.min_channel_width} ({tried})"


def _route_width_task(
    args: Tuple,
) -> Tuple[int, bool, int, Optional[Dict], Optional[int]]:
    """Pool worker: route at one channel width.

    Returns ``(width, ok, wirelength, timing_summary, iterations)`` -- the
    timing summary rides along so the cache keeps the delay axis next to
    the wirelength metrics, and the iteration count feeds the probe
    history of :class:`ChannelWidthError`.  The STA runs only on converged routes: the search
    spends most of its probes on deliberately-congested widths whose
    timing would be both meaningless and wasted work.  Route *trees* are
    deliberately not serialized here: the probe keys (probe kernel, probe
    iteration budget) never coincide with a flow's route key, so a forest
    in these values would be JSON shipped across the pool and read by
    nobody -- re-hydration is :func:`repro.par.flow.cached_route`'s job.
    """
    from ..timing.sta import analyze

    netlist, placement, base_arch, width, max_iterations, kernel = args
    fault = inject("cw.probe")
    if fault == "crash":
        # Simulated hard worker death: kills the process without unwinding,
        # which the parent sees as a BrokenProcessPool.
        os._exit(13)
    if fault is not None:
        raise FaultInjected("cw.probe", kind=fault)
    device = build_device(base_arch.with_channel_width(width))
    try:
        result = route(
            netlist,
            placement,
            device,
            max_iterations=max_iterations,
            kernel=kernel,
        )
    except RuntimeError:
        # An unreachable sink at this width is a legitimate probe outcome
        # (the width is below the minimum), not a worker failure.
        return width, False, 0, None, None
    timing = None
    if result.success:
        timing = analyze(netlist, result, device, placement=placement).summary()
    return width, result.success, result.wirelength, timing, result.iterations


def _interior_points(lo: int, hi: int, count: int) -> List[int]:
    """Up to ``count`` distinct widths strictly inside (lo, hi), evenly spread.

    ``count == 1`` degenerates to the classic binary-search midpoint.
    """
    count = min(count, hi - lo - 1)
    return sorted({lo + ((hi - lo) * (i + 1)) // (count + 1) for i in range(count)})


def minimum_channel_width(
    netlist: PhysicalNetlist,
    placement: Placement,
    base_arch: FPGAArchitecture,
    low: int = 2,
    high: int = 32,
    max_router_iterations: int = 12,
    route_kernel: str = "auto",
    workers: Optional[int] = None,
    cache: Optional[PaRCache] = None,
) -> MinChannelWidthResult:
    """Binary-search the smallest channel width at which the placed design routes.

    The placement is kept fixed across channel widths (the paper's comparison
    holds the architecture constant apart from W), which is also how VPR's
    binary search operates.

    ``workers`` > 1 evaluates up to that many interior widths of each
    bisection round concurrently in a process pool (speculative bisection);
    the result is identical to the serial search whenever routability is
    monotone in W.  ``cache`` memoizes per-width outcomes on disk; pass a
    :class:`~repro.par.cache.PaRCache` or rely on ``PaRCache.from_env()`` at
    the call site.

    ``route_kernel`` defaults to ``auto``, which resolves to the scalar
    ``astar`` kernel (see :data:`repro.par.routing.AUTO_KERNEL`).  That is
    especially right here: the binary search spends most of its time on
    deliberately-congested widths below the minimum, where a probe is 15
    iterations of non-convergent reroute storms -- the scalar kernel
    handles those far faster than the opt-in ``wavefront`` kernel, whose
    strength is the converging route.  The kernels agree on routability
    (all are gated to reference-class quality), so the found width is the
    same.

    A pool worker that crashes or raises does not lose the search: its
    probes are resubmitted serially in the parent (``pool-failure`` +
    ``serial-resubmit`` in :attr:`MinChannelWidthResult.events`), and
    routing is deterministic per width, so the recovered search returns
    the ``workers=1`` result.  When even an extremely wide channel fails,
    :class:`ChannelWidthError` carries the full probe history.
    """
    attempts: Dict[int, bool] = {}
    wl_at: Dict[int, int] = {}
    timing_at: Dict[int, Dict] = {}
    iters_at: Dict[int, Optional[int]] = {}
    events: List[Dict[str, Any]] = []
    pool_size = max(1, workers or 1)

    def record(
        width: int,
        ok: bool,
        wirelength: int,
        timing: Optional[Dict] = None,
        iterations: Optional[int] = None,
        from_cache: bool = False,
    ) -> None:
        attempts[width] = ok
        iters_at[width] = iterations
        if ok:
            wl_at[width] = wirelength
            if timing is not None:
                timing_at[width] = timing
        if cache is not None and not from_cache:
            key = PaRCache.route_key(
                netlist,
                placement,
                base_arch,
                width,
                max_router_iterations,
                route_kernel,
            )
            value = {"success": ok, "wirelength": wirelength}
            if timing is not None:
                value["timing"] = timing
            if iterations is not None:
                value["iterations"] = iterations
            cache.put(key, value, events=events)

    def evaluate(widths: List[int]) -> None:
        """Route every not-yet-attempted width, via cache/pool when possible."""
        todo = []
        for w in widths:
            if w in attempts:
                continue
            if cache is not None:
                key = PaRCache.route_key(
                    netlist,
                    placement,
                    base_arch,
                    w,
                    max_router_iterations,
                    route_kernel,
                )
                hit = cache.get(key, events=events)
                if hit is not None:
                    record(
                        w,
                        bool(hit["success"]),
                        int(hit["wirelength"]),
                        timing=hit.get("timing"),
                        iterations=hit.get("iterations"),
                        from_cache=True,
                    )
                    continue
            todo.append(w)
        if not todo:
            return
        tasks = [
            (netlist, placement, base_arch, w, max_router_iterations, route_kernel)
            for w in todo
        ]
        failed: List[Tuple] = []
        if pool_size > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(pool_size, len(todo))) as pool:
                futures = [
                    (pool.submit(_route_width_task, task), task) for task in tasks
                ]
                for future, task in futures:
                    try:
                        record(*future.result())
                    except Exception as exc:
                        # Worker crash (BrokenProcessPool), injected fault,
                        # or a genuine routing error: defer to the serial
                        # pass below.  Probes that completed are preserved.
                        record_event(events, "pool-failure", site="cw.probe",
                                     width=task[3],
                                     error=f"{type(exc).__name__}: {exc}")
                        failed.append(task)
            if failed:
                record_event(events, "serial-resubmit", site="cw.probe",
                             widths=[t[3] for t in failed])
        else:
            failed = tasks
        for task in failed:
            record(*_route_width_task(task))

    # Ensure the upper bound routes; widen if necessary.
    hi = high
    evaluate([hi, low] if pool_size > 1 else [hi])
    while not attempts[hi]:
        hi *= 2
        if hi > 512:
            raise ChannelWidthError(
                "design does not route even with an extremely wide channel",
                probes={
                    w: {"converged": ok, "iterations": iters_at.get(w)}
                    for w, ok in sorted(attempts.items())
                },
            )
        evaluate([hi])
    evaluate([low])
    if attempts[low]:
        best = low
    else:
        lo = low
        while lo + 1 < hi:
            points = _interior_points(lo, hi, pool_size)
            evaluate(points)
            # Under monotone routability the points split fail | ok; narrow
            # the bracket to the tightest adjacent (fail, ok) pair seen.
            for w in points:
                if attempts[w]:
                    hi = min(hi, w)
                else:
                    lo = max(lo, w)
        best = hi
    return MinChannelWidthResult(
        min_channel_width=best,
        attempts=attempts,
        wirelength_at_min=wl_at.get(best, 0),
        timing_at_min=timing_at.get(best),
        events=events,
    )
